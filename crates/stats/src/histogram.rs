//! Fixed-bin histograms.
//!
//! Used by the reproduction harness to render textual versions of the
//! paper's distribution figures, and by [`crate::info`] when estimating
//! entropies of continuous variables.

/// A histogram over `[lo, hi)` with equally wide bins.
///
/// Values below `lo` land in the first bin, values at or above `hi` in the
/// last — the clamping convention keeps every finite observation counted,
/// which matters when summarizing heavy-tailed metrics like chunk sizes.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    non_finite: u64,
}

impl Histogram {
    /// Create a histogram spanning `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            non_finite: 0,
        }
    }

    /// Build a histogram from a sample, sizing the range to the sample's
    /// min/max. Returns `None` if the sample has no finite values.
    pub fn from_sample(sample: &[f64], bins: usize) -> Option<Self> {
        let finite: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Degenerate constant sample: widen the range so `new` is happy.
        let (lo, hi) = if hi > lo { (lo, hi) } else { (lo, lo + 1.0) };
        let mut h = Histogram::new(lo, hi, bins);
        for v in finite {
            h.push(v);
        }
        Some(h)
    }

    /// Record one observation.
    ///
    /// Non-finite values never enter a bin (naively, `NaN.max(0.0)`
    /// inside [`bin_index`](Self::bin_index) would silently drop them
    /// into bin 0, inflating the left tail); they are tallied separately
    /// in [`non_finite`](Self::non_finite) so a polluted sample is
    /// detectable rather than invisible.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        let idx = self.bin_index(x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    fn bin_index(&self, x: f64) -> usize {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let raw = ((x - self.lo) / width).floor();
        (raw.max(0.0) as usize).min(self.counts.len() - 1)
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded (finite) observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of non-finite samples pushed at this histogram. These are
    /// excluded from [`total`](Self::total), the bin counts, and the
    /// fractions — they only show up here.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Bin fractions (counts / total); all-zero when empty.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(bin_center, count)` pairs for plotting/printing.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// A one-line ASCII sparkline of the distribution, for harness output.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                let level = (c as f64 / max as f64 * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[level]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn values_fall_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0);
        h.push(0.5);
        h.push(9.99);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-100.0);
        h.push(100.0);
        h.push(10.0); // == hi goes to last bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 2);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn non_finite_samples_are_counted_but_never_binned() {
        // Regression: NaN must not land in bin 0 (NaN.max(0.0) == 0.0
        // would have put it there) and must stay out of every aggregate
        // except the dedicated non_finite tally.
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        h.push(f64::NEG_INFINITY);
        h.push(2.0);
        assert_eq!(h.non_finite(), 3);
        assert_eq!(h.total(), 1);
        assert_eq!(h.counts()[0], 0, "NaN leaked into bin 0");
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_sample_handles_constant_data() {
        let h = Histogram::from_sample(&[5.0, 5.0, 5.0], 4).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn from_sample_of_empty_is_none() {
        assert!(Histogram::from_sample(&[], 4).is_none());
        assert!(Histogram::from_sample(&[f64::NAN], 4).is_none());
    }

    #[test]
    fn fractions_sum_to_one() {
        let h = Histogram::from_sample(&[1.0, 2.0, 3.0, 4.0], 3).unwrap();
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn sparkline_has_one_char_per_bin() {
        let h = Histogram::from_sample(&[1.0, 2.0, 2.0, 3.0], 4).unwrap();
        assert_eq!(h.sparkline().chars().count(), 4);
    }

    proptest! {
        #[test]
        fn prop_every_finite_value_is_counted(
            data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            bins in 1usize..32,
        ) {
            let h = Histogram::from_sample(&data, bins).unwrap();
            prop_assert_eq!(h.total() as usize, data.len());
            prop_assert_eq!(h.counts().iter().sum::<u64>() as usize, data.len());
        }
    }
}
