//! Linear and rank correlation between numeric columns.
//!
//! Pearson correlation backs the dataset-comparison analysis (§5.3) and
//! the continuous variant of the CFS merit; Spearman is provided for the
//! heavy-tailed transport metrics where a monotone-but-nonlinear relation
//! (e.g. chunk size vs. encoded bitrate) is the interesting signal.

/// Pearson product–moment correlation of two equal-length columns.
///
/// Returns `0.0` when either column is constant or shorter than 2
/// observations (no linear relation measurable).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = crate::moments::mean(x);
    let my = crate::moments::mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Spearman rank correlation (Pearson over mid-ranks, handling ties).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    let rx = midranks(x);
    let ry = midranks(y);
    pearson(&rx, &ry)
}

/// Mid-rank transform: ties get the average of the ranks they span.
fn midranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // positions i..=j share the mid-rank
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = mid;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_linear_relation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_linear_relation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_yields_zero() {
        let x = [5.0, 5.0, 5.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn short_columns_yield_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn spearman_sees_monotone_nonlinear_relations() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // Pearson is noticeably below 1 for the same data.
        assert!(pearson(&x, &y) < 0.95);
    }

    #[test]
    fn spearman_handles_ties_with_midranks() {
        let x = [1.0, 1.0, 2.0];
        let r = midranks(&x);
        assert_eq!(r, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn known_pearson_value() {
        // hand-computed: r = 0.9037 for this small table
        let x = [43.0, 21.0, 25.0, 42.0, 57.0, 59.0];
        let y = [99.0, 65.0, 79.0, 75.0, 87.0, 81.0];
        assert!((pearson(&x, &y) - 0.5298).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_pearson_bounded(
            pairs in proptest::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 2..100)
        ) {
            let x: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
            let y: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
            let r = pearson(&x, &y);
            prop_assert!((-1.0..=1.0).contains(&r));
        }

        #[test]
        fn prop_pearson_symmetric(
            pairs in proptest::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 2..100)
        ) {
            let x: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
            let y: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
            prop_assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-12);
        }

        #[test]
        fn prop_pearson_self_correlation_is_one(
            x in proptest::collection::vec(-1e4f64..1e4, 2..100)
        ) {
            // Skip constant vectors, where the convention returns 0.
            let constant = x.iter().all(|&v| v == x[0]);
            prop_assume!(!constant);
            prop_assert!((pearson(&x, &x) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_spearman_invariant_under_monotone_transform(
            x in proptest::collection::vec(0.1f64..1e3, 3..50)
        ) {
            let y: Vec<f64> = x.iter().map(|v| v.ln()).collect();
            let distinct = {
                let mut s = x.clone();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                s.dedup();
                s.len() > 1
            };
            prop_assume!(distinct);
            prop_assert!((spearman(&x, &y) - 1.0).abs() < 1e-9);
        }
    }
}
