//! Means, variances and an online (Welford) moment accumulator.
//!
//! The variance convention matters for the reproduction: the paper's
//! feature tables (Tables 2 and 5) use the *standard deviation over the
//! chunks of one session* as a feature. We follow the population
//! convention (`1/n`) for those per-session features — a session's chunks
//! are the whole population of interest, not a sample from a larger one —
//! and expose the sample convention (`1/(n-1)`) separately for the few
//! places (CFS correlations) where an unbiased estimator is appropriate.

/// Arithmetic mean of `data`. Returns `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (normalized by `n`). Returns `0.0` for `n < 1`.
pub fn variance(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation (normalized by `n`).
pub fn population_std(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Sample standard deviation (normalized by `n - 1`).
/// Returns `0.0` for `n < 2`.
pub fn sample_std(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    let ss: f64 = data.iter().map(|v| (v - m) * (v - m)).sum();
    (ss / (data.len() - 1) as f64).sqrt()
}

/// Numerically stable streaming mean/variance accumulator
/// (Welford's algorithm).
///
/// Used where the dataset is produced incrementally — e.g. the per-round
/// bytes-in-flight samples emitted by the TCP model — so we never need to
/// buffer a whole session's packet-level history just to compute a summary
/// statistic.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Fresh accumulator with no observations.
    pub fn new() -> Self {
        OnlineMoments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` before the first observation.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running population variance; `0.0` before the second observation.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation so far; `0.0` before the first observation.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation so far; `0.0` before the first observation.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn population_vs_sample_std() {
        let data = [1.0, 2.0, 3.0, 4.0];
        // population: ss = 5.0, /4 => 1.25
        assert!((variance(&data) - 1.25).abs() < 1e-12);
        // sample: /3
        assert!((sample_std(&data) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sample_std_of_singleton_is_zero() {
        assert_eq!(sample_std(&[42.0]), 0.0);
    }

    #[test]
    fn online_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut acc = OnlineMoments::new();
        for &x in &data {
            acc.push(x);
        }
        assert!((acc.mean() - mean(&data)).abs() < 1e-12);
        assert!((acc.variance() - variance(&data)).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn online_ignores_nan() {
        let mut acc = OnlineMoments::new();
        acc.push(1.0);
        acc.push(f64::NAN);
        acc.push(3.0);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean(), 2.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        for &x in &a_data {
            a.push(x);
        }
        for &x in &b_data {
            b.push(x);
        }
        a.merge(&b);
        let mut all = OnlineMoments::new();
        for &x in a_data.iter().chain(&b_data) {
            all.push(x);
        }
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineMoments::new();
        a.push(5.0);
        a.push(7.0);
        let before_mean = a.mean();
        a.merge(&OnlineMoments::new());
        assert_eq!(a.mean(), before_mean);
        assert_eq!(a.count(), 2);

        let mut empty = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        b.push(5.0);
        b.push(7.0);
        empty.merge(&b);
        assert_eq!(empty.mean(), 6.0);
        assert_eq!(empty.count(), 2);
    }

    proptest! {
        #[test]
        fn prop_online_matches_batch(data in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let mut acc = OnlineMoments::new();
            for &x in &data {
                acc.push(x);
            }
            prop_assert!((acc.mean() - mean(&data)).abs() < 1e-6);
            if data.len() >= 2 {
                prop_assert!((acc.variance() - variance(&data)).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_variance_nonnegative(data in proptest::collection::vec(-1e9f64..1e9, 0..100)) {
            prop_assert!(variance(&data) >= 0.0);
        }

        #[test]
        fn prop_merge_associative_count(
            a in proptest::collection::vec(-1e3f64..1e3, 0..50),
            b in proptest::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let mut am = OnlineMoments::new();
            for &x in &a { am.push(x); }
            let mut bm = OnlineMoments::new();
            for &x in &b { bm.push(x); }
            am.merge(&bm);
            prop_assert_eq!(am.count() as usize, a.len() + b.len());
        }
    }
}
