//! Means, variances and an online (Welford) moment accumulator.
//!
//! The variance convention matters for the reproduction: the paper's
//! feature tables (Tables 2 and 5) use the *standard deviation over the
//! chunks of one session* as a feature. We follow the population
//! convention (`1/n`) for those per-session features — a session's chunks
//! are the whole population of interest, not a sample from a larger one —
//! and expose the sample convention (`1/(n-1)`) separately for the few
//! places (CFS correlations) where an unbiased estimator is appropriate.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of `data`. Returns `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (normalized by `n`). Returns `0.0` for `n < 1`.
pub fn variance(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation (normalized by `n`).
pub fn population_std(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Sample standard deviation (normalized by `n - 1`).
/// Returns `0.0` for `n < 2`.
pub fn sample_std(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    let ss: f64 = data.iter().map(|v| (v - m) * (v - m)).sum();
    (ss / (data.len() - 1) as f64).sqrt()
}

/// Numerically stable streaming mean/variance accumulator
/// (Welford's algorithm).
///
/// Used where the dataset is produced incrementally — e.g. the per-round
/// bytes-in-flight samples emitted by the TCP model — so we never need to
/// buffer a whole session's packet-level history just to compute a summary
/// statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// Hand-written: `Default` must agree with [`OnlineMoments::new`] — the
// derive would zero the `min`/`max` sentinels, so the first real
// observation could never beat a phantom `0.0`.
impl Default for OnlineMoments {
    fn default() -> Self {
        OnlineMoments::new()
    }
}

// Hand-written: before the first observation `min`/`max` hold the
// `±inf` fold sentinels, which JSON cannot represent. They are
// serialized as `Option`s — `null` while empty — and the sentinels are
// restored on the way back in.
impl Serialize for OnlineMoments {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(Vec::from([
            ("n".to_string(), self.n.to_value()),
            ("mean".to_string(), self.mean.to_value()),
            ("m2".to_string(), self.m2.to_value()),
            ("min".to_string(), self.try_min().to_value()),
            ("max".to_string(), self.try_max().to_value()),
        ]))
    }
}

impl Deserialize for OnlineMoments {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &'static str| {
            value
                .get(name)
                .ok_or_else(|| serde::DeError::missing_field("OnlineMoments", name))
        };
        let min: Option<f64> = Deserialize::from_value(field("min")?)?;
        let max: Option<f64> = Deserialize::from_value(field("max")?)?;
        Ok(OnlineMoments {
            n: Deserialize::from_value(field("n")?)?,
            mean: Deserialize::from_value(field("mean")?)?,
            m2: Deserialize::from_value(field("m2")?)?,
            min: min.unwrap_or(f64::INFINITY),
            max: max.unwrap_or(f64::NEG_INFINITY),
        })
    }
}

impl OnlineMoments {
    /// Fresh accumulator with no observations.
    pub fn new() -> Self {
        OnlineMoments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` before the first observation.
    ///
    /// Display-only convenience: `0.0` is a possible real mean, so
    /// feature builders must use [`OnlineMoments::try_mean`] and map the
    /// undefined case to their own sentinel (see
    /// `vqoe_features::MISSING_STAT`).
    pub fn mean(&self) -> f64 {
        self.try_mean().unwrap_or(0.0)
    }

    /// Running mean, or `None` before the first observation — the
    /// honest core `mean()` collapses to a `0.0` sentinel.
    pub fn try_mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Running population variance; `0.0` before the second observation.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation so far; `0.0` before the first observation
    /// (display-only — see [`OnlineMoments::try_min`]).
    pub fn min(&self) -> f64 {
        self.try_min().unwrap_or(0.0)
    }

    /// Smallest observation so far, or `None` before the first
    /// observation. Without the `Option`, a metric column whose every
    /// sample is non-finite would report `min == 0.0` — indistinguishable
    /// from a genuine zero, the exact bug class the `try_*` quantile
    /// sweep purged (ISSUE 10).
    pub fn try_min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation so far; `0.0` before the first observation
    /// (display-only — see [`OnlineMoments::try_max`]).
    pub fn max(&self) -> f64 {
        self.try_max().unwrap_or(0.0)
    }

    /// Largest observation so far, or `None` before the first
    /// observation.
    pub fn try_max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn population_vs_sample_std() {
        let data = [1.0, 2.0, 3.0, 4.0];
        // population: ss = 5.0, /4 => 1.25
        assert!((variance(&data) - 1.25).abs() < 1e-12);
        // sample: /3
        assert!((sample_std(&data) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sample_std_of_singleton_is_zero() {
        assert_eq!(sample_std(&[42.0]), 0.0);
    }

    #[test]
    fn online_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut acc = OnlineMoments::new();
        for &x in &data {
            acc.push(x);
        }
        assert!((acc.mean() - mean(&data)).abs() < 1e-12);
        assert!((acc.variance() - variance(&data)).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn online_ignores_nan() {
        let mut acc = OnlineMoments::new();
        acc.push(1.0);
        acc.push(f64::NAN);
        acc.push(3.0);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean(), 2.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        for &x in &a_data {
            a.push(x);
        }
        for &x in &b_data {
            b.push(x);
        }
        a.merge(&b);
        let mut all = OnlineMoments::new();
        for &x in a_data.iter().chain(&b_data) {
            all.push(x);
        }
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn try_forms_distinguish_undefined_from_zero() {
        // Regression (ISSUE 10): an accumulator that has seen nothing —
        // or only non-finite samples — must not report a zero min/max/
        // mean, because 0.0 is a possible real value for every Table-1
        // metric.
        let empty = OnlineMoments::new();
        assert_eq!(empty.try_min(), None);
        assert_eq!(empty.try_max(), None);
        assert_eq!(empty.try_mean(), None);
        assert_eq!(empty.min(), 0.0, "plain forms keep the display sentinel");

        let mut broken_column = OnlineMoments::new();
        broken_column.push(f64::NAN);
        broken_column.push(f64::INFINITY);
        broken_column.push(f64::NEG_INFINITY);
        assert_eq!(broken_column.count(), 0);
        assert_eq!(broken_column.try_min(), None);
        assert_eq!(broken_column.try_max(), None);
        assert_eq!(broken_column.try_mean(), None);

        let mut zero = OnlineMoments::new();
        zero.push(0.0);
        assert_eq!(zero.try_min(), Some(0.0));
        assert_eq!(zero.try_max(), Some(0.0));
        assert_eq!(zero.try_mean(), Some(0.0));
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let mut acc = OnlineMoments::new();
        for x in [3.0, 1.0, 4.0, 1.5, 9.2] {
            acc.push(x);
        }
        let json = serde_json::to_string(&acc).unwrap();
        let back: OnlineMoments = serde_json::from_str(&json).unwrap();
        assert_eq!(back, acc);
    }

    #[test]
    fn empty_accumulator_serializes_and_defaults_keep_sentinels() {
        // Regression (ISSUE 10): an empty accumulator holds ±inf fold
        // sentinels, which JSON cannot represent — serialization must
        // not fail (it snapshots as nulls), and the round trip must
        // restore the sentinels so the next `push` still wins the
        // min/max folds.
        let empty = OnlineMoments::new();
        let json = serde_json::to_string(&empty).expect("empty accumulator must snapshot");
        let mut back: OnlineMoments = serde_json::from_str(&json).unwrap();
        assert_eq!(back, empty);
        back.push(-3.0);
        assert_eq!(back.try_min(), Some(-3.0));
        assert_eq!(back.try_max(), Some(-3.0));

        // `Default` must agree with `new()` for the same reason.
        assert_eq!(OnlineMoments::default(), OnlineMoments::new());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineMoments::new();
        a.push(5.0);
        a.push(7.0);
        let before_mean = a.mean();
        a.merge(&OnlineMoments::new());
        assert_eq!(a.mean(), before_mean);
        assert_eq!(a.count(), 2);

        let mut empty = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        b.push(5.0);
        b.push(7.0);
        empty.merge(&b);
        assert_eq!(empty.mean(), 6.0);
        assert_eq!(empty.count(), 2);
    }

    proptest! {
        #[test]
        fn prop_online_matches_batch(data in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let mut acc = OnlineMoments::new();
            for &x in &data {
                acc.push(x);
            }
            prop_assert!((acc.mean() - mean(&data)).abs() < 1e-6);
            if data.len() >= 2 {
                prop_assert!((acc.variance() - variance(&data)).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_variance_nonnegative(data in proptest::collection::vec(-1e9f64..1e9, 0..100)) {
            prop_assert!(variance(&data) >= 0.0);
        }

        #[test]
        fn prop_merge_associative_count(
            a in proptest::collection::vec(-1e3f64..1e3, 0..50),
            b in proptest::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let mut am = OnlineMoments::new();
            for &x in &a { am.push(x); }
            let mut bm = OnlineMoments::new();
            for &x in &b { bm.push(x); }
            am.merge(&bm);
            prop_assert_eq!(am.count() as usize, a.len() + b.len());
        }
    }
}
