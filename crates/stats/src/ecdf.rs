//! Empirical cumulative distribution functions.
//!
//! The paper presents four distribution plots (Figures 2, 4 and 5); the
//! reproduction harness regenerates their series with [`Ecdf`]. The type
//! also backs the *distribution separation* analysis of §4.3: given the
//! σ(CUSUM) scores of sessions with and without representation switches,
//! the threshold that best separates the two ECDFs is what the paper fixes
//! at "500" and then freezes for the encrypted evaluation (§5.6).

/// An empirical CDF over a finite sample.
///
/// Construction sorts the sample once; evaluation is `O(log n)`.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample. Non-finite values are dropped.
    pub fn new(sample: &[f64]) -> Self {
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Number of observations backing the ECDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — the fraction of observations `<= x`. Returns `0.0` for an
    /// empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF at probability `p ∈ [0, 1]` (the smallest sample value
    /// `x` with `F(x) >= p`). Returns `0.0` for an empty sample.
    pub fn inverse(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// The full step-function as `(x, F(x))` pairs, one per distinct
    /// sample value — the series a plotting tool would consume to redraw
    /// the paper's CDF figures.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = f,
                _ => out.push((x, f)),
            }
        }
        out
    }

    /// Evaluate the ECDF over an evenly spaced grid of `points` x-values
    /// spanning the sample range — a fixed-size series convenient for
    /// textual table output in the reproduction harness.
    pub fn grid(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Kolmogorov–Smirnov statistic `sup_x |F_a(x) - F_b(x)|` between two
    /// ECDFs. Used by the dataset-comparison experiment (Figure 5) to
    /// quantify how similar the encrypted and cleartext chunk-size /
    /// inter-arrival distributions are.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut max_d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            let d = (self.eval(x) - other.eval(x)).abs();
            max_d = max_d.max(d);
        }
        max_d
    }
}

/// Find the threshold on a score that best separates two populations, in
/// the sense of maximizing the *balanced accuracy*
/// `(frac of `below` <= t  +  frac of `above` > t) / 2`.
///
/// This is exactly the §4.3 procedure: `below` are the σ(CUSUM) scores of
/// sessions without representation switches, `above` those with switches,
/// and the returned threshold plays the role of the paper's "500". The
/// returned tuple is `(threshold, frac_below_correct, frac_above_correct)`.
pub fn best_separating_threshold(below: &[f64], above: &[f64]) -> (f64, f64, f64) {
    let below_ecdf = Ecdf::new(below);
    let above_ecdf = Ecdf::new(above);
    let mut candidates: Vec<f64> = below
        .iter()
        .chain(above.iter())
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();
    let mut best = (0.0, 0.0, 0.0);
    let mut best_score = f64::NEG_INFINITY;
    for &t in &candidates {
        let ok_below = below_ecdf.eval(t);
        let ok_above = 1.0 - above_ecdf.eval(t);
        let score = (ok_below + ok_above) / 2.0;
        if score > best_score {
            best_score = score;
            best = (t, ok_below, ok_above);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_on_empty_is_zero() {
        let e = Ecdf::new(&[]);
        assert_eq!(e.eval(1.0), 0.0);
        assert!(e.is_empty());
    }

    #[test]
    fn eval_step_semantics() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn duplicate_values_collapse_in_steps() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]);
        let steps = e.steps();
        assert_eq!(steps.len(), 2);
        assert!((steps[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(steps[1], (2.0, 1.0));
    }

    #[test]
    fn inverse_is_left_continuous_quantile() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.26), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
        assert_eq!(e.inverse(0.0), 10.0);
    }

    #[test]
    fn ks_distance_of_identical_is_zero() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_distance_of_disjoint_is_one() {
        let a = Ecdf::new(&[1.0, 2.0]);
        let b = Ecdf::new(&[10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    #[test]
    fn separating_threshold_on_disjoint_populations_is_perfect() {
        let below = [1.0, 2.0, 3.0];
        let above = [10.0, 11.0, 12.0];
        let (t, ok_b, ok_a) = best_separating_threshold(&below, &above);
        assert!((3.0..10.0).contains(&t));
        assert_eq!(ok_b, 1.0);
        assert_eq!(ok_a, 1.0);
    }

    #[test]
    fn separating_threshold_on_overlapping_populations() {
        // 20% of 'below' spills over the best threshold.
        let below = [1.0, 2.0, 3.0, 4.0, 50.0];
        let above = [10.0, 20.0, 30.0, 40.0, 60.0];
        let (t, ok_b, ok_a) = best_separating_threshold(&below, &above);
        assert!((4.0..10.0).contains(&t), "t = {t}");
        assert!((ok_b - 0.8).abs() < 1e-12);
        assert_eq!(ok_a, 1.0);
    }

    #[test]
    fn grid_spans_sample_range() {
        let e = Ecdf::new(&[0.0, 10.0]);
        let g = e.grid(11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0].0, 0.0);
        assert_eq!(g[10].0, 10.0);
        assert_eq!(g[10].1, 1.0);
    }

    proptest! {
        #[test]
        fn prop_ecdf_monotone(
            data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            x1 in -1e6f64..1e6,
            x2 in -1e6f64..1e6,
        ) {
            let e = Ecdf::new(&data);
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            prop_assert!(e.eval(lo) <= e.eval(hi));
        }

        #[test]
        fn prop_ecdf_bounded(data in proptest::collection::vec(-1e6f64..1e6, 1..200), x in -2e6f64..2e6) {
            let e = Ecdf::new(&data);
            let f = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn prop_ks_symmetric(
            a in proptest::collection::vec(-1e3f64..1e3, 1..50),
            b in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let ea = Ecdf::new(&a);
            let eb = Ecdf::new(&b);
            prop_assert!((ea.ks_distance(&eb) - eb.ks_distance(&ea)).abs() < 1e-12);
        }
    }
}
