//! Quantile estimation with linear interpolation (type-7, the R/NumPy
//! default).
//!
//! §4.2 of the paper expands every raw metric into a dense percentile grid
//! (5th, 10th, 15th, 20th, 25th, 50th, 75th, 80th, 85th, 90th, 95th). The
//! exact interpolation rule is immaterial to the classifiers as long as it
//! is consistent between training and evaluation, so we fix one — the
//! ubiquitous type-7 rule `h = (n - 1) q` — and use it everywhere.

//! ## Undefined quantiles
//!
//! A quantile of an empty (or all-non-finite) sample is mathematically
//! undefined. The `try_*` functions are the honest core: they return
//! `None` in that case and `Some(v)` otherwise. The plain functions are
//! **display-only** convenience wrappers that collapse `None` to `0.0` —
//! report tables, log lines, human-facing summaries. Callers for whom
//! `0.0` is a *possible real value* (the feature-matrix builders, every
//! assessment path) must use the `try_*` forms and choose their own
//! sentinel, otherwise a missing metric is indistinguishable from a
//! genuinely zero one (see `vqoe_features::MISSING_STAT`). As of the
//! ISSUE-10 sweep the only plain-form callers left inside the workspace
//! either run on provably non-empty finite slices
//! ([`crate::Summary::from_slice`], the discretizer's cut picker) or are
//! display formatting.

/// Quantile `q ∈ [0, 1]` of `data` (unsorted; non-finite values
/// ignored), or `None` when no finite value exists. `q` is clamped to
/// `[0, 1]`.
pub fn try_quantile(data: &[f64], q: f64) -> Option<f64> {
    let mut finite: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_by(f64::total_cmp);
    try_quantile_sorted(&finite, q)
}

/// Quantile of an **already sorted** slice of finite values, or `None`
/// when the slice is empty.
///
/// This is the hot path used by feature construction, which sorts each
/// metric once and then reads a dozen percentiles off it.
pub fn try_quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    })
}

/// Median (50th percentile) of `data`, or `None` when no finite value
/// exists.
pub fn try_median(data: &[f64]) -> Option<f64> {
    try_quantile(data, 0.5)
}

/// Evaluate several quantiles in one sort, or `None` when no finite
/// value exists. `qs` are fractions in `[0, 1]`; the result is aligned
/// with `qs`.
pub fn try_quantiles(data: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    let mut finite: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_by(f64::total_cmp);
    Some(
        qs.iter()
            .filter_map(|&q| try_quantile_sorted(&finite, q))
            .collect(),
    )
}

/// [`try_quantile`] with the undefined case collapsed to the `0.0`
/// sentinel (see the module docs — do not use where `0.0` is a possible
/// real value).
pub fn quantile(data: &[f64], q: f64) -> f64 {
    try_quantile(data, q).unwrap_or(0.0)
}

/// [`try_quantile_sorted`] with the undefined case collapsed to the
/// `0.0` sentinel (see the module docs).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    try_quantile_sorted(sorted, q).unwrap_or(0.0)
}

/// [`try_median`] with the undefined case collapsed to the `0.0`
/// sentinel (see the module docs).
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// [`try_quantiles`] with the undefined case collapsed to `0.0`
/// sentinels (see the module docs).
pub fn quantiles(data: &[f64], qs: &[f64]) -> Vec<f64> {
    try_quantiles(data, qs).unwrap_or_else(|| vec![0.0; qs.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantiles(&[], &[0.1, 0.9]), vec![0.0, 0.0]);
    }

    #[test]
    fn try_forms_distinguish_undefined_from_zero() {
        // The sentinel wrappers collapse both cases to 0.0; the try_*
        // core must not.
        assert_eq!(try_quantile(&[], 0.5), None);
        assert_eq!(try_quantile(&[f64::NAN, f64::INFINITY], 0.5), None);
        assert_eq!(try_quantile(&[0.0], 0.5), Some(0.0));
        assert_eq!(try_quantiles(&[], &[0.1, 0.9]), None);
        assert_eq!(
            try_quantiles(&[0.0, 0.0], &[0.1, 0.9]),
            Some(vec![0.0, 0.0])
        );
        assert_eq!(try_median(&[f64::NAN]), None);
        assert_eq!(try_quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_of_singleton_is_that_value() {
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
        assert_eq!(quantile(&[7.0], 1.0), 7.0);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn type7_interpolation_matches_numpy() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25) - 1.75).abs() < 1e-12);
        // numpy.percentile([15, 20, 35, 40, 50], 40) == 29.0
        assert!((quantile(&[15.0, 20.0, 35.0, 40.0, 50.0], 0.40) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_q_is_clamped() {
        assert_eq!(quantile(&[1.0, 2.0, 3.0], -0.5), 1.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 1.5), 3.0);
    }

    #[test]
    fn nan_values_are_ignored() {
        assert_eq!(median(&[f64::NAN, 1.0, 2.0, 3.0, f64::NAN]), 2.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        assert_eq!(quantile(&[9.0, 1.0, 5.0], 0.5), 5.0);
    }

    proptest! {
        #[test]
        fn prop_quantile_monotone_in_q(
            data in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&data, lo) <= quantile(&data, hi) + 1e-9);
        }

        #[test]
        fn prop_quantile_within_range(
            data in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..1.0,
        ) {
            let v = quantile(&data, q);
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn prop_extremes_are_min_max(data in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(quantile(&data, 0.0), min);
            prop_assert_eq!(quantile(&data, 1.0), max);
        }
    }
}
