//! Information-theoretic measures over nominal (discretized) attributes.
//!
//! These are the primitives behind two of the paper's analysis steps:
//!
//! * **Information-gain ranking** (Tables 2 and 5): "the information gain
//!   represents the contribution of each feature in the construction of
//!   the predictive model". We compute `IG(class; feature)` on the
//!   discretized feature exactly as Weka's `InfoGainAttributeEval` does.
//! * **CFS merit** (§4.1/§4.2 feature selection): Weka's `CfsSubsetEval`
//!   scores a subset by average feature–class correlation over average
//!   feature–feature correlation, where "correlation" is the
//!   [`symmetrical_uncertainty`] of the discretized attributes.
//!
//! All entropies are in bits (log base 2).

/// Shannon entropy (bits) of a label sequence.
pub fn entropy_of_labels(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut counts: Vec<u64> = Vec::new();
    for &l in labels {
        if l >= counts.len() {
            counts.resize(l + 1, 0);
        }
        counts[l] += 1;
    }
    entropy_of_counts(&counts)
}

/// Shannon entropy (bits) from raw category counts.
pub fn entropy_of_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Conditional entropy `H(Y | X)` (bits) of labels `y` given nominal
/// attribute `x`.
///
/// # Panics
/// Panics if the sequences differ in length.
pub fn conditional_entropy(y: &[usize], x: &[usize]) -> f64 {
    assert_eq!(y.len(), x.len(), "label/attribute length mismatch");
    if y.is_empty() {
        return 0.0;
    }
    let n = y.len() as f64;
    // joint counts keyed by x value
    let x_max = x.iter().copied().max().unwrap_or(0);
    let y_max = y.iter().copied().max().unwrap_or(0);
    let mut joint = vec![vec![0u64; y_max + 1]; x_max + 1];
    let mut x_counts = vec![0u64; x_max + 1];
    for (&yi, &xi) in y.iter().zip(x.iter()) {
        joint[xi][yi] += 1;
        x_counts[xi] += 1;
    }
    let mut h = 0.0;
    for (xi, row) in joint.iter().enumerate() {
        if x_counts[xi] == 0 {
            continue;
        }
        let px = x_counts[xi] as f64 / n;
        h += px * entropy_of_counts(row);
    }
    h
}

/// Information gain `IG(Y; X) = H(Y) - H(Y | X)` (bits).
pub fn info_gain(y: &[usize], x: &[usize]) -> f64 {
    (entropy_of_labels(y) - conditional_entropy(y, x)).max(0.0)
}

/// Symmetrical uncertainty
/// `SU(X, Y) = 2 · IG(Y; X) / (H(X) + H(Y))`, in `[0, 1]`.
///
/// This is the "correlation" CfsSubsetEval uses for both feature–class and
/// feature–feature relations; unlike raw information gain it does not favor
/// attributes with many distinct values.
pub fn symmetrical_uncertainty(x: &[usize], y: &[usize]) -> f64 {
    let hx = entropy_of_labels(x);
    let hy = entropy_of_labels(y);
    let denom = hx + hy;
    if denom <= 0.0 {
        return 0.0;
    }
    (2.0 * info_gain(y, x) / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_of_uniform_binary_is_one_bit() {
        assert!((entropy_of_labels(&[0, 1, 0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_pure_labels_is_zero() {
        assert_eq!(entropy_of_labels(&[3, 3, 3]), 0.0);
        assert_eq!(entropy_of_labels(&[]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_four_way_is_two_bits() {
        assert!((entropy_of_labels(&[0, 1, 2, 3]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_informative_attribute_has_full_gain() {
        let y = [0, 0, 1, 1];
        let x = [5, 5, 9, 9]; // x determines y
        assert!((info_gain(&y, &x) - 1.0).abs() < 1e-12);
        assert!(conditional_entropy(&y, &x).abs() < 1e-12);
    }

    #[test]
    fn independent_attribute_has_zero_gain() {
        let y = [0, 1, 0, 1];
        let x = [0, 0, 1, 1]; // x ⟂ y here
        assert!(info_gain(&y, &x).abs() < 1e-12);
    }

    #[test]
    fn su_is_symmetric() {
        let a = [0, 0, 1, 1, 2, 2, 0, 1];
        let b = [1, 0, 1, 1, 0, 2, 2, 1];
        assert!((symmetrical_uncertainty(&a, &b) - symmetrical_uncertainty(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn su_of_identical_attributes_is_one() {
        let a = [0, 1, 2, 0, 1, 2];
        assert!((symmetrical_uncertainty(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn su_with_constant_attribute_is_zero() {
        let a = [0, 0, 0, 0];
        let b = [0, 1, 0, 1];
        assert_eq!(symmetrical_uncertainty(&a, &b), 0.0);
    }

    #[test]
    fn textbook_weather_info_gain() {
        // The classic "play tennis" outlook attribute: IG ≈ 0.2467 bits.
        // outlook: 0=sunny(5: 2 yes/3 no), 1=overcast(4: 4 yes), 2=rain(5: 3 yes/2 no)
        let outlook = [0, 0, 1, 2, 2, 2, 1, 0, 0, 2, 0, 1, 1, 2];
        let play = [0, 0, 1, 1, 1, 0, 1, 0, 1, 1, 1, 1, 1, 0];
        let ig = info_gain(&play, &outlook);
        assert!((ig - 0.2467).abs() < 1e-3, "ig = {ig}");
    }

    proptest! {
        #[test]
        fn prop_info_gain_nonnegative_and_bounded(
            pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..200)
        ) {
            let y: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
            let x: Vec<usize> = pairs.iter().map(|&(_, b)| b).collect();
            let ig = info_gain(&y, &x);
            prop_assert!(ig >= 0.0);
            prop_assert!(ig <= entropy_of_labels(&y) + 1e-9);
        }

        #[test]
        fn prop_su_in_unit_interval(
            pairs in proptest::collection::vec((0usize..5, 0usize..5), 1..200)
        ) {
            let x: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
            let y: Vec<usize> = pairs.iter().map(|&(_, b)| b).collect();
            let su = symmetrical_uncertainty(&x, &y);
            prop_assert!((0.0..=1.0).contains(&su));
        }

        #[test]
        fn prop_conditioning_never_increases_entropy(
            pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..200)
        ) {
            let y: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
            let x: Vec<usize> = pairs.iter().map(|&(_, b)| b).collect();
            prop_assert!(conditional_entropy(&y, &x) <= entropy_of_labels(&y) + 1e-9);
        }
    }
}
