//! # vqoe-stats
//!
//! Numerical foundations for the vqoe workspace: descriptive statistics,
//! quantiles, empirical distribution functions, histograms, discretization,
//! information-theoretic measures and correlation.
//!
//! Every other crate in the reproduction of *Measuring Video QoE from
//! Encrypted Traffic* (IMC 2016) builds on this one:
//!
//! * `vqoe-features` uses [`Summary`] and [`quantile`] to expand raw
//!   per-chunk metrics into the paper's summary-statistic feature sets
//!   (min / max / mean / std-dev / percentiles, §4.1 and §4.2).
//! * `vqoe-ml` uses [`info`] (entropy, information gain, symmetrical
//!   uncertainty) for the information-gain rankings of Tables 2 and 5 and
//!   for the CFS merit function, and [`binning`] to discretize continuous
//!   features first.
//! * `vqoe-changedet` uses [`Ecdf`] to reproduce the CDF separation plot of
//!   Figure 4, and [`moments`] for the σ(CUSUM) session score.
//!
//! The crate is deliberately dependency-light and fully deterministic: all
//! functions are pure, operate on slices, and make their NaN policy explicit
//! (see [`quantile`] and [`Summary::from_slice`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod correlation;
pub mod ecdf;
pub mod histogram;
pub mod info;
pub mod moments;
pub mod quantiles;
pub mod sketch;

pub use binning::{BinningStrategy, Discretizer};
pub use correlation::{pearson, spearman};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use info::{conditional_entropy, entropy_of_labels, info_gain, symmetrical_uncertainty};
pub use moments::{mean, population_std, sample_std, variance, OnlineMoments};
pub use quantiles::{
    median, quantile, quantile_sorted, quantiles, try_median, try_quantile, try_quantile_sorted,
    try_quantiles,
};
pub use sketch::{QuantileSketch, SKETCH_CAPACITY};

/// A compact descriptive summary of a numeric sample.
///
/// This is the unit from which the paper's feature-construction step builds
/// its expanded feature sets: for every raw metric (RTT, BDP, bytes in
/// flight, chunk size, ...) §4.1 derives *max, min, mean, standard deviation
/// and the 25th/50th/75th percentiles*, and §4.2 extends the percentile list
/// further. `Summary` computes all of those in one pass over the data plus
/// one sort.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of (finite) observations summarized.
    pub count: usize,
    /// Smallest observation; `0.0` for an empty sample.
    pub min: f64,
    /// Largest observation; `0.0` for an empty sample.
    pub max: f64,
    /// Arithmetic mean; `0.0` for an empty sample.
    pub mean: f64,
    /// Population standard deviation; `0.0` for samples of size < 2.
    pub std_dev: f64,
    /// 25th percentile (linear interpolation).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (linear interpolation).
    pub p75: f64,
}

impl Summary {
    /// Summarize a slice of observations.
    ///
    /// Non-finite values (NaN, ±∞) are ignored; an empty (or all-non-finite)
    /// slice yields the all-zero summary with `count == 0`. This mirrors how
    /// the paper's pipeline treats sessions with missing transport
    /// annotations: the feature is present but carries no information,
    /// rather than poisoning downstream models with NaN.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut finite: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Summary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                p25: 0.0,
                p50: 0.0,
                p75: 0.0,
            };
        }
        finite.sort_by(f64::total_cmp);
        let count = finite.len();
        let mean = moments::mean(&finite);
        let std_dev = moments::population_std(&finite);
        Summary {
            count,
            min: finite[0],
            max: finite[count - 1],
            mean,
            std_dev,
            p25: quantiles::quantile_sorted(&finite, 0.25),
            p50: quantiles::quantile_sorted(&finite, 0.50),
            p75: quantiles::quantile_sorted(&finite, 0.75),
        }
    }

    /// The seven canonical summary statistics of §4.1, in the order
    /// `[min, max, mean, std, p25, p50, p75]`.
    pub fn as_feature_row(&self) -> [f64; 7] {
        [
            self.min,
            self.max,
            self.mean,
            self.std_dev,
            self.p25,
            self.p50,
            self.p75,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_slice_is_zeroed() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 4.5);
    }

    #[test]
    fn feature_row_order_is_stable() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let row = s.as_feature_row();
        assert_eq!(row[0], s.min);
        assert_eq!(row[1], s.max);
        assert_eq!(row[2], s.mean);
        assert_eq!(row[3], s.std_dev);
        assert_eq!(row[6], s.p75);
    }
}
