//! A deterministic fixed-capacity quantile sketch.
//!
//! The streaming assessment path (ISSUE 10) keeps per-session state in
//! O(1) memory: running moments ([`crate::OnlineMoments`]) cover
//! min/max/mean/std exactly, and this sketch covers the percentile grid
//! approximately. It is a KLL-style compactor hierarchy with one
//! deliberate deviation from the textbook algorithm: **compaction is
//! seedless**. Where KLL flips a random coin to decide whether the odd
//! or even ranks survive a compaction, we alternate a per-level parity
//! bit. That trades the randomized error guarantee for a weaker
//! deterministic one — acceptable here, because sketched sessions are a
//! declared lower-fidelity tier (`Fidelity::Sketched`) with
//! pinned-tolerance predictions, while the reproduction's bit-identity
//! contract ("same tap, same report, any worker count") demands that
//! every code path be a pure function of its input order.
//!
//! Determinism contract:
//!
//! * `push` sequences that are element-for-element identical produce
//!   byte-identical sketches (no RNG, no addresses, no time);
//! * `merge(a, b)` is deterministic in the *argument order* — merging
//!   the same two sketches the same way around always yields the same
//!   bytes, but `merge(a, b)` and `merge(b, a)` may differ (callers
//!   that need cross-worker stability must merge in a canonical order,
//!   exactly like the engine's emission-key sort);
//! * serialization round-trips bit-exactly (the state is integers and
//!   f64 values already observed).
//!
//! Memory is bounded by `levels × capacity` values; with the pinned
//! [`SKETCH_CAPACITY`] of 64 and the ~log₂(n/64) levels an hour-long
//! session can reach, a sketch stays in the low kilobytes regardless of
//! session length.

use serde::{Deserialize, Serialize};

/// Values retained per compactor level, pinned workspace-wide (see the
/// `vqoe-analyze` constants pass and DESIGN.md §15). Error roughly
/// tracks O(1/capacity) per level; 64 keeps the §4.2 percentile grid
/// within a few percent of exact on realistic session lengths while
/// costing ~0.5 KiB per level.
pub const SKETCH_CAPACITY: usize = 64;

/// One level of the compactor hierarchy: a buffer of values each
/// representing `2^level` original observations, plus the parity bit
/// that replaces KLL's coin flip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Level {
    values: Vec<f64>,
    /// Which ranks survive the next compaction (alternates per
    /// compaction, making the schedule deterministic and unbiased over
    /// consecutive compactions).
    keep_odd: bool,
}

impl Level {
    fn new() -> Level {
        Level {
            values: Vec::new(),
            keep_odd: false,
        }
    }
}

/// Deterministic, mergeable, fixed-capacity quantile sketch (see the
/// module docs for the determinism contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    capacity: usize,
    levels: Vec<Level>,
    /// Total finite observations folded in (weights, not slots).
    count: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// Fresh sketch at the pinned [`SKETCH_CAPACITY`].
    pub fn new() -> Self {
        QuantileSketch::with_capacity(SKETCH_CAPACITY)
    }

    /// Fresh sketch retaining `capacity` values per level (minimum 4,
    /// rounded up to even so compaction halves cleanly).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(4) + (capacity % 2);
        QuantileSketch {
            capacity,
            levels: vec![Level::new()],
            count: 0,
        }
    }

    /// Fold in one observation. Non-finite values are ignored, matching
    /// [`crate::OnlineMoments::push`] and the batch builders' NaN
    /// policy.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.levels[0].values.push(x);
        self.compact_from(0);
    }

    /// Observations folded in so far (finite ones only).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no finite observation has been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Slots currently occupied across all levels (the memory bound is
    /// `capacity` per level; levels grow logarithmically in count).
    pub fn stored(&self) -> usize {
        self.levels.iter().map(|l| l.values.len()).sum()
    }

    /// Compact every level at or above `from` that exceeds capacity:
    /// sort the level, keep alternating ranks (parity bit decides
    /// which), and promote the survivors — now each standing for twice
    /// the weight — to the next level up.
    fn compact_from(&mut self, from: usize) {
        let mut lvl = from;
        while lvl < self.levels.len() {
            if self.levels[lvl].values.len() <= self.capacity {
                lvl += 1;
                continue;
            }
            let keep_odd = self.levels[lvl].keep_odd;
            self.levels[lvl].keep_odd = !keep_odd;
            let mut values = std::mem::take(&mut self.levels[lvl].values);
            values.sort_by(f64::total_cmp);
            let offset = usize::from(keep_odd);
            let survivors: Vec<f64> = values.into_iter().skip(offset).step_by(2).collect();
            if lvl + 1 == self.levels.len() {
                self.levels.push(Level::new());
            }
            self.levels[lvl + 1].values.extend(survivors);
            lvl += 1;
        }
    }

    /// Merge another sketch into this one. Level buffers concatenate
    /// (self's values first, then `other`'s), then over-full levels
    /// compact bottom-up — deterministic in argument order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Level::new());
        }
        for (lvl, theirs) in other.levels.iter().enumerate() {
            self.levels[lvl].values.extend_from_slice(&theirs.values);
        }
        self.count += other.count;
        self.compact_from(0);
    }

    /// Approximate quantile `q ∈ [0, 1]` (clamped), or `None` when the
    /// sketch is empty — the same honest-`Option` convention as
    /// [`crate::try_quantile`]. Computed over the weighted sorted
    /// union of all levels (a level-`l` value stands for `2^l`
    /// observations).
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut weighted: Vec<(f64, u64)> = Vec::with_capacity(self.stored());
        for (lvl, level) in self.levels.iter().enumerate() {
            let w = 1u64 << lvl.min(62);
            weighted.extend(level.values.iter().map(|&v| (v, w)));
        }
        weighted.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        // Rank of the requested quantile in the weighted sample,
        // type-7-flavoured: the target rank is q·(total−1), and we
        // return the first value whose cumulative weight passes it.
        let target = (q * (total.saturating_sub(1)) as f64).round() as u64;
        let mut cum = 0u64;
        for &(v, w) in &weighted {
            cum += w;
            if cum > target {
                return Some(v);
            }
        }
        weighted.last().map(|&(v, _)| v)
    }

    /// Several approximate quantiles in one weighted sort, aligned with
    /// `qs`; `None` when the sketch is empty.
    pub fn try_quantiles(&self, qs: &[f64]) -> Option<Vec<f64>> {
        if self.count == 0 {
            return None;
        }
        Some(qs.iter().filter_map(|&q| self.try_quantile(q)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantiles::try_quantile;
    use proptest::prelude::*;

    fn filled(data: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for &x in data {
            s.push(x);
        }
        s
    }

    #[test]
    fn empty_sketch_is_honest_about_it() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.try_quantile(0.5), None);
        assert_eq!(s.try_quantiles(&[0.1, 0.9]), None);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let s = filled(&[f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.try_quantile(0.0), Some(1.0));
        assert_eq!(s.try_quantile(1.0), Some(3.0));
    }

    #[test]
    fn under_capacity_quantiles_are_near_exact() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let s = filled(&data);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let exact = try_quantile(&data, q).unwrap();
            let approx = s.try_quantile(q).unwrap();
            assert!(
                (exact - approx).abs() <= 1.0,
                "q={q}: exact {exact} vs sketch {approx}"
            );
        }
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let data: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761u64) % 9973) as f64)
            .collect();
        let a = filled(&data);
        let b = filled(&data);
        assert_eq!(a, b, "same push sequence must be byte-identical");
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
        let back: QuantileSketch = serde_json::from_str(&ja).unwrap();
        assert_eq!(back, a, "serde round-trip is bit-exact");
    }

    #[test]
    fn memory_stays_bounded_at_large_counts() {
        let mut s = QuantileSketch::new();
        for i in 0..200_000u64 {
            s.push((i % 1000) as f64);
        }
        // log2(200000/64) ≈ 12 levels at 64+1 slots each.
        assert!(
            s.stored() <= 16 * (SKETCH_CAPACITY + 1),
            "stored {}",
            s.stored()
        );
        assert_eq!(s.count(), 200_000);
    }

    #[test]
    fn merge_is_deterministic_and_weight_preserving() {
        let a_data: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let b_data: Vec<f64> = (5_000..9_000).map(|i| i as f64).collect();
        let mut m1 = filled(&a_data);
        m1.merge(&filled(&b_data));
        let mut m2 = filled(&a_data);
        m2.merge(&filled(&b_data));
        assert_eq!(m1, m2, "same-order merge must be byte-identical");
        assert_eq!(m1.count(), 9_000);
        let median = m1.try_quantile(0.5).unwrap();
        assert!((median - 4_500.0).abs() < 450.0, "median {median}");
    }

    proptest! {
        #[test]
        fn prop_sketch_quantile_within_range(
            data in proptest::collection::vec(-1e6f64..1e6, 1..400),
            q in 0.0f64..1.0,
        ) {
            let s = filled(&data);
            let v = s.try_quantile(q).unwrap();
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min && v <= max);
        }

        #[test]
        fn prop_sketch_tracks_exact_on_large_streams(
            seed in 0u64..1000,
        ) {
            // A deterministic pseudo-stream well past capacity: the
            // sketch's median must land within a pinned tolerance of
            // the exact one (the Fidelity::Sketched contract).
            let data: Vec<f64> = (0..4096u64)
                .map(|i| ((i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(seed)) % 100_000) as f64)
                .collect();
            let s = filled(&data);
            let exact = try_quantile(&data, 0.5).unwrap();
            let approx = s.try_quantile(0.5).unwrap();
            prop_assert!(
                (exact - approx).abs() <= 0.05 * 100_000.0,
                "median drifted: exact {exact}, sketch {approx}"
            );
        }

        #[test]
        fn prop_quantiles_monotone(
            data in proptest::collection::vec(-1e6f64..1e6, 1..600),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let s = filled(&data);
            prop_assert!(s.try_quantile(lo).unwrap() <= s.try_quantile(hi).unwrap());
        }
    }
}
