//! Discretization of continuous features.
//!
//! The paper's feature-analysis machinery (information-gain ranking for
//! Tables 2 and 5, and the CFS subset selection of §4.1/§4.2) is defined
//! over *nominal* attributes, as in Weka. Weka discretizes continuous
//! attributes first (Fayyad–Irani MDL by default; equal-frequency as a
//! robust fallback). We provide both strategies behind one [`Discretizer`]
//! type; `vqoe-ml` uses equal-frequency binning by default because it is
//! parameter-light and behaves well on the heavy-tailed transport metrics
//! this dataset is full of, and exposes MDL-style entropy binning for the
//! ablation experiments.

/// How to choose bin boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinningStrategy {
    /// Equal-width bins over `[min, max]`.
    EqualWidth {
        /// Number of bins.
        bins: usize,
    },
    /// Equal-frequency bins (each bin holds ~the same number of training
    /// observations). Robust to heavy tails.
    EqualFrequency {
        /// Number of bins.
        bins: usize,
    },
}

/// A fitted discretizer: maps a continuous value to a bin index in
/// `0..n_bins()`.
#[derive(Debug, Clone)]
pub struct Discretizer {
    /// Ordered interior cut points; value `v` maps to the count of cuts
    /// `<= v`.
    cuts: Vec<f64>,
}

impl Discretizer {
    /// Fit a discretizer to training `data` with the given strategy.
    ///
    /// Degenerate inputs (empty data, constant data, or `bins < 2`)
    /// produce a single-bin discretizer, which downstream code treats as a
    /// zero-information feature.
    pub fn fit(data: &[f64], strategy: BinningStrategy) -> Self {
        let mut finite: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Discretizer { cuts: Vec::new() };
        }
        finite.sort_by(f64::total_cmp);
        let cuts = match strategy {
            BinningStrategy::EqualWidth { bins } => {
                let lo = finite[0];
                let hi = finite[finite.len() - 1];
                if bins < 2 || hi <= lo {
                    Vec::new()
                } else {
                    let width = (hi - lo) / bins as f64;
                    (1..bins).map(|i| lo + width * i as f64).collect()
                }
            }
            BinningStrategy::EqualFrequency { bins } => {
                if bins < 2 {
                    Vec::new()
                } else {
                    let mut cuts: Vec<f64> = Vec::new();
                    for i in 1..bins {
                        let q = i as f64 / bins as f64;
                        let c = crate::quantiles::quantile_sorted(&finite, q);
                        // A cut at or below the sample minimum would create an
                        // empty bottom bin (constant-data degenerate case).
                        if c > finite[0] && cuts.last().map_or(true, |&last| c > last) {
                            cuts.push(c);
                        }
                    }
                    cuts
                }
            }
        };
        Discretizer { cuts }
    }

    /// Fit using supervised entropy-based binary splitting (a simplified
    /// Fayyad–Irani scheme): recursively pick the cut that maximizes
    /// information gain against `labels`, stopping at `max_depth` levels
    /// (so at most `2^max_depth` bins) or when no cut yields positive gain.
    pub fn fit_entropy(data: &[f64], labels: &[usize], max_depth: usize) -> Self {
        assert_eq!(data.len(), labels.len(), "data/labels length mismatch");
        let mut pairs: Vec<(f64, usize)> = data
            .iter()
            .copied()
            .zip(labels.iter().copied())
            .filter(|(v, _)| v.is_finite())
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cuts = Vec::new();
        split_recursive(&pairs, max_depth, &mut cuts);
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        Discretizer { cuts }
    }

    /// Map a value to its bin index. NaN maps to bin 0.
    pub fn bin(&self, v: f64) -> usize {
        if !v.is_finite() {
            return 0;
        }
        self.cuts.partition_point(|&c| c <= v)
    }

    /// Number of bins this discretizer produces.
    pub fn n_bins(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The interior cut points.
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Discretize a whole column.
    pub fn transform(&self, data: &[f64]) -> Vec<usize> {
        data.iter().map(|&v| self.bin(v)).collect()
    }
}

fn split_recursive(pairs: &[(f64, usize)], depth: usize, cuts: &mut Vec<f64>) {
    if depth == 0 || pairs.len() < 4 {
        return;
    }
    let labels: Vec<usize> = pairs.iter().map(|&(_, l)| l).collect();
    let base_entropy = crate::info::entropy_of_labels(&labels);
    if base_entropy <= 0.0 {
        return;
    }
    let n = pairs.len() as f64;
    let mut best: Option<(usize, f64)> = None;
    for i in 1..pairs.len() {
        if pairs[i].0 <= pairs[i - 1].0 {
            continue; // not a valid boundary between distinct values
        }
        let left: Vec<usize> = pairs[..i].iter().map(|&(_, l)| l).collect();
        let right: Vec<usize> = pairs[i..].iter().map(|&(_, l)| l).collect();
        let h = (i as f64 / n) * crate::info::entropy_of_labels(&left)
            + ((pairs.len() - i) as f64 / n) * crate::info::entropy_of_labels(&right);
        let gain = base_entropy - h;
        if gain > 1e-9 && best.map_or(true, |(_, g)| gain > g) {
            best = Some((i, gain));
        }
    }
    if let Some((i, _)) = best {
        let cut = (pairs[i - 1].0 + pairs[i].0) / 2.0;
        cuts.push(cut);
        split_recursive(&pairs[..i], depth - 1, cuts);
        split_recursive(&pairs[i..], depth - 1, cuts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_width_bins_partition_the_range() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0];
        let d = Discretizer::fit(&data, BinningStrategy::EqualWidth { bins: 5 });
        assert_eq!(d.n_bins(), 5);
        assert_eq!(d.bin(0.0), 0);
        assert_eq!(d.bin(9.99), 4);
        assert_eq!(d.bin(10.0), 5 - 1); // top value in last bin
    }

    #[test]
    fn equal_frequency_balances_counts() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::fit(&data, BinningStrategy::EqualFrequency { bins: 4 });
        let binned = d.transform(&data);
        let mut counts = [0usize; 4];
        for b in binned {
            counts[b] += 1;
        }
        for &c in &counts {
            assert!((20..=30).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn constant_data_yields_single_bin() {
        let d = Discretizer::fit(&[3.0; 50], BinningStrategy::EqualFrequency { bins: 8 });
        assert_eq!(d.n_bins(), 1);
        assert_eq!(d.bin(3.0), 0);
        assert_eq!(d.bin(-10.0), 0);
    }

    #[test]
    fn empty_data_yields_single_bin() {
        let d = Discretizer::fit(&[], BinningStrategy::EqualWidth { bins: 8 });
        assert_eq!(d.n_bins(), 1);
    }

    #[test]
    fn nan_maps_to_bin_zero() {
        let d = Discretizer::fit(
            &[1.0, 2.0, 3.0, 4.0],
            BinningStrategy::EqualWidth { bins: 2 },
        );
        assert_eq!(d.bin(f64::NAN), 0);
    }

    #[test]
    fn entropy_binning_finds_the_class_boundary() {
        // Class 0 lives below 5, class 1 above: the single most informative
        // cut is between 4 and 6.
        let data = [1.0, 2.0, 3.0, 4.0, 6.0, 7.0, 8.0, 9.0];
        let labels = [0, 0, 0, 0, 1, 1, 1, 1];
        let d = Discretizer::fit_entropy(&data, &labels, 1);
        assert_eq!(d.cuts().len(), 1);
        assert!((d.cuts()[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_binning_on_pure_labels_makes_no_cut() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let labels = [1, 1, 1, 1, 1];
        let d = Discretizer::fit_entropy(&data, &labels, 3);
        assert_eq!(d.n_bins(), 1);
    }

    proptest! {
        #[test]
        fn prop_bin_is_monotone_in_value(
            data in proptest::collection::vec(-1e4f64..1e4, 2..100),
            v1 in -1e4f64..1e4,
            v2 in -1e4f64..1e4,
            bins in 2usize..10,
        ) {
            let d = Discretizer::fit(&data, BinningStrategy::EqualFrequency { bins });
            let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
            prop_assert!(d.bin(lo) <= d.bin(hi));
        }

        #[test]
        fn prop_bin_index_in_range(
            data in proptest::collection::vec(-1e4f64..1e4, 2..100),
            v in -1e5f64..1e5,
            bins in 2usize..10,
        ) {
            let d = Discretizer::fit(&data, BinningStrategy::EqualWidth { bins });
            prop_assert!(d.bin(v) < d.n_bins());
        }
    }
}
