//! Pipeline-tuned histogram bucket boundary sets.
//!
//! All boundaries are inclusive upper bounds in the unit named by the
//! constant; the +Inf overflow bucket is implicit. The sets are fixed
//! so that exposition output is stable across versions of the code that
//! share them.

/// Video chunk payload sizes in bytes. Tuned around the paper's
/// chunk-size feature range: audio chunks cluster below ~256 KiB,
/// low-definition video around 1 MiB, HD segments up to tens of MiB.
pub const CHUNK_BYTES: &[u64] = &[
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    16 * 1024 * 1024,
    64 * 1024 * 1024,
];

/// Session durations in microseconds: 30 s up to 80 min, covering short
/// clips through feature-length playback.
pub const SESSION_MICROS: &[u64] = &[
    30_000_000,
    60_000_000,
    150_000_000,
    300_000_000,
    600_000_000,
    1_200_000_000,
    2_400_000_000,
    4_800_000_000,
];

/// Wall-clock stage latencies in microseconds (100 us .. 100 s), used
/// by the non-deterministic crates (bench, CLI) only.
pub const STAGE_MICROS: &[u64] = &[
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

/// Deterministic work-tick spans (entries processed per stage), powers
/// of four from 1 to 16384.
pub const WORK_TICKS: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096, 16384];

/// Reduce-merge batch sizes (emissions merged per shard), powers of
/// four from 1 to 4096.
pub const MERGE_SIZE: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bucket_sets_are_strictly_increasing() {
        for set in [
            CHUNK_BYTES,
            SESSION_MICROS,
            STAGE_MICROS,
            WORK_TICKS,
            MERGE_SIZE,
        ] {
            assert!(set.windows(2).all(|w| w[0] < w[1]), "unsorted set: {set:?}");
            assert!(!set.is_empty());
        }
    }
}
