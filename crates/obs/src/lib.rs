//! Deterministic observability layer for the vqoe pipeline.
//!
//! The monitor runs unattended inside an operator network; the only way
//! to trust a passive QoE pipeline is to watch it run. This crate is the
//! single source of runtime telemetry for the workspace:
//!
//! - [`Registry`] — a metrics registry of monotonic [`Counter`]s,
//!   [`Gauge`]s, and fixed-boundary [`Histogram`]s. Handles are cheap
//!   `Arc`-backed clones; the hot path touches only atomics, never the
//!   registry lock.
//! - [`MetricClass`] — every metric is either `Stable` (derived purely
//!   from the input data, identical across runs and worker counts) or
//!   `Runtime` (scheduling/wall-clock dependent). The JSON snapshot sink
//!   renders only `Stable` metrics and is therefore byte-identical for
//!   identical input; the Prometheus text sink renders everything.
//! - [`Clock`] / [`SimClock`] / [`StageSpan`] — span-style stage timing
//!   behind a trait. The deterministic crates only ever see `SimClock`,
//!   a tick counter advanced by work units (entries processed), so the
//!   `vqoe-analyze` determinism gates stay green. Wall-clock `Clock`
//!   implementations live in `vqoe-bench` and the `vqoe` CLI only.
//! - [`Reporter`] — a levelled (quiet/normal/verbose) stderr reporter
//!   replacing ad-hoc `eprintln!` health reporting in the CLI.
//! - [`TraceSink`] / [`Trace`] — deterministic session tracing: typed
//!   span events (ingest → reassemble → fan-out → deliver → reduce)
//!   recorded per shard job without locks, merged in emission-key
//!   order, exported as Chrome trace-event JSON and compact JSONL.
//! - [`AlertEngine`] — declarative alerting (threshold, rate-over-
//!   window, injected change-detector drift) over per-window metric
//!   sample series, with rules parsed from a TOML subset
//!   ([`parse_rules`]).
//!
//! Metric names follow `vqoe_<crate>_<subsystem>_<name>`, with the usual
//! Prometheus `_total` suffix on counters. Bucket boundaries tuned for
//! the pipeline (chunk sizes, session durations, stage latencies, work
//! ticks) live in [`buckets`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alerts;
pub mod buckets;
mod clock;
mod registry;
mod reporter;
mod trace;

pub use alerts::{
    parse_rules, Alert, AlertEngine, AlertRule, AlertSeverity, DriftFn, RuleKind, RuleParseError,
    MAX_SAMPLES_PER_SERIES,
};
pub use clock::{Clock, SimClock, StageSpan};
pub use registry::{
    Counter, Exemplar, Gauge, Histogram, MetricClass, MetricDesc, Registry, SnapshotError,
    EXEMPLARS_PER_BUCKET,
};
pub use reporter::{ReportLevel, Reporter};
pub use trace::{Trace, TraceConfig, TraceEvent, TraceSink, TraceStage, TRACE_FORMAT_VERSION};
