//! Deterministic observability layer for the vqoe pipeline.
//!
//! The monitor runs unattended inside an operator network; the only way
//! to trust a passive QoE pipeline is to watch it run. This crate is the
//! single source of runtime telemetry for the workspace:
//!
//! - [`Registry`] — a metrics registry of monotonic [`Counter`]s,
//!   [`Gauge`]s, and fixed-boundary [`Histogram`]s. Handles are cheap
//!   `Arc`-backed clones; the hot path touches only atomics, never the
//!   registry lock.
//! - [`MetricClass`] — every metric is either `Stable` (derived purely
//!   from the input data, identical across runs and worker counts) or
//!   `Runtime` (scheduling/wall-clock dependent). The JSON snapshot sink
//!   renders only `Stable` metrics and is therefore byte-identical for
//!   identical input; the Prometheus text sink renders everything.
//! - [`Clock`] / [`SimClock`] / [`StageSpan`] — span-style stage timing
//!   behind a trait. The deterministic crates only ever see `SimClock`,
//!   a tick counter advanced by work units (entries processed), so the
//!   `vqoe-analyze` determinism gates stay green. Wall-clock `Clock`
//!   implementations live in `vqoe-bench` and the `vqoe` CLI only.
//! - [`Reporter`] — a levelled (quiet/normal/verbose) stderr reporter
//!   replacing ad-hoc `eprintln!` health reporting in the CLI.
//!
//! Metric names follow `vqoe_<crate>_<subsystem>_<name>`, with the usual
//! Prometheus `_total` suffix on counters. Bucket boundaries tuned for
//! the pipeline (chunk sizes, session durations, stage latencies, work
//! ticks) live in [`buckets`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buckets;
mod clock;
mod registry;
mod reporter;

pub use clock::{Clock, SimClock, StageSpan};
pub use registry::{Counter, Gauge, Histogram, MetricClass, Registry, SnapshotError};
pub use reporter::{ReportLevel, Reporter};
