//! Deterministic session tracing — typed span events over the ingest →
//! reassemble → fan-out → deliver → reduce pipeline.
//!
//! A [`TraceSink`] is a *per-shard-job* bounded buffer: engine workers
//! each own one, record into it without any lock, and hand it back
//! through their join handle exactly like assessment emissions. The
//! merged [`Trace`] orders events by `(emission key, sequence)` — the
//! same total order the reducer applies to assessments — so the trace
//! is byte-stable across runs and worker counts.
//!
//! Every timestamp and duration is measured in deterministic ticks
//! (session-relative work units under [`SimClock`](crate::SimClock)),
//! never wall clock: two runs over the same tap produce the same bytes.
//!
//! Exports: Chrome trace-event JSON ([`Trace::to_chrome_json`],
//! loadable in Perfetto / `chrome://tracing`) and a compact JSONL event
//! log ([`Trace::to_jsonl`]).

use std::fmt::Write as _;

/// Format version stamped into every Chrome trace export (the
/// `otherData.formatVersion` field) and the JSONL header line.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Which pipeline stage a span covers, in hot-path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceStage {
    /// Raw weblog entries offered to the pipeline for one session.
    Ingest,
    /// Session carving / reassembly of the media chunks.
    Reassemble,
    /// Subscription fan-out: handing the session view to the detectors.
    Fanout,
    /// One detector's `deliver` call (the detector name is the event
    /// detail).
    Deliver,
    /// The ordered reducer merging per-shard emissions.
    Reduce,
}

impl TraceStage {
    /// Stable lowercase label (trace event names, JSONL `stage` field).
    pub fn label(&self) -> &'static str {
        match self {
            TraceStage::Ingest => "ingest",
            TraceStage::Reassemble => "reassemble",
            TraceStage::Fanout => "fanout",
            TraceStage::Deliver => "deliver",
            TraceStage::Reduce => "reduce",
        }
    }
}

/// One completed span, keyed by the emission key of the session that
/// produced it. Purely a function of the input data — no wall clock, no
/// scheduling state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The emission key `(phase, major, minor)` of the session this
    /// span belongs to — the same key the engine's reducer sorts
    /// assessments by, so trace order mirrors emission order.
    pub key: (u8, u64, u32),
    /// Order of this span within its emission key (stage sequence).
    pub seq: u32,
    /// Which stage the span covers.
    pub stage: TraceStage,
    /// The subscriber whose session produced the span.
    pub subscriber: u64,
    /// Session identity: the session start time in microseconds of tap
    /// time (deterministic, replayable).
    pub session: u64,
    /// Span start in deterministic ticks.
    pub start_tick: u64,
    /// Span length in deterministic ticks.
    pub dur_ticks: u64,
    /// Free-form detail (e.g. the detector name for `Deliver` spans).
    pub detail: &'static str,
}

/// Capacity knobs for a tracing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events buffered per shard job; events beyond the cap are
    /// counted as dropped, never silently lost. The shard → entry
    /// routing is worker-independent, so the drop set is deterministic
    /// at any worker count.
    pub capacity_per_shard: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity_per_shard: 65_536,
        }
    }
}

/// A bounded, lock-free event buffer owned by exactly one shard job.
///
/// Workers never share a sink: each job records into its own and the
/// buffers travel back through join handles, so the hot path takes no
/// lock and the merge order is decided once, in the reducer.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceSink {
    /// Empty sink holding at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        TraceSink {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Record one span (kept under the cap, counted always).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events recorded beyond the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the sink into its buffered events and drop count.
    pub fn into_parts(self) -> (Vec<TraceEvent>, u64) {
        (self.events, self.dropped)
    }
}

/// A merged, totally ordered trace: the union of every shard job's
/// sink, sorted by `(emission key, sequence)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Merge raw per-shard events (any order) into the canonical trace
    /// order. `dropped` is the sum over all contributing sinks.
    pub fn from_parts(mut events: Vec<TraceEvent>, dropped: u64) -> Self {
        events.sort_by_key(|e| (e.key, e.seq));
        Trace { events, dropped }
    }

    /// The ordered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total events dropped by per-shard capacity caps.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the Chrome trace-event JSON object format: an ordered
    /// `traceEvents` array of complete (`"ph": "X"`) events plus
    /// `otherData` carrying [`TRACE_FORMAT_VERSION`]. Loadable in
    /// Perfetto and `chrome://tracing`; byte-stable for identical
    /// input.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"otherData\": {\n");
        let _ = writeln!(
            out,
            "    \"formatVersion\": \"{TRACE_FORMAT_VERSION}\",\n    \
             \"droppedEvents\": \"{}\"\n  }},",
            self.dropped
        );
        out.push_str("  \"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let comma = if i + 1 == self.events.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"cat\": \"vqoe\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \
                 \"args\": {{\"key\": \"{}/{}/{}\", \"seq\": {}, \"detail\": \"{}\"}}}}{comma}",
                e.stage.label(),
                e.start_tick,
                e.dur_ticks,
                e.subscriber,
                e.session,
                e.key.0,
                e.key.1,
                e.key.2,
                e.seq,
                escape(e.detail),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render the compact JSONL event log: a header line carrying the
    /// format version and drop count, then one object per event in
    /// trace order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"format_version\": {TRACE_FORMAT_VERSION}, \"events\": {}, \"dropped\": {}}}",
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "{{\"key\": [{}, {}, {}], \"seq\": {}, \"stage\": \"{}\", \
                 \"subscriber\": {}, \"session\": {}, \"ts\": {}, \"dur\": {}, \
                 \"detail\": \"{}\"}}",
                e.key.0,
                e.key.1,
                e.key.2,
                e.seq,
                e.stage.label(),
                e.subscriber,
                e.session,
                e.start_tick,
                e.dur_ticks,
                escape(e.detail),
            );
        }
        out
    }
}

/// Minimal JSON string escaping for event details (detector names are
/// plain ASCII, but the format must stay valid for any input).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: (u8, u64, u32), seq: u32, stage: TraceStage) -> TraceEvent {
        TraceEvent {
            key,
            seq,
            stage,
            subscriber: 7,
            session: 1_000_000,
            start_tick: 3,
            dur_ticks: 2,
            detail: "",
        }
    }

    #[test]
    fn sink_caps_and_counts_drops() {
        let mut sink = TraceSink::with_capacity(2);
        for i in 0..5 {
            sink.record(ev((0, i, 0), 0, TraceStage::Ingest));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let (events, dropped) = sink.into_parts();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn trace_orders_by_key_then_seq() {
        let events = vec![
            ev((1, 5, 0), 1, TraceStage::Reassemble),
            ev((0, 9, 0), 0, TraceStage::Ingest),
            ev((1, 5, 0), 0, TraceStage::Ingest),
            ev((0, 2, 1), 0, TraceStage::Ingest),
        ];
        let trace = Trace::from_parts(events, 0);
        let order: Vec<((u8, u64, u32), u32)> =
            trace.events().iter().map(|e| (e.key, e.seq)).collect();
        assert_eq!(
            order,
            vec![
                ((0, 2, 1), 0),
                ((0, 9, 0), 0),
                ((1, 5, 0), 0),
                ((1, 5, 0), 1)
            ]
        );
    }

    #[test]
    fn merge_is_order_independent() {
        let a = vec![
            ev((0, 1, 0), 0, TraceStage::Ingest),
            ev((1, 2, 0), 0, TraceStage::Fanout),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(Trace::from_parts(a, 1), Trace::from_parts(b, 1));
    }

    #[test]
    fn chrome_export_carries_version_and_events() {
        let trace = Trace::from_parts(vec![ev((0, 1, 0), 0, TraceStage::Deliver)], 2);
        let json = trace.to_chrome_json();
        assert!(json.contains("\"formatVersion\": \"1\""));
        assert!(json.contains("\"droppedEvents\": \"2\""));
        assert!(json.contains("\"name\": \"deliver\""));
        assert!(json.contains("\"ph\": \"X\""));
    }

    #[test]
    fn jsonl_has_header_plus_one_line_per_event() {
        let trace = Trace::from_parts(
            vec![
                ev((0, 1, 0), 0, TraceStage::Ingest),
                ev((0, 1, 0), 1, TraceStage::Reassemble),
            ],
            0,
        );
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains("\"format_version\": 1"));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
