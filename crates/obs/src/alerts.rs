//! Declarative alerting over per-window metric sample series.
//!
//! An [`AlertEngine`] holds a set of [`AlertRule`]s and a bank of named
//! sample series. The pipeline pushes one sample per series per tick
//! window (e.g. the shed-event delta over the last N ingested records);
//! [`AlertEngine::finish`] evaluates every rule over the complete
//! series and returns typed [`Alert`]s.
//!
//! Three rule kinds:
//!
//! - **threshold** — fires on the first window whose sample exceeds a
//!   fixed maximum.
//! - **rate** — fires on the first window whose sample *increase* over
//!   the previous window exceeds a maximum delta.
//! - **drift** — fires when a change detector flags the series. The
//!   detector itself is injected as a plain function pointer
//!   ([`DriftFn`]) so this crate stays dependency-free; the workspace
//!   wires in the `vqoe-changedet` CUSUM chart.
//!
//! Everything here is deterministic: series are ordered vectors keyed
//! by a `BTreeMap`, evaluation walks rules in declaration order, and no
//! clock is consulted. Rules parse from a small TOML subset
//! ([`parse_rules`]) so `--alerts rules.toml` needs no external parser.

use std::collections::BTreeMap;
use std::fmt;

/// How loud an alert is (maps to the levelled stderr reporter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Worth a look; reported at verbose level.
    Warning,
    /// Action needed; reported at normal level.
    Critical,
}

impl AlertSeverity {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }
}

/// What condition a rule checks against its series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleKind {
    /// Sample value above `max`.
    Threshold {
        /// Maximum allowed sample value.
        max: f64,
    },
    /// Sample increase over the previous window above `max_delta`.
    RateOverWindow {
        /// Maximum allowed window-over-window increase.
        max_delta: f64,
    },
    /// Change-detector drift with threshold `h_sigmas` (in σ units of
    /// the series, as the backend defines it).
    Drift {
        /// Alarm threshold handed to the [`DriftFn`] backend.
        h_sigmas: f64,
    },
}

impl RuleKind {
    /// Stable lowercase label (the TOML `kind` value).
    pub fn label(&self) -> &'static str {
        match self {
            RuleKind::Threshold { .. } => "threshold",
            RuleKind::RateOverWindow { .. } => "rate",
            RuleKind::Drift { .. } => "drift",
        }
    }
}

/// One declarative alerting rule bound to a named sample series.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name (unique per engine by convention; reported verbatim).
    pub name: String,
    /// The sample series the rule watches.
    pub series: String,
    /// How loud a firing is.
    pub severity: AlertSeverity,
    /// The condition.
    pub kind: RuleKind,
}

/// One fired alert. Values are fixed-point milli-units so alerts can be
/// compared exactly (`Eq`) and rendered without float formatting drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// The rule that fired.
    pub rule: String,
    /// Its severity.
    pub severity: AlertSeverity,
    /// The series it watched.
    pub series: String,
    /// 0-based index of the tick window where the condition first held.
    pub window: u64,
    /// The offending sample (or delta) in milli-units, rounded to
    /// nearest.
    pub value_milli: i64,
    /// Human-readable one-liner.
    pub message: String,
}

/// Injected drift detector: given the full sample series and a
/// threshold, return the first alarming window index (or `None`).
pub type DriftFn = fn(&[f64], f64) -> Option<usize>;

/// Hard cap on retained samples per series; the oldest sample is
/// discarded beyond it (deterministically), keeping a long-running
/// engine bounded.
pub const MAX_SAMPLES_PER_SERIES: usize = 4096;

/// Rule evaluator over named per-window sample series.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    series: BTreeMap<String, Vec<f64>>,
    drift: Option<DriftFn>,
    windows: u64,
}

impl AlertEngine {
    /// Engine over `rules` with no drift backend (drift rules are
    /// skipped until [`AlertEngine::with_drift`] installs one).
    pub fn new(rules: Vec<AlertRule>) -> Self {
        AlertEngine {
            rules,
            series: BTreeMap::new(),
            drift: None,
            windows: 0,
        }
    }

    /// Install the drift-detection backend.
    pub fn with_drift(mut self, drift: DriftFn) -> Self {
        self.drift = Some(drift);
        self
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Number of completed sample windows so far (the maximum series
    /// length).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Append one sample to `series` for the current window. Series a
    /// rule never references are still accepted (and bounded).
    pub fn push_sample(&mut self, series: &str, value: f64) {
        let samples = self.series.entry(series.to_string()).or_default();
        if samples.len() >= MAX_SAMPLES_PER_SERIES {
            samples.remove(0);
        }
        samples.push(value);
        self.windows = self.windows.max(samples.len() as u64);
    }

    /// Evaluate every rule over its full series, clear the sample bank,
    /// and return the fired alerts in rule declaration order (at most
    /// one alert per rule: the first window where the condition held).
    pub fn finish(&mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for rule in &self.rules {
            let samples = self
                .series
                .get(&rule.series)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let fired = match rule.kind {
                RuleKind::Threshold { max } => samples
                    .iter()
                    .position(|&v| v > max)
                    .map(|i| (i, samples[i])),
                RuleKind::RateOverWindow { max_delta } => samples
                    .windows(2)
                    .position(|w| w[1] - w[0] > max_delta)
                    .map(|i| (i + 1, samples[i + 1] - samples[i])),
                RuleKind::Drift { h_sigmas } => self
                    .drift
                    .and_then(|f| f(samples, h_sigmas))
                    .map(|i| (i, samples.get(i).copied().unwrap_or(0.0))),
            };
            if let Some((window, value)) = fired {
                let value_milli = (value * 1000.0).round() as i64;
                alerts.push(Alert {
                    rule: rule.name.clone(),
                    severity: rule.severity,
                    series: rule.series.clone(),
                    window: window as u64,
                    value_milli,
                    message: format!(
                        "{} [{}]: {} {} on series {} at window {} (value {}.{:03})",
                        rule.name,
                        rule.severity.label(),
                        rule.kind.label(),
                        "condition met",
                        rule.series,
                        window,
                        value_milli / 1000,
                        (value_milli % 1000).unsigned_abs(),
                    ),
                });
            }
        }
        self.series.clear();
        self.windows = 0;
        alerts
    }
}

/// A malformed rules file: what went wrong and on which 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// What was wrong.
    pub what: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rules line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for RuleParseError {}

/// Parse alerting rules from a TOML subset: `[[rule]]` tables with
/// `name`, `series`, `kind` (`"threshold"` | `"rate"` | `"drift"`),
/// `severity` (`"warning"` | `"critical"`, default `"warning"`), and
/// the kind's parameter (`max`, `max_delta`, or `h_sigmas`). Comments
/// (`#`) and blank lines are ignored.
///
/// ```
/// let rules = vqoe_obs::parse_rules(
///     "[[rule]]\nname = \"shed-drift\"\nseries = \"shed_rate\"\n\
///      kind = \"drift\"\nh_sigmas = 4.0\nseverity = \"critical\"\n",
/// )
/// .unwrap();
/// assert_eq!(rules.len(), 1);
/// ```
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, RuleParseError> {
    struct Pending {
        line: usize,
        name: Option<String>,
        series: Option<String>,
        kind: Option<String>,
        severity: Option<String>,
        max: Option<f64>,
        max_delta: Option<f64>,
        h_sigmas: Option<f64>,
    }
    fn close(p: Pending) -> Result<AlertRule, RuleParseError> {
        let err = |what: &str| RuleParseError {
            what: what.to_string(),
            line: p.line,
        };
        let name = p
            .name
            .clone()
            .ok_or_else(|| err("rule is missing `name`"))?;
        let series = p
            .series
            .clone()
            .ok_or_else(|| err("rule is missing `series`"))?;
        let severity = match p.severity.as_deref() {
            None | Some("warning") => AlertSeverity::Warning,
            Some("critical") => AlertSeverity::Critical,
            Some(_) => return Err(err("`severity` must be \"warning\" or \"critical\"")),
        };
        let kind = match p.kind.as_deref() {
            Some("threshold") => RuleKind::Threshold {
                max: p.max.ok_or_else(|| err("threshold rule needs `max`"))?,
            },
            Some("rate") => RuleKind::RateOverWindow {
                max_delta: p
                    .max_delta
                    .or(p.max)
                    .ok_or_else(|| err("rate rule needs `max_delta`"))?,
            },
            Some("drift") => RuleKind::Drift {
                h_sigmas: p
                    .h_sigmas
                    .ok_or_else(|| err("drift rule needs `h_sigmas`"))?,
            },
            _ => {
                return Err(err(
                    "rule needs `kind` = \"threshold\" | \"rate\" | \"drift\"",
                ))
            }
        };
        Ok(AlertRule {
            name,
            series,
            severity,
            kind,
        })
    }

    let mut rules = Vec::new();
    let mut pending: Option<Pending> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.split_once('#') {
            Some((head, _)) => head.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            if let Some(p) = pending.take() {
                rules.push(close(p)?);
            }
            pending = Some(Pending {
                line: lineno,
                name: None,
                series: None,
                kind: None,
                severity: None,
                max: None,
                max_delta: None,
                h_sigmas: None,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(RuleParseError {
                what: format!("expected `key = value` or [[rule]], got {line:?}"),
                line: lineno,
            });
        };
        let Some(p) = pending.as_mut() else {
            return Err(RuleParseError {
                what: "key outside any [[rule]] table".to_string(),
                line: lineno,
            });
        };
        let key = key.trim();
        let value = value.trim();
        let string = |v: &str| -> Result<String, RuleParseError> {
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or(RuleParseError {
                    what: format!("`{key}` expects a quoted string"),
                    line: lineno,
                })?;
            Ok(v.to_string())
        };
        let number = |v: &str| -> Result<f64, RuleParseError> {
            v.parse::<f64>().map_err(|_| RuleParseError {
                what: format!("`{key}` expects a number, got {v:?}"),
                line: lineno,
            })
        };
        match key {
            "name" => p.name = Some(string(value)?),
            "series" => p.series = Some(string(value)?),
            "kind" => p.kind = Some(string(value)?),
            "severity" => p.severity = Some(string(value)?),
            "max" => p.max = Some(number(value)?),
            "max_delta" => p.max_delta = Some(number(value)?),
            "h_sigmas" => p.h_sigmas = Some(number(value)?),
            other => {
                return Err(RuleParseError {
                    what: format!("unknown key `{other}`"),
                    line: lineno,
                })
            }
        }
    }
    if let Some(p) = pending.take() {
        rules.push(close(p)?);
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold(name: &str, series: &str, max: f64) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            series: series.to_string(),
            severity: AlertSeverity::Critical,
            kind: RuleKind::Threshold { max },
        }
    }

    #[test]
    fn threshold_fires_on_first_crossing() {
        let mut engine = AlertEngine::new(vec![threshold("t", "q", 5.0)]);
        for v in [1.0, 2.0, 7.0, 9.0] {
            engine.push_sample("q", v);
        }
        let alerts = engine.finish();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window, 2);
        assert_eq!(alerts[0].value_milli, 7000);
        assert_eq!(alerts[0].severity, AlertSeverity::Critical);
    }

    #[test]
    fn rate_rule_watches_window_deltas() {
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "surge".to_string(),
            series: "s".to_string(),
            severity: AlertSeverity::Warning,
            kind: RuleKind::RateOverWindow { max_delta: 3.0 },
        }]);
        for v in [0.0, 2.0, 3.0, 10.0] {
            engine.push_sample("s", v);
        }
        let alerts = engine.finish();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window, 3);
        assert_eq!(alerts[0].value_milli, 7000);
    }

    #[test]
    fn drift_rule_is_silent_without_a_backend() {
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "d".to_string(),
            series: "s".to_string(),
            severity: AlertSeverity::Critical,
            kind: RuleKind::Drift { h_sigmas: 2.0 },
        }]);
        for v in 0..50 {
            engine.push_sample("s", if v < 25 { 0.0 } else { 100.0 });
        }
        assert!(engine.finish().is_empty());
    }

    #[test]
    fn drift_rule_uses_the_injected_backend() {
        fn jump(series: &[f64], _h: f64) -> Option<usize> {
            series
                .windows(2)
                .position(|w| w[1] > w[0] + 50.0)
                .map(|i| i + 1)
        }
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "d".to_string(),
            series: "s".to_string(),
            severity: AlertSeverity::Critical,
            kind: RuleKind::Drift { h_sigmas: 2.0 },
        }])
        .with_drift(jump);
        for v in [0.0, 1.0, 99.0] {
            engine.push_sample("s", v);
        }
        let alerts = engine.finish();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window, 2);
    }

    #[test]
    fn finish_clears_the_sample_bank() {
        let mut engine = AlertEngine::new(vec![threshold("t", "q", 5.0)]);
        engine.push_sample("q", 9.0);
        assert_eq!(engine.finish().len(), 1);
        assert!(engine.finish().is_empty(), "second finish sees no samples");
        assert_eq!(engine.windows(), 0);
    }

    #[test]
    fn sample_bank_is_bounded() {
        let mut engine = AlertEngine::new(Vec::new());
        for i in 0..(MAX_SAMPLES_PER_SERIES + 10) {
            engine.push_sample("s", i as f64);
        }
        assert_eq!(
            engine.series.get("s").unwrap().len(),
            MAX_SAMPLES_PER_SERIES
        );
        assert_eq!(engine.series.get("s").unwrap()[0], 10.0, "oldest evicted");
    }

    #[test]
    fn parse_rules_round_trips_every_kind() {
        let text = r#"
# drift on the shed-rate series
[[rule]]
name = "shed-drift"
series = "shed_rate"
kind = "drift"
h_sigmas = 4.0
severity = "critical"

[[rule]]
name = "queue-cap"      # inline comment
series = "queue_depth"
kind = "threshold"
max = 100

[[rule]]
name = "anomaly-surge"
series = "anomaly_rate"
kind = "rate"
max_delta = 12.5
severity = "warning"
"#;
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].kind, RuleKind::Drift { h_sigmas: 4.0 });
        assert_eq!(rules[0].severity, AlertSeverity::Critical);
        assert_eq!(rules[1].kind, RuleKind::Threshold { max: 100.0 });
        assert_eq!(rules[1].severity, AlertSeverity::Warning);
        assert_eq!(rules[2].kind, RuleKind::RateOverWindow { max_delta: 12.5 });
    }

    #[test]
    fn parse_rules_reports_line_numbers() {
        let err =
            parse_rules("[[rule]]\nseries = \"s\"\nkind = \"drift\"\nh_sigmas = 1\n").unwrap_err();
        assert_eq!(err.line, 1, "close error anchors at the table header");
        assert!(err.what.contains("name"));
        let err = parse_rules("name = \"x\"\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.what.contains("outside"));
        let err = parse_rules("[[rule]]\nbogus = 3\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
