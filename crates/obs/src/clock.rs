//! Stage timing behind a `Clock` trait.
//!
//! The deterministic crates never read wall time: they drive a
//! [`SimClock`], a tick counter advanced by work units (one tick per
//! entry processed), so stage "latency" histograms measure work, not
//! scheduling, and stay identical across runs and worker counts.
//! Wall-clock `Clock` implementations are confined to `vqoe-bench` and
//! the `vqoe` CLI binary.

use crate::registry::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic clock abstraction for stage timing.
pub trait Clock {
    /// Current reading. Units are implementation-defined: work ticks
    /// for [`SimClock`], microseconds for wall-clock implementations.
    fn now(&self) -> u64;

    /// Whether readings are a pure function of the work performed
    /// (true for [`SimClock`], false for wall clocks).
    fn is_deterministic(&self) -> bool {
        true
    }
}

/// Deterministic tick-counter clock.
///
/// The instrumented code calls [`SimClock::advance`] once per unit of
/// work; span durations are therefore work counts, reproducible
/// regardless of thread scheduling.
#[derive(Debug, Default)]
pub struct SimClock {
    ticks: AtomicU64,
}

impl SimClock {
    /// New clock at tick zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advance the clock by `n` ticks.
    pub fn advance(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// A span-style stage timer: reads the clock on `start`, observes the
/// elapsed delta into a histogram on `finish`.
#[derive(Debug)]
pub struct StageSpan<'a, C: Clock + ?Sized> {
    clock: &'a C,
    hist: &'a Histogram,
    start: u64,
}

impl<'a, C: Clock + ?Sized> StageSpan<'a, C> {
    /// Start a span against `clock`, recording into `hist` on finish.
    pub fn start(clock: &'a C, hist: &'a Histogram) -> Self {
        StageSpan {
            clock,
            hist,
            start: clock.now(),
        }
    }

    /// End the span: observe and return the elapsed clock delta.
    pub fn finish(self) -> u64 {
        let elapsed = self.clock.now().saturating_sub(self.start);
        self.hist.observe(elapsed);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_monotonically() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), 0);
        assert!(clock.is_deterministic());
        clock.advance(3);
        clock.advance(2);
        assert_eq!(clock.now(), 5);
    }

    #[test]
    fn stage_span_observes_elapsed_ticks() {
        let clock = SimClock::new();
        let hist = Histogram::default();
        clock.advance(10);
        let span = StageSpan::start(&clock, &hist);
        clock.advance(7);
        assert_eq!(span.finish(), 7);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 7);
    }

    #[test]
    fn stage_span_works_through_dyn_clock() {
        let clock = SimClock::new();
        let hist = Histogram::default();
        let dyn_clock: &dyn Clock = &clock;
        let span = StageSpan::start(dyn_clock, &hist);
        clock.advance(4);
        assert_eq!(span.finish(), 4);
    }
}
