//! Metrics registry: counters, gauges, fixed-boundary histograms, and
//! the two exposition sinks (Prometheus text, stable JSON snapshot).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How many exemplars a histogram bucket retains when exemplar capture
/// is enabled: the top samples by value, ties broken toward the
/// smallest `(session, tick)`. A fixed cap keeps the merge rule
/// commutative — the retained set is a pure function of the observed
/// multiset, independent of worker count or arrival order.
pub const EXEMPLARS_PER_BUCKET: usize = 1;

/// A sample linked back to the session that produced it: the bucket's
/// maximal observation plus enough identity (session id, deterministic
/// tick) to replay it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Exemplar {
    /// The observed sample value.
    pub value: u64,
    /// Session identity (session start time in tap microseconds).
    pub session: u64,
    /// Deterministic tick of the observation (tap-time microseconds).
    pub tick: u64,
}

/// Keep the top [`EXEMPLARS_PER_BUCKET`] exemplars by `(value desc,
/// session asc, tick asc)` — a total order, so the retained set is
/// independent of observation order.
fn merge_exemplar(slots: &mut Vec<Exemplar>, ex: Exemplar) {
    slots.push(ex);
    slots.sort_by_key(|e| (std::cmp::Reverse(e.value), e.session, e.tick));
    slots.dedup();
    slots.truncate(EXEMPLARS_PER_BUCKET);
}

/// Determinism class of a metric.
///
/// The JSON snapshot sink renders `Stable` metrics only, which is what
/// makes it byte-identical across runs and worker counts for the same
/// input. The Prometheus text sink renders both classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Derived purely from the input data: identical for identical
    /// input regardless of scheduling, worker count, or wall time.
    Stable,
    /// Scheduling- or wall-clock-dependent (queue depths, stall counts,
    /// wall-time latencies). Excluded from the JSON snapshot.
    Runtime,
}

impl MetricClass {
    /// Stable lowercase label (docs, report tables).
    pub fn label(&self) -> &'static str {
        match self {
            MetricClass::Stable => "stable",
            MetricClass::Runtime => "runtime",
        }
    }
}

/// One registered metric's description, as returned by
/// [`Registry::describe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDesc {
    /// The registered metric name.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Determinism class.
    pub class: MetricClass,
    /// The help text it was registered with.
    pub help: String,
}

/// Monotonic counter handle. Clones share the same underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Gauge handle: a signed value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramState {
    /// `counts.len() == bounds.len() + 1`; the last slot is the +Inf
    /// overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    /// Whether [`Histogram::observe_exemplar`] captures exemplars. Off
    /// by default so plain histograms pay nothing and expose nothing.
    exemplars_enabled: AtomicBool,
    /// Per-bucket exemplar slots (same indexing as `counts`), each
    /// holding at most [`EXEMPLARS_PER_BUCKET`] entries. Guarded by a
    /// mutex: exemplar capture is opt-in and off the per-entry fast
    /// path (counts stay lock-free).
    exemplars: Mutex<Vec<Vec<Exemplar>>>,
}

/// Fixed-boundary histogram handle.
///
/// Boundaries are inclusive upper bounds (`v <= bound` lands in that
/// bucket, Prometheus `le` semantics); values above the last boundary
/// land in the implicit +Inf bucket. All samples are `u64`, so the
/// exposition is integer-only and trivially byte-stable.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    state: Arc<HistogramState>,
}

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let state = HistogramState {
            counts: (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplars_enabled: AtomicBool::new(false),
            exemplars: Mutex::new((0..=sorted.len()).map(|_| Vec::new()).collect()),
        };
        Histogram {
            bounds: Arc::new(sorted),
            state: Arc::new(state),
        }
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        if let Some(slot) = self.state.counts.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.state.sum.fetch_add(v, Ordering::Relaxed);
        self.state.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bucket boundaries (sorted, deduplicated).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, non-cumulative; the final entry is the +Inf
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.state
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of all observed samples.
    pub fn sum(&self) -> u64 {
        self.state.sum.load(Ordering::Relaxed)
    }

    /// Number of observed samples.
    pub fn count(&self) -> u64 {
        self.state.count.load(Ordering::Relaxed)
    }

    /// Turn on exemplar capture for this histogram (and every clone —
    /// the flag lives in the shared state). Idempotent.
    pub fn enable_exemplars(&self) {
        self.state.exemplars_enabled.store(true, Ordering::Relaxed);
    }

    /// Whether exemplar capture is on.
    pub fn exemplars_enabled(&self) -> bool {
        self.state.exemplars_enabled.load(Ordering::Relaxed)
    }

    fn exemplar_lock(&self) -> std::sync::MutexGuard<'_, Vec<Vec<Exemplar>>> {
        self.state
            .exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Record one sample together with its session linkage. Counts as a
    /// plain [`Histogram::observe`]; when exemplar capture is enabled
    /// the bucket additionally retains the top
    /// [`EXEMPLARS_PER_BUCKET`] samples by `(value, session, tick)` —
    /// an order-independent rule, so the retained exemplars are
    /// byte-identical at any worker count.
    pub fn observe_exemplar(&self, v: u64, session: u64, tick: u64) {
        self.observe(v);
        if !self.exemplars_enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|b| v > *b);
        let mut slots = self.exemplar_lock();
        if let Some(bucket) = slots.get_mut(idx) {
            merge_exemplar(
                bucket,
                Exemplar {
                    value: v,
                    session,
                    tick,
                },
            );
        }
    }

    /// The retained exemplars, flattened as `(bucket index, exemplar)`
    /// in bucket order (the final index is the +Inf bucket). Empty when
    /// capture is disabled or nothing was observed.
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        if !self.exemplars_enabled() {
            return Vec::new();
        }
        self.exemplar_lock()
            .iter()
            .enumerate()
            .flat_map(|(i, bucket)| bucket.iter().map(move |&e| (i, e)))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(&[])
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Entry {
    help: String,
    class: MetricClass,
    metric: Metric,
}

/// Metrics registry.
///
/// Registration takes the registry lock; returned handles are
/// `Arc`-backed and lock-free, so the hot path never contends on the
/// registry. Registering the same name twice with the same kind returns
/// a handle to the same value; a kind mismatch returns a detached
/// (unregistered) handle rather than panicking.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register (or look up) a monotonic counter.
    pub fn counter(&self, name: &str, help: &str, class: MetricClass) -> Counter {
        let mut entries = self.lock();
        if let Some(existing) = entries.get(name) {
            if let Metric::Counter(c) = &existing.metric {
                return c.clone();
            }
            return Counter::default();
        }
        let handle = Counter::default();
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                class,
                metric: Metric::Counter(handle.clone()),
            },
        );
        handle
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str, class: MetricClass) -> Gauge {
        let mut entries = self.lock();
        if let Some(existing) = entries.get(name) {
            if let Metric::Gauge(g) = &existing.metric {
                return g.clone();
            }
            return Gauge::default();
        }
        let handle = Gauge::default();
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                class,
                metric: Metric::Gauge(handle.clone()),
            },
        );
        handle
    }

    /// Register (or look up) a fixed-boundary histogram.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        class: MetricClass,
        bounds: &[u64],
    ) -> Histogram {
        let mut entries = self.lock();
        if let Some(existing) = entries.get(name) {
            if let Metric::Histogram(h) = &existing.metric {
                if h.bounds() == bounds {
                    return h.clone();
                }
            }
            return Histogram::with_bounds(bounds);
        }
        let handle = Histogram::with_bounds(bounds);
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                class,
                metric: Metric::Histogram(handle.clone()),
            },
        );
        handle
    }

    /// Register (or look up) a fixed-boundary histogram with exemplar
    /// capture enabled: each bucket retains its top
    /// [`EXEMPLARS_PER_BUCKET`] samples with session linkage, rendered
    /// in the JSON snapshot and as OpenMetrics-style exemplar suffixes
    /// in the Prometheus exposition.
    pub fn histogram_with_exemplars(
        &self,
        name: &str,
        help: &str,
        class: MetricClass,
        bounds: &[u64],
    ) -> Histogram {
        let handle = self.histogram(name, help, class, bounds);
        handle.enable_exemplars();
        handle
    }

    /// Describe every registered metric — name, kind, class, help — in
    /// name (lexicographic) order. The reference the `vqoe metrics-doc`
    /// subcommand renders.
    pub fn describe(&self) -> Vec<MetricDesc> {
        let entries = self.lock();
        entries
            .iter()
            .map(|(name, entry)| MetricDesc {
                name: name.clone(),
                kind: match &entry.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                },
                class: entry.class,
                help: entry.help.clone(),
            })
            .collect()
    }

    /// Render every registered metric (both classes) as Prometheus text
    /// exposition: `# HELP` / `# TYPE` comments followed by samples,
    /// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.lock();
        let mut out = String::new();
        for (name, entry) in entries.iter() {
            out.push_str(&format!("# HELP {name} {}\n", entry.help));
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts = h.bucket_counts();
                    // OpenMetrics-style exemplar suffix per bucket line
                    // (` # {labels} value`), when capture is enabled.
                    let exemplar_suffix = |idx: usize| -> String {
                        let Some(&(_, e)) = h.exemplars().iter().find(|&&(i, _)| i == idx) else {
                            return String::new();
                        };
                        format!(
                            " # {{session=\"{}\",tick=\"{}\"}} {}",
                            e.session, e.tick, e.value
                        )
                    };
                    let mut cumulative = 0u64;
                    for (idx, (bound, count)) in h.bounds().iter().zip(counts.iter()).enumerate() {
                        cumulative = cumulative.saturating_add(*count);
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{bound}\"}} {cumulative}{}\n",
                            exemplar_suffix(idx)
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}{}\n",
                        h.count(),
                        exemplar_suffix(h.bounds().len())
                    ));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// Render the `Stable`-class metrics as a stable-ordered JSON
    /// snapshot: one object with `counters` / `gauges` / `histograms`
    /// sections, keys in BTreeMap (lexicographic) order, integer values
    /// only. Identical input data produces a byte-identical snapshot
    /// regardless of worker count, scheduling, or insertion order.
    pub fn snapshot_json(&self) -> String {
        let entries = self.lock();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, entry) in entries.iter() {
            if entry.class != MetricClass::Stable {
                continue;
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    counters.push(format!("    {}: {}", json_string(name), c.get()));
                }
                Metric::Gauge(g) => {
                    gauges.push(format!("    {}: {}", json_string(name), g.get()));
                }
                Metric::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .bounds()
                        .iter()
                        .zip(h.bucket_counts().iter())
                        .map(|(bound, count)| format!("[{bound}, {count}]"))
                        .collect();
                    let inf = h.bucket_counts().last().copied().unwrap_or(0);
                    // Exemplar-enabled histograms append their retained
                    // exemplars; plain histograms keep the original
                    // (exemplar-free) shape byte for byte.
                    let exemplars = if h.exemplars_enabled() {
                        let entries: Vec<String> = h
                            .exemplars()
                            .iter()
                            .map(|(i, e)| {
                                format!("[{}, {}, {}, {}]", i, e.value, e.session, e.tick)
                            })
                            .collect();
                        format!(", \"exemplars\": [{}]", entries.join(", "))
                    } else {
                        String::new()
                    };
                    histograms.push(format!(
                        "    {}: {{ \"buckets\": [{}], \"inf\": {}, \"sum\": {}, \"count\": {}{} }}",
                        json_string(name),
                        buckets.join(", "),
                        inf,
                        h.sum(),
                        h.count(),
                        exemplars
                    ));
                }
            }
        }
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {\n");
        out.push_str(&counters.join(",\n"));
        out.push_str("\n  },\n");
        out.push_str("  \"gauges\": {\n");
        out.push_str(&gauges.join(",\n"));
        out.push_str("\n  },\n");
        out.push_str("  \"histograms\": {\n");
        out.push_str(&histograms.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// Fold a [`Registry::snapshot_json`] produced by an earlier run
    /// back into this registry: counters and histograms add their saved
    /// totals on top of the current values, gauges are set to the saved
    /// value. This is the restore half of the pipeline's deterministic
    /// checkpointing — absorb the snapshot into a freshly registered
    /// registry, replay the input tail, and the final snapshot is
    /// byte-identical to an uninterrupted run.
    ///
    /// Snapshot entries whose name is not registered here are skipped
    /// (an older snapshot restored into a newer registry must not
    /// fail); a registered name of a *different* metric kind, or a
    /// histogram whose bucket boundaries changed, is an error. Returns
    /// the number of metrics absorbed.
    pub fn absorb_snapshot(&self, snapshot: &str) -> Result<usize, SnapshotError> {
        let parsed = parse_snapshot(snapshot)?;
        let entries = self.lock();
        let mut absorbed = 0usize;
        for (name, value) in &parsed.counters {
            let Some(entry) = entries.get(name) else {
                continue;
            };
            let Metric::Counter(c) = &entry.metric else {
                return Err(SnapshotError::KindMismatch(name.clone()));
            };
            let v = u64::try_from(*value)
                .map_err(|_| SnapshotError::Malformed("negative counter value"))?;
            c.add(v);
            absorbed += 1;
        }
        for (name, value) in &parsed.gauges {
            let Some(entry) = entries.get(name) else {
                continue;
            };
            let Metric::Gauge(g) = &entry.metric else {
                return Err(SnapshotError::KindMismatch(name.clone()));
            };
            g.set(*value);
            absorbed += 1;
        }
        for (name, parts) in &parsed.histograms {
            let Some(entry) = entries.get(name) else {
                continue;
            };
            let Metric::Histogram(h) = &entry.metric else {
                return Err(SnapshotError::KindMismatch(name.clone()));
            };
            h.absorb_parts(parts)
                .ok_or_else(|| SnapshotError::BoundsMismatch(name.clone()))?;
            absorbed += 1;
        }
        Ok(absorbed)
    }
}

/// Why [`Registry::absorb_snapshot`] rejected a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The text is not a well-formed snapshot (with a short reason).
    Malformed(&'static str),
    /// A snapshot metric is registered here as a different kind.
    KindMismatch(String),
    /// A snapshot histogram's bucket boundaries differ from the
    /// registered ones.
    BoundsMismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Malformed(why) => write!(f, "malformed metrics snapshot: {why}"),
            SnapshotError::KindMismatch(name) => {
                write!(
                    f,
                    "snapshot metric {name} is registered as a different kind"
                )
            }
            SnapshotError::BoundsMismatch(name) => {
                write!(f, "snapshot histogram {name} has different bucket bounds")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Saved histogram state, as rendered by [`Registry::snapshot_json`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct HistogramParts {
    /// `(upper bound, non-cumulative count)` per finite bucket.
    buckets: Vec<(u64, u64)>,
    /// The +Inf overflow bucket count.
    inf: u64,
    /// Sum of all observed samples.
    sum: u64,
    /// Number of observed samples.
    count: u64,
    /// Retained exemplars as `(bucket index, exemplar)`, present only
    /// when the saved histogram had exemplar capture enabled.
    exemplars: Option<Vec<(usize, Exemplar)>>,
}

impl Histogram {
    /// Add saved bucket/sum/count state on top of the current values.
    /// Returns `None` when the saved bounds differ from this
    /// histogram's bounds.
    fn absorb_parts(&self, parts: &HistogramParts) -> Option<()> {
        if parts.buckets.len() != self.bounds.len()
            || parts
                .buckets
                .iter()
                .zip(self.bounds.iter())
                .any(|(&(b, _), &have)| b != have)
        {
            return None;
        }
        for (slot, &(_, count)) in self.state.counts.iter().zip(parts.buckets.iter()) {
            slot.fetch_add(count, Ordering::Relaxed);
        }
        if let Some(last) = self.state.counts.last() {
            last.fetch_add(parts.inf, Ordering::Relaxed);
        }
        self.state.sum.fetch_add(parts.sum, Ordering::Relaxed);
        self.state.count.fetch_add(parts.count, Ordering::Relaxed);
        // A snapshot carrying exemplars re-enables capture on restore
        // (so restore → snapshot round-trips byte-identically) and
        // merges the saved exemplars under the usual top-K rule.
        if let Some(exemplars) = &parts.exemplars {
            self.enable_exemplars();
            let mut slots = self.exemplar_lock();
            for &(idx, ex) in exemplars {
                if let Some(bucket) = slots.get_mut(idx) {
                    merge_exemplar(bucket, ex);
                }
            }
        }
        Some(())
    }
}

#[derive(Debug, Default)]
struct ParsedSnapshot {
    counters: Vec<(String, i64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, HistogramParts)>,
}

/// Hand-rolled parser for the (rigid) [`Registry::snapshot_json`]
/// grammar: three fixed sections of `"name": value` pairs, where a
/// histogram value is an object with `buckets`/`inf`/`sum`/`count`
/// keys. The crate is std-only by design, so the snapshot format is
/// parsed by the same hand that prints it.
fn parse_snapshot(text: &str) -> Result<ParsedSnapshot, SnapshotError> {
    let mut p = Cursor::new(text);
    let mut out = ParsedSnapshot::default();
    p.eat('{')?;
    for (section, want) in [("counters", 0usize), ("gauges", 1), ("histograms", 2)] {
        let key = p.string()?;
        if key != section {
            return Err(SnapshotError::Malformed("unexpected section name"));
        }
        p.eat(':')?;
        p.eat('{')?;
        if p.peek() == Some('}') {
            p.eat('}')?;
        } else {
            loop {
                let name = p.string()?;
                p.eat(':')?;
                match want {
                    0 => out.counters.push((name, p.integer()?)),
                    1 => out.gauges.push((name, p.integer()?)),
                    _ => out.histograms.push((name, p.histogram()?)),
                }
                if p.peek() == Some(',') {
                    p.eat(',')?;
                } else {
                    break;
                }
            }
            p.eat('}')?;
        }
        if section != "histograms" {
            p.eat(',')?;
        }
    }
    p.eat('}')?;
    p.skip_ws();
    if !p.done() {
        return Err(SnapshotError::Malformed("trailing content"));
    }
    Ok(out)
}

/// Character cursor for [`parse_snapshot`]; skips whitespace before
/// every token.
struct Cursor<'a> {
    rest: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            rest: text.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while self.rest.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.rest.next();
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest.peek().copied()
    }

    fn done(&mut self) -> bool {
        self.rest.peek().is_none()
    }

    fn eat(&mut self, want: char) -> Result<(), SnapshotError> {
        if self.peek() == Some(want) {
            self.rest.next();
            Ok(())
        } else {
            Err(SnapshotError::Malformed("unexpected token"))
        }
    }

    /// A JSON string, undoing [`json_string`]'s escapes.
    fn string(&mut self) -> Result<String, SnapshotError> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.rest.next() {
                None => return Err(SnapshotError::Malformed("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.rest.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .rest
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or(SnapshotError::Malformed("bad unicode escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or(SnapshotError::Malformed("bad unicode escape"))?,
                        );
                    }
                    _ => return Err(SnapshotError::Malformed("unknown escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    /// A (possibly negative) integer.
    fn integer(&mut self) -> Result<i64, SnapshotError> {
        self.skip_ws();
        let negative = self.rest.peek() == Some(&'-');
        if negative {
            self.rest.next();
        }
        let mut digits = String::new();
        while self.rest.peek().is_some_and(|c| c.is_ascii_digit()) {
            if let Some(c) = self.rest.next() {
                digits.push(c);
            }
        }
        if digits.is_empty() {
            return Err(SnapshotError::Malformed("expected integer"));
        }
        let magnitude: i64 = digits
            .parse()
            .map_err(|_| SnapshotError::Malformed("integer out of range"))?;
        Ok(if negative { -magnitude } else { magnitude })
    }

    fn unsigned(&mut self) -> Result<u64, SnapshotError> {
        u64::try_from(self.integer()?).map_err(|_| SnapshotError::Malformed("expected unsigned"))
    }

    /// A histogram value object, keys in snapshot order.
    fn histogram(&mut self) -> Result<HistogramParts, SnapshotError> {
        let mut parts = HistogramParts::default();
        self.eat('{')?;
        for key in ["buckets", "inf", "sum", "count"] {
            if self.string()? != key {
                return Err(SnapshotError::Malformed("unexpected histogram key"));
            }
            self.eat(':')?;
            if key == "buckets" {
                self.eat('[')?;
                if self.peek() == Some(']') {
                    self.eat(']')?;
                } else {
                    loop {
                        self.eat('[')?;
                        let bound = self.unsigned()?;
                        self.eat(',')?;
                        let count = self.unsigned()?;
                        self.eat(']')?;
                        parts.buckets.push((bound, count));
                        if self.peek() == Some(',') {
                            self.eat(',')?;
                        } else {
                            break;
                        }
                    }
                    self.eat(']')?;
                }
            } else {
                let v = self.unsigned()?;
                match key {
                    "inf" => parts.inf = v,
                    "sum" => parts.sum = v,
                    _ => parts.count = v,
                }
            }
            if key != "count" {
                self.eat(',')?;
            }
        }
        // Optional trailing "exemplars" key (exemplar-enabled
        // histograms only).
        if self.peek() == Some(',') {
            self.eat(',')?;
            if self.string()? != "exemplars" {
                return Err(SnapshotError::Malformed("unexpected histogram key"));
            }
            self.eat(':')?;
            self.eat('[')?;
            let mut exemplars = Vec::new();
            if self.peek() == Some(']') {
                self.eat(']')?;
            } else {
                loop {
                    self.eat('[')?;
                    let idx = self.unsigned()?;
                    self.eat(',')?;
                    let value = self.unsigned()?;
                    self.eat(',')?;
                    let session = self.unsigned()?;
                    self.eat(',')?;
                    let tick = self.unsigned()?;
                    self.eat(']')?;
                    let idx = usize::try_from(idx)
                        .map_err(|_| SnapshotError::Malformed("exemplar bucket out of range"))?;
                    exemplars.push((
                        idx,
                        Exemplar {
                            value,
                            session,
                            tick,
                        },
                    ));
                    if self.peek() == Some(',') {
                        self.eat(',')?;
                    } else {
                        break;
                    }
                }
                self.eat(']')?;
            }
            parts.exemplars = Some(exemplars);
        }
        self.eat('}')?;
        Ok(parts)
    }
}

/// Minimal JSON string escaping (metric names are `[a-z0-9_]` by
/// convention, but stay safe anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("vqoe_test_events_total", "events", MetricClass::Stable);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second registration of the same name shares the value.
        let c2 = reg.counter("vqoe_test_events_total", "events", MetricClass::Stable);
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("vqoe_test_open", "open", MetricClass::Stable);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = Registry::new();
        let c = reg.counter("vqoe_test_x", "x", MetricClass::Stable);
        c.inc();
        // Asking for the same name as a gauge must not panic and must
        // not clobber the registered counter.
        let g = reg.gauge("vqoe_test_x", "x", MetricClass::Stable);
        g.set(99);
        assert_eq!(c.get(), 1);
        assert!(reg.render_prometheus().contains("vqoe_test_x 1"));
    }

    #[test]
    fn histogram_bucket_edges_under_over_and_exact_boundary() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        h.observe(0); // underflow -> first bucket
        h.observe(10); // exact boundary -> first bucket (le semantics)
        h.observe(11); // -> second bucket
        h.observe(100); // exact boundary -> second bucket
        h.observe(1000); // exact boundary -> third bucket
        h.observe(1001); // overflow -> +Inf bucket
        h.observe(9999); // overflow -> +Inf bucket
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 10 + 11 + 100 + 1000 + 1001 + 9999);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduplicated() {
        let h = Histogram::with_bounds(&[100, 10, 100, 1]);
        assert_eq!(h.bounds(), &[1, 10, 100]);
    }

    #[test]
    fn prometheus_render_has_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("vqoe_test_sizes", "sizes", MetricClass::Stable, &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE vqoe_test_sizes histogram"));
        assert!(text.contains("vqoe_test_sizes_bucket{le=\"10\"} 1"));
        assert!(text.contains("vqoe_test_sizes_bucket{le=\"100\"} 2"));
        assert!(text.contains("vqoe_test_sizes_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("vqoe_test_sizes_sum 555"));
        assert!(text.contains("vqoe_test_sizes_count 3"));
    }

    #[test]
    fn snapshot_is_identical_across_insertion_orders() {
        let make = |order: &[usize]| {
            let reg = Registry::new();
            type Registration = Box<dyn Fn(&Registry)>;
            let registrations: Vec<Registration> = vec![
                Box::new(|r: &Registry| {
                    r.counter("vqoe_b_total", "b", MetricClass::Stable).add(2);
                }),
                Box::new(|r: &Registry| {
                    r.gauge("vqoe_a_open", "a", MetricClass::Stable).set(3);
                }),
                Box::new(|r: &Registry| {
                    r.histogram("vqoe_c_sizes", "c", MetricClass::Stable, &[10])
                        .observe(4);
                }),
            ];
            for &i in order {
                if let Some(f) = registrations.get(i) {
                    f(&reg);
                }
            }
            reg.snapshot_json()
        };
        let a = make(&[0, 1, 2]);
        let b = make(&[2, 1, 0]);
        let c = make(&[1, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.contains("\"vqoe_b_total\": 2"));
    }

    #[test]
    fn snapshot_excludes_runtime_metrics() {
        let reg = Registry::new();
        reg.counter("vqoe_stable_total", "s", MetricClass::Stable)
            .inc();
        reg.counter("vqoe_runtime_total", "r", MetricClass::Runtime)
            .inc();
        let snap = reg.snapshot_json();
        assert!(snap.contains("vqoe_stable_total"));
        assert!(!snap.contains("vqoe_runtime_total"));
        // ... but the Prometheus exposition renders both.
        let text = reg.render_prometheus();
        assert!(text.contains("vqoe_stable_total 1"));
        assert!(text.contains("vqoe_runtime_total 1"));
    }

    #[test]
    fn empty_registry_renders_valid_shapes() {
        let reg = Registry::new();
        assert_eq!(reg.render_prometheus(), "");
        let snap = reg.snapshot_json();
        assert!(snap.contains("\"counters\""));
        assert!(snap.contains("\"histograms\""));
    }

    fn populated() -> Registry {
        let reg = Registry::new();
        reg.counter("vqoe_test_events_total", "e", MetricClass::Stable)
            .add(17);
        reg.gauge("vqoe_test_open", "o", MetricClass::Stable)
            .set(-4);
        let h = reg.histogram("vqoe_test_sizes", "s", MetricClass::Stable, &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        reg
    }

    #[test]
    fn absorb_snapshot_restores_counters_gauges_and_histograms() {
        let saved = populated().snapshot_json();
        let fresh = Registry::new();
        let c = fresh.counter("vqoe_test_events_total", "e", MetricClass::Stable);
        let g = fresh.gauge("vqoe_test_open", "o", MetricClass::Stable);
        let h = fresh.histogram("vqoe_test_sizes", "s", MetricClass::Stable, &[10, 100]);
        let absorbed = fresh.absorb_snapshot(&saved).expect("snapshot parses");
        assert_eq!(absorbed, 3);
        assert_eq!(c.get(), 17);
        assert_eq!(g.get(), -4);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert_eq!(h.sum(), 5_055);
        assert_eq!(h.count(), 3);
        // Round trip: the restored registry snapshots byte-identically.
        assert_eq!(fresh.snapshot_json(), saved);
    }

    #[test]
    fn absorb_adds_on_top_of_existing_values() {
        let saved = populated().snapshot_json();
        let reg = populated();
        reg.absorb_snapshot(&saved).expect("snapshot parses");
        assert_eq!(
            reg.counter("vqoe_test_events_total", "e", MetricClass::Stable)
                .get(),
            34
        );
        // Gauges are set, not summed: last write wins.
        assert_eq!(
            reg.gauge("vqoe_test_open", "o", MetricClass::Stable).get(),
            -4
        );
        let h = reg.histogram("vqoe_test_sizes", "s", MetricClass::Stable, &[10, 100]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10_110);
    }

    #[test]
    fn absorb_skips_unknown_names_but_rejects_kind_mismatch() {
        let saved = populated().snapshot_json();
        // No registered metrics at all: everything is skipped.
        let empty = Registry::new();
        assert_eq!(empty.absorb_snapshot(&saved), Ok(0));
        // Same name registered as the wrong kind: typed error.
        let wrong = Registry::new();
        wrong.gauge("vqoe_test_events_total", "e", MetricClass::Stable);
        assert_eq!(
            wrong.absorb_snapshot(&saved),
            Err(SnapshotError::KindMismatch(
                "vqoe_test_events_total".to_string()
            ))
        );
        // Same histogram with different bounds: typed error.
        let bounds = Registry::new();
        bounds.histogram("vqoe_test_sizes", "s", MetricClass::Stable, &[10, 999]);
        assert_eq!(
            bounds.absorb_snapshot(&saved),
            Err(SnapshotError::BoundsMismatch("vqoe_test_sizes".to_string()))
        );
    }

    #[test]
    fn absorb_rejects_malformed_snapshots() {
        let reg = Registry::new();
        for bad in [
            "",
            "{",
            "not json",
            "{\n  \"counters\": {\n    \"x\": notanumber\n  },\n",
            &populated().snapshot_json().replace("counters", "cnt"),
        ] {
            assert!(matches!(
                reg.absorb_snapshot(bad),
                Err(SnapshotError::Malformed(_))
            ));
        }
    }

    #[test]
    fn absorb_handles_empty_sections() {
        let empty_snapshot = Registry::new().snapshot_json();
        let reg = populated();
        assert_eq!(reg.absorb_snapshot(&empty_snapshot), Ok(0));
    }

    #[test]
    fn exemplars_keep_the_bucket_maximum_regardless_of_order() {
        let forward = Histogram::with_bounds(&[10, 100]);
        forward.enable_exemplars();
        let samples = [(5u64, 1u64, 10u64), (9, 2, 20), (7, 3, 30), (500, 4, 40)];
        for &(v, s, t) in &samples {
            forward.observe_exemplar(v, s, t);
        }
        let backward = Histogram::with_bounds(&[10, 100]);
        backward.enable_exemplars();
        for &(v, s, t) in samples.iter().rev() {
            backward.observe_exemplar(v, s, t);
        }
        assert_eq!(forward.exemplars(), backward.exemplars());
        // Bucket 0 (le=10) keeps the 9-byte sample; the +Inf bucket
        // (index 2) keeps the 500-byte one.
        assert_eq!(
            forward.exemplars(),
            vec![
                (
                    0,
                    Exemplar {
                        value: 9,
                        session: 2,
                        tick: 20
                    }
                ),
                (
                    2,
                    Exemplar {
                        value: 500,
                        session: 4,
                        tick: 40
                    }
                ),
            ]
        );
    }

    #[test]
    fn exemplar_value_ties_break_toward_smallest_session_then_tick() {
        let h = Histogram::with_bounds(&[10]);
        h.enable_exemplars();
        h.observe_exemplar(7, 9, 1);
        h.observe_exemplar(7, 3, 8);
        h.observe_exemplar(7, 3, 2);
        assert_eq!(
            h.exemplars(),
            vec![(
                0,
                Exemplar {
                    value: 7,
                    session: 3,
                    tick: 2
                }
            )]
        );
    }

    #[test]
    fn plain_histograms_capture_and_expose_nothing() {
        let reg = Registry::new();
        let h = reg.histogram("vqoe_test_sizes", "s", MetricClass::Stable, &[10]);
        h.observe_exemplar(5, 1, 1);
        assert!(h.exemplars().is_empty());
        assert!(!reg.snapshot_json().contains("exemplars"));
        assert!(!reg.render_prometheus().contains(" # {"));
    }

    #[test]
    fn exemplar_snapshot_round_trips_through_absorb() {
        let reg = Registry::new();
        let h = reg.histogram_with_exemplars("vqoe_test_sizes", "s", MetricClass::Stable, &[10]);
        h.observe_exemplar(5, 11, 100);
        h.observe_exemplar(5_000, 12, 200);
        let saved = reg.snapshot_json();
        assert!(saved.contains("\"exemplars\": [[0, 5, 11, 100], [1, 5000, 12, 200]]"));

        let fresh = Registry::new();
        // Registered *without* exemplars: absorb re-enables capture so
        // the round trip is byte-identical.
        let h2 = fresh.histogram("vqoe_test_sizes", "s", MetricClass::Stable, &[10]);
        fresh.absorb_snapshot(&saved).expect("snapshot parses");
        assert!(h2.exemplars_enabled());
        assert_eq!(fresh.snapshot_json(), saved);
    }

    #[test]
    fn exemplars_render_in_prometheus_exemplar_syntax() {
        let reg = Registry::new();
        let h = reg.histogram_with_exemplars("vqoe_test_sizes", "s", MetricClass::Stable, &[10]);
        h.observe_exemplar(7, 42, 1_000);
        let text = reg.render_prometheus();
        assert!(
            text.contains("vqoe_test_sizes_bucket{le=\"10\"} 1 # {session=\"42\",tick=\"1000\"} 7"),
            "missing exemplar suffix in:\n{text}"
        );
    }

    #[test]
    fn describe_lists_every_metric_in_name_order() {
        let reg = populated();
        reg.counter("vqoe_test_runtime_total", "r", MetricClass::Runtime);
        let descs = reg.describe();
        let names: Vec<&str> = descs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "vqoe_test_events_total",
                "vqoe_test_open",
                "vqoe_test_runtime_total",
                "vqoe_test_sizes"
            ]
        );
        assert_eq!(descs[0].kind, "counter");
        assert_eq!(descs[1].kind, "gauge");
        assert_eq!(descs[2].class, MetricClass::Runtime);
        assert_eq!(descs[3].kind, "histogram");
        assert_eq!(descs[0].help, "e");
    }
}
