//! Levelled stderr reporter for operator-facing status lines.
//!
//! Replaces ad-hoc `eprintln!` calls in the `vqoe` CLI: messages are
//! classified as normal (summary lines) or verbose (health detail,
//! anomaly dumps) and filtered by the configured [`ReportLevel`].

/// Verbosity level for a [`Reporter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReportLevel {
    /// Suppress everything.
    Quiet,
    /// Summary lines only (the default).
    Normal,
    /// Summaries plus health/anomaly detail.
    Verbose,
}

/// Levelled stderr reporter.
#[derive(Debug, Clone, Copy)]
pub struct Reporter {
    level: ReportLevel,
}

impl Reporter {
    /// Reporter at the given level.
    pub fn new(level: ReportLevel) -> Self {
        Reporter { level }
    }

    /// The configured level.
    pub fn level(&self) -> ReportLevel {
        self.level
    }

    /// Emit a summary line (shown at `Normal` and above).
    pub fn normal(&self, line: &str) {
        if self.level >= ReportLevel::Normal {
            eprintln!("{line}");
        }
    }

    /// Emit a detail line (shown at `Verbose` only).
    pub fn verbose(&self, line: &str) {
        if self.level >= ReportLevel::Verbose {
            eprintln!("{line}");
        }
    }
}

impl Default for Reporter {
    fn default() -> Self {
        Reporter::new(ReportLevel::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(ReportLevel::Quiet < ReportLevel::Normal);
        assert!(ReportLevel::Normal < ReportLevel::Verbose);
    }

    #[test]
    fn reporter_reports_its_level() {
        assert_eq!(Reporter::default().level(), ReportLevel::Normal);
        assert_eq!(
            Reporter::new(ReportLevel::Quiet).level(),
            ReportLevel::Quiet
        );
    }
}
