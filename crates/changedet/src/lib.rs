//! # vqoe-changedet
//!
//! Time-series change detection for representation-switch detection
//! (§4.3 of *Measuring Video QoE from Encrypted Traffic*, IMC 2016).
//!
//! The paper's third detector is not ML: for each session it computes
//! the series `Δsize × Δt` over consecutive chunks, runs the Cumulative
//! Sum Control Chart (CUSUM, Page 1954) over it, and scores the session
//! by the **standard deviation of the CUSUM output** — large shifts from
//! the running mean (a representation switch re-entering its start-up
//! phase) blow the CUSUM up, flat steady-state delivery keeps it near
//! zero. A single threshold on that score separates sessions with and
//! without quality switches (Figure 4; the paper's calibrated value is
//! 500 in its units).
//!
//! Modules: [`cusum`] implements the control chart; [`detector`] the
//! session-scoring pipeline (start-up filtering, Δsize × Δt series,
//! scoring, thresholding and threshold calibration); [`streaming`] the
//! bounded-memory one-pass variant of the session score used by the
//! `Fidelity::Sketched` assessment tier (ISSUE 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cusum;
pub mod detector;
pub mod streaming;

pub use cusum::{cusum_series, drift_alarm, CusumConfig};
pub use detector::{
    calibrate_threshold, delta_product_series, session_score, SwitchDetector, SwitchScoreConfig,
};
pub use streaming::{StreamingSwitchScore, SWITCH_PREFIX_CAP};
