//! The Cumulative Sum Control Chart (E. S. Page, *Continuous inspection
//! schemes*, Biometrika 1954) — the paper's cited change detector.
//!
//! Two one-sided charts accumulate positive and negative deviations from
//! a reference mean:
//!
//! ```text
//! S⁺_i = max(0, S⁺_{i−1} + (x_i − μ − κ))
//! S⁻_i = max(0, S⁻_{i−1} − (x_i − μ + κ))
//! ```
//!
//! where μ is the reference level and κ the *allowance* (slack), usually
//! half the shift magnitude one wants to detect. The classic decision
//! rule raises an alarm when either side exceeds a threshold *h*; the
//! paper instead keeps the whole output series and summarizes it by its
//! standard deviation ("instead of thresholds we use the standard
//! deviation of the output of the change detection algorithm"), which we
//! expose in [`crate::detector::session_score`].

use serde::{Deserialize, Serialize};

/// CUSUM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumConfig {
    /// Reference mean μ. `None` uses the series' own mean (the paper's
    /// setting: shifts *from the mean of the sample*).
    pub reference: Option<f64>,
    /// Allowance κ as a fraction of the series' standard deviation.
    /// Classic choice is 0.5 (detects ~1σ shifts fastest).
    pub allowance_sigmas: f64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        CusumConfig {
            reference: None,
            allowance_sigmas: 0.5,
        }
    }
}

/// Run the two-sided CUSUM over `series`, returning the combined output
/// `S⁺_i + S⁻_i` per point (non-negative; zero while the process sits at
/// its reference level).
///
/// Empty input yields an empty output. Non-finite samples are treated as
/// the reference level (they contribute no deviation).
pub fn cusum_series(series: &[f64], config: CusumConfig) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
    let mu = config
        .reference
        .unwrap_or_else(|| vqoe_stats::moments::mean(&finite));
    let sigma = vqoe_stats::moments::population_std(&finite);
    let kappa = config.allowance_sigmas * sigma;

    let mut s_pos = 0.0f64;
    let mut s_neg = 0.0f64;
    let mut out = Vec::with_capacity(series.len());
    for &x in series {
        let dev = if x.is_finite() { x - mu } else { 0.0 };
        s_pos = (s_pos + dev - kappa).max(0.0);
        s_neg = (s_neg - dev - kappa).max(0.0);
        out.push(s_pos + s_neg);
    }
    out
}

/// Indices where the classic alarm rule `S_i > h` fires, with `h`
/// expressed in σ units of the input series. Provided for completeness
/// (the paper's pipeline does not alarm per point) and used by the
/// ablation benches.
///
/// A series with no finite samples, or whose finite samples have zero
/// (or non-finite) standard deviation, is *degenerate*: `h = h_sigmas ·
/// σ` collapses to 0, and any positive CUSUM output — e.g. a constant
/// series measured against an explicit off-level `reference` — would
/// alarm at every index. No threshold can be calibrated from such a
/// series, so it raises no alarms.
pub fn alarms(series: &[f64], config: CusumConfig, h_sigmas: f64) -> Vec<usize> {
    let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Vec::new();
    }
    let sigma = vqoe_stats::moments::population_std(&finite);
    if !sigma.is_finite() || sigma <= 0.0 {
        return Vec::new();
    }
    let h = h_sigmas * sigma;
    cusum_series(series, config)
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s > h)
        .map(|(i, _)| i)
        .collect()
}

/// First index at which the classic CUSUM alarm rule fires over
/// `series` under the default [`CusumConfig`], with the threshold in σ
/// units — or `None` when the chart never crosses it (including the
/// degenerate zero-variance cases [`alarms`] refuses to alarm on).
///
/// This is the drift backend the observability layer's alert engine
/// injects (a plain `fn` pointer, keeping `vqoe-obs` dependency-free):
/// shed-rate / anomaly-rate / queue-depth series go in, the first
/// drifting window index comes out.
pub fn drift_alarm(series: &[f64], h_sigmas: f64) -> Option<usize> {
    alarms(series, CusumConfig::default(), h_sigmas)
        .first()
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_series_is_empty() {
        assert!(cusum_series(&[], CusumConfig::default()).is_empty());
    }

    #[test]
    fn flat_series_stays_at_zero() {
        let out = cusum_series(&[5.0; 50], CusumConfig::default());
        assert!(out.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn small_noise_is_absorbed_by_the_allowance() {
        // ±ε noise around a constant: with κ = 0.5σ the chart resets
        // continually and never accumulates far.
        let series: Vec<f64> = (0..100)
            .map(|i| 10.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let out = cusum_series(&series, CusumConfig::default());
        let max = out.iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 1.0, "max {max}");
    }

    #[test]
    fn level_shift_accumulates_linearly() {
        // 50 points at 0, then 50 at 10. With the sample mean (5) as the
        // reference and κ = 0.5σ = 2.5, *both* halves deviate: the chart
        // grows by 2.5 per step throughout, reaching 125 on each side.
        let series: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
        let out = cusum_series(&series, CusumConfig::default());
        assert!(out[0] < 5.0, "first point {}", out[0]);
        assert!((out[49] - 125.0).abs() < 1e-9, "pre-shift peak {}", out[49]);
        assert!((out[99] - 125.0).abs() < 1e-9, "final value {}", out[99]);
        // A flat series of the same length stays at zero — the shift is
        // what produced the accumulation.
        let flat = cusum_series(&[5.0; 100], CusumConfig::default());
        assert!(flat.iter().all(|&s| s.abs() < 1e-9));
    }

    #[test]
    fn downward_shift_is_caught_by_the_negative_chart() {
        let series: Vec<f64> = (0..100).map(|i| if i < 50 { 10.0 } else { 0.0 }).collect();
        let out = cusum_series(&series, CusumConfig::default());
        assert!(out[99] > 50.0);
    }

    #[test]
    fn explicit_reference_overrides_sample_mean() {
        // With reference 0, a constant-5 series is all deviation.
        let out = cusum_series(
            &[5.0; 20],
            CusumConfig {
                reference: Some(0.0),
                allowance_sigmas: 0.5,
            },
        );
        // σ of a constant series is 0 ⇒ κ = 0 ⇒ S grows by 5 per step.
        assert!((out[19] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn nan_points_contribute_nothing() {
        let mut series = vec![1.0; 20];
        series[10] = f64::NAN;
        let out = cusum_series(&series, CusumConfig::default());
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn degenerate_series_raises_no_alarms() {
        // All-non-finite: σ over the (empty) finite subset is 0, so the
        // threshold h = 2σ = 0 — the old code compared every output
        // point against 0.
        let cfg = CusumConfig::default();
        assert!(alarms(&[f64::NAN; 10], cfg, 2.0).is_empty());
        assert!(alarms(&[], cfg, 2.0).is_empty());
        // Constant series vs an explicit off-level reference: the CUSUM
        // output is strictly positive everywhere while h = 0, which used
        // to alarm at EVERY index. No threshold is calibratable from a
        // zero-variance series, so there must be no alarms.
        let anchored = CusumConfig {
            reference: Some(0.0),
            allowance_sigmas: 0.5,
        };
        assert!(alarms(&[5.0; 20], anchored, 2.0).is_empty());
    }

    #[test]
    fn drift_alarm_returns_the_first_alarm_index() {
        // A sustained level shift against the sample mean drifts; a
        // flat series never does.
        let series: Vec<f64> = (0..60).map(|i| if i < 30 { 0.0 } else { 8.0 }).collect();
        let first = drift_alarm(&series, 2.0).expect("shifted series drifts");
        assert_eq!(
            Some(first),
            alarms(&series, CusumConfig::default(), 2.0)
                .first()
                .copied()
        );
        assert_eq!(drift_alarm(&[1.0; 40], 2.0), None);
        assert_eq!(drift_alarm(&[], 2.0), None);
    }

    #[test]
    fn alarms_fire_only_after_the_change() {
        // Anchor the reference at the known pre-change level: the classic
        // in-control → out-of-control monitoring setup.
        let series: Vec<f64> = (0..60).map(|i| if i < 30 { 0.0 } else { 8.0 }).collect();
        let cfg = CusumConfig {
            reference: Some(0.0),
            allowance_sigmas: 0.5,
        };
        let idx = alarms(&series, cfg, 2.0);
        assert!(!idx.is_empty());
        assert!(idx.iter().all(|&i| i >= 30), "false alarm before change");
    }

    proptest! {
        #[test]
        fn prop_output_is_nonnegative_and_finite(
            series in proptest::collection::vec(-1e6f64..1e6, 0..300)
        ) {
            let out = cusum_series(&series, CusumConfig::default());
            prop_assert_eq!(out.len(), series.len());
            for s in out {
                prop_assert!(s >= 0.0);
                prop_assert!(s.is_finite());
            }
        }

        #[test]
        fn prop_constant_series_silent(v in -1e6f64..1e6, n in 1usize..100) {
            let out = cusum_series(&vec![v; n], CusumConfig::default());
            // Tolerance scales with |v|: the sample mean can be off by an
            // ulp, and that rounding residue accumulates over n steps.
            let tol = 1e-9 * (1.0 + v.abs()) * n as f64;
            prop_assert!(out.iter().all(|&s| s.abs() < tol));
        }
    }
}
