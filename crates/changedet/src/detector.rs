//! The §4.3 representation-switch detection pipeline.
//!
//! Per session:
//!
//! 1. **Start-up filtering** — "we remove the first ten seconds of all
//!    video sessions" so the initial buffer-fill ramp (small segments,
//!    tight inter-arrivals) is not mistaken for a mid-stream switch.
//! 2. **Series construction** — "the metric which better captures the
//!    changes in both the size and the inter-arrival of the video
//!    segments is the product Δsize × Δt": for each consecutive chunk
//!    pair, the size difference times the inter-arrival time.
//! 3. **CUSUM** over that series, then the session score
//!    `σ(CUSUM(Δsize × Δt))` (eq. 3).
//! 4. **Thresholding** — one score threshold, calibrated once on the
//!    cleartext set (the paper's "500") and then frozen for the
//!    encrypted evaluation (§5.6).
//!
//! The module is deliberately independent of the player/telemetry types:
//! a session is just its chunk points `(arrival_time_secs, size_bytes)`,
//! so the same code scores simulated cleartext sessions, reassembled
//! encrypted sessions, or anything a downstream user brings.

use crate::cusum::{cusum_series, CusumConfig};
use serde::{Deserialize, Serialize};

/// Pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchScoreConfig {
    /// Seconds of session head to discard (start-up phase).
    pub startup_filter_secs: f64,
    /// CUSUM parameters.
    pub cusum: CusumConfig,
    /// Normalize Δsize to kilobytes before the product, keeping score
    /// magnitudes in a human-scale range (the absolute scale is
    /// irrelevant — the threshold is calibrated on the same units).
    pub size_unit_bytes: f64,
}

impl Default for SwitchScoreConfig {
    fn default() -> Self {
        SwitchScoreConfig {
            startup_filter_secs: 10.0,
            cusum: CusumConfig::default(),
            size_unit_bytes: 1024.0,
        }
    }
}

/// Build the `Δsize × Δt` series from chunk points
/// `(arrival_time_secs, size_bytes)`, already start-up-filtered.
///
/// `Δt` is the chunk inter-arrival time in seconds, `Δsize` the absolute
/// size difference in `size_unit_bytes` units. Fewer than two points
/// yield an empty series.
pub fn delta_product_series(points: &[(f64, f64)], config: &SwitchScoreConfig) -> Vec<f64> {
    points
        .windows(2)
        .map(|w| {
            let dt = (w[1].0 - w[0].0).max(0.0);
            let dsize = (w[1].1 - w[0].1).abs() / config.size_unit_bytes;
            dsize * dt
        })
        .collect()
}

/// Apply the start-up filter: drop points within
/// `startup_filter_secs` of the first point.
pub fn startup_filter(points: &[(f64, f64)], config: &SwitchScoreConfig) -> Vec<(f64, f64)> {
    let Some(&(t0, _)) = points.first() else {
        return Vec::new();
    };
    points
        .iter()
        .copied()
        .filter(|&(t, _)| t >= t0 + config.startup_filter_secs)
        .collect()
}

/// The session score `σ(CUSUM(Δsize × Δt))` of eq. 3. Sessions too short
/// to score (fewer than 3 surviving chunks) score 0 — indistinguishable
/// from "no variation", which is the conservative call.
pub fn session_score(points: &[(f64, f64)], config: &SwitchScoreConfig) -> f64 {
    let filtered = startup_filter(points, config);
    if filtered.len() < 3 {
        return 0.0;
    }
    let series = delta_product_series(&filtered, config);
    let out = cusum_series(&series, config.cusum);
    vqoe_stats::moments::population_std(&out)
}

/// A calibrated switch detector: score above threshold ⇒ the session
/// had representation-quality variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchDetector {
    /// The frozen score threshold (the paper's "500").
    pub threshold: f64,
    /// Scoring parameters (must match calibration).
    pub config: SwitchScoreConfig,
}

impl SwitchDetector {
    /// Score one session and compare against the threshold.
    pub fn detect(&self, points: &[(f64, f64)]) -> bool {
        session_score(points, &self.config) > self.threshold
    }
}

/// Calibrate the threshold on labelled score populations (sessions
/// without switches vs with switches), maximizing balanced accuracy —
/// the Figure 4 procedure. Returns the detector plus the two per-class
/// accuracies at the chosen threshold.
pub fn calibrate_threshold(
    scores_without: &[f64],
    scores_with: &[f64],
    config: SwitchScoreConfig,
) -> (SwitchDetector, f64, f64) {
    let (threshold, acc_without, acc_with) =
        vqoe_stats::ecdf::best_separating_threshold(scores_without, scores_with);
    (SwitchDetector { threshold, config }, acc_without, acc_with)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic steady session: constant chunk size & cadence (+jitter).
    fn steady_session(n: usize, size: f64, dt: f64, jitter: f64) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let j = if i % 2 == 0 { jitter } else { -jitter };
                (i as f64 * dt, size + j)
            })
            .collect()
    }

    /// Session with an abrupt representation switch at chunk `at`:
    /// sizes jump and cadence stretches (higher bitrate = slower refill).
    fn switching_session(n: usize, at: usize) -> Vec<(f64, f64)> {
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                let (size, dt) = if i < at {
                    (100_000.0, 2.0)
                } else {
                    (450_000.0, 5.0)
                };
                let point = (t, size);
                t += dt;
                point
            })
            .collect()
    }

    #[test]
    fn steady_sessions_score_near_zero() {
        let s = steady_session(40, 200_000.0, 3.0, 2_000.0);
        let score = session_score(&s, &SwitchScoreConfig::default());
        assert!(score < 50.0, "steady score {score}");
    }

    #[test]
    fn switching_sessions_score_high() {
        let s = switching_session(40, 20);
        let score = session_score(&s, &SwitchScoreConfig::default());
        let steady = session_score(
            &steady_session(40, 100_000.0, 2.0, 2_000.0),
            &SwitchScoreConfig::default(),
        );
        assert!(score > steady * 10.0, "switch {score} vs steady {steady}");
    }

    #[test]
    fn startup_filter_drops_the_head() {
        let points: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 1000.0)).collect();
        let cfg = SwitchScoreConfig::default();
        let kept = startup_filter(&points, &cfg);
        assert_eq!(kept.len(), 10);
        assert_eq!(kept[0].0, 10.0);
    }

    #[test]
    fn startup_ramp_alone_does_not_trigger() {
        // Fast ramp in the first 10 s (start-up), then steady: the filter
        // must suppress the ramp's contribution.
        let mut points = Vec::new();
        let mut t = 0.0;
        for i in 0..8 {
            points.push((t, 30_000.0 + i as f64 * 40_000.0));
            t += 1.0;
        }
        for _ in 0..30 {
            points.push((t, 350_000.0));
            t += 4.0;
        }
        let cfg = SwitchScoreConfig::default();
        let score = session_score(&points, &cfg);
        assert!(score < 50.0, "startup leaked into score: {score}");
    }

    #[test]
    fn short_sessions_score_zero() {
        let cfg = SwitchScoreConfig::default();
        assert_eq!(session_score(&[], &cfg), 0.0);
        assert_eq!(session_score(&[(0.0, 1.0)], &cfg), 0.0);
        assert_eq!(session_score(&[(0.0, 1.0), (20.0, 2.0)], &cfg), 0.0);
    }

    #[test]
    fn delta_products_combine_both_signals() {
        let cfg = SwitchScoreConfig {
            size_unit_bytes: 1.0,
            ..SwitchScoreConfig::default()
        };
        let points = [(0.0, 10.0), (2.0, 10.0), (5.0, 40.0)];
        let series = delta_product_series(&points, &cfg);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], 0.0); // no size change
        assert_eq!(series[1], 3.0 * 30.0);
    }

    #[test]
    fn calibration_separates_synthetic_populations() {
        let cfg = SwitchScoreConfig::default();
        let without: Vec<f64> = (0..50)
            .map(|i| {
                session_score(
                    &steady_session(40, 150_000.0 + i as f64 * 1_000.0, 3.0, 3_000.0),
                    &cfg,
                )
            })
            .collect();
        let with: Vec<f64> = (0..50)
            .map(|i| session_score(&switching_session(40, 15 + i % 10), &cfg))
            .collect();
        let (detector, acc_wo, acc_w) = calibrate_threshold(&without, &with, cfg);
        assert!(acc_wo > 0.9, "acc without switches {acc_wo}");
        assert!(acc_w > 0.9, "acc with switches {acc_w}");
        // The detector generalizes to fresh sessions of each kind.
        assert!(!detector.detect(&steady_session(40, 222_000.0, 3.0, 3_000.0)));
        assert!(detector.detect(&switching_session(40, 22)));
    }

    #[test]
    fn detector_threshold_boundary_is_exclusive() {
        let cfg = SwitchScoreConfig::default();
        let d = SwitchDetector {
            threshold: f64::INFINITY,
            config: cfg,
        };
        assert!(!d.detect(&switching_session(40, 20)));
    }
}
