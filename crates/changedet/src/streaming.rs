//! A streaming, bounded-memory variant of the §4.3 session score.
//!
//! The batch pipeline ([`crate::detector::session_score`]) needs the
//! whole `Δsize × Δt` series before it can score: the CUSUM reference
//! level μ and allowance κ are statistics *of the complete series*. That
//! is exactly what the streaming assessment path (ISSUE 10) cannot
//! afford — a per-subscriber machine must hold O(1) state no matter how
//! long the session runs.
//!
//! [`StreamingSwitchScore`] trades a bounded prefix buffer for that
//! global view:
//!
//! * While the session is short (≤ [`SWITCH_PREFIX_CAP`] delta-product
//!   values), the values are buffered verbatim and [`score`] computes
//!   the **exact** batch score — identical f64-for-f64 to
//!   [`crate::detector::session_score`] on the same points.
//! * The first value past the cap **freezes** μ and κ from the buffered
//!   prefix, replays the prefix through the two-sided CUSUM recurrence,
//!   and from then on folds each new value in O(1): the recurrence
//!   state `(S⁺, S⁻)` plus an [`OnlineMoments`] over the outputs. The
//!   score is the running population standard deviation of the outputs
//!   — an approximation whose reference level is estimated from the
//!   first `SWITCH_PREFIX_CAP` post-startup chunk pairs instead of the
//!   full session.
//!
//! Sessions long enough to spill are surfaced downstream as
//! `Fidelity::Sketched`, the declared lower-fidelity tier; the frozen-μ
//! approximation is part of that tier's pinned-tolerance contract (see
//! DESIGN.md §15). Everything here is deterministic: no RNG, no clocks,
//! byte-stable state for checkpointing.
//!
//! [`score`]: StreamingSwitchScore::score
//! [`OnlineMoments`]: vqoe_stats::OnlineMoments

use crate::cusum::cusum_series;
use crate::detector::SwitchScoreConfig;
use serde::{Deserialize, Serialize};
use vqoe_stats::OnlineMoments;

/// Delta-product values buffered exactly before the reference level is
/// frozen. 256 pairs ≈ the first 8–20 minutes of a typical session —
/// comfortably past the start-up transient the reference is supposed to
/// describe — while bounding the buffer at 2 KiB per spilled session.
pub const SWITCH_PREFIX_CAP: usize = 256;

/// Streaming state of one session's switch score (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingSwitchScore {
    config: SwitchScoreConfig,
    /// Arrival time of the session's very first point (pre-filter
    /// anchor for the start-up window).
    t0: Option<f64>,
    /// Last point that survived the start-up filter.
    prev_t: Option<f64>,
    prev_size: f64,
    /// Points that survived the start-up filter so far.
    survivors: u64,
    /// Exact delta-product prefix (drained at freeze time).
    prefix: Vec<f64>,
    /// Frozen reference level and allowance; meaningless until `frozen`.
    frozen: bool,
    mu: f64,
    kappa: f64,
    /// CUSUM recurrence state (post-freeze).
    s_pos: f64,
    s_neg: f64,
    /// Moments of the CUSUM outputs (post-freeze).
    outputs: OnlineMoments,
}

impl Default for StreamingSwitchScore {
    fn default() -> Self {
        StreamingSwitchScore::new(SwitchScoreConfig::default())
    }
}

impl StreamingSwitchScore {
    /// Fresh state scoring under `config`.
    pub fn new(config: SwitchScoreConfig) -> Self {
        StreamingSwitchScore {
            config,
            t0: None,
            prev_t: None,
            prev_size: 0.0,
            survivors: 0,
            prefix: Vec::new(),
            frozen: false,
            mu: 0.0,
            kappa: 0.0,
            s_pos: 0.0,
            s_neg: 0.0,
            outputs: OnlineMoments::new(),
        }
    }

    /// Fold in one chunk point `(arrival_secs, size_bytes)` — the same
    /// shape [`crate::detector::session_score`] consumes, one point at
    /// a time.
    pub fn fold(&mut self, arrival_secs: f64, size_bytes: f64) {
        let t0 = *self.t0.get_or_insert(arrival_secs);
        if arrival_secs < t0 + self.config.startup_filter_secs {
            return;
        }
        if let Some(prev_t) = self.prev_t {
            let dt = (arrival_secs - prev_t).max(0.0);
            let dsize = (size_bytes - self.prev_size).abs() / self.config.size_unit_bytes;
            self.push_value(dsize * dt);
        }
        self.prev_t = Some(arrival_secs);
        self.prev_size = size_bytes;
        self.survivors += 1;
    }

    /// Chunk points that survived the start-up filter.
    pub fn survivors(&self) -> u64 {
        self.survivors
    }

    /// True once the reference level has been frozen (the session is
    /// past the exact prefix and the score is approximate).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    fn push_value(&mut self, v: f64) {
        if self.frozen {
            self.step(v);
            return;
        }
        self.prefix.push(v);
        if self.prefix.len() > SWITCH_PREFIX_CAP {
            self.freeze();
        }
    }

    /// Freeze μ and κ from the buffered prefix and replay it through the
    /// recurrence, releasing the buffer.
    fn freeze(&mut self) {
        let finite: Vec<f64> = self
            .prefix
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        self.mu = self
            .config
            .cusum
            .reference
            .unwrap_or_else(|| vqoe_stats::moments::mean(&finite));
        self.kappa =
            self.config.cusum.allowance_sigmas * vqoe_stats::moments::population_std(&finite);
        self.frozen = true;
        for v in std::mem::take(&mut self.prefix) {
            self.step(v);
        }
    }

    /// One two-sided CUSUM step, identical to the recurrence inside
    /// [`cusum_series`].
    fn step(&mut self, x: f64) {
        let dev = if x.is_finite() { x - self.mu } else { 0.0 };
        self.s_pos = (self.s_pos + dev - self.kappa).max(0.0);
        self.s_neg = (self.s_neg - dev - self.kappa).max(0.0);
        self.outputs.push(self.s_pos + self.s_neg);
    }

    /// The session score so far: `σ(CUSUM(Δsize × Δt))`.
    ///
    /// Below three surviving chunks the score is `0.0` (too short to
    /// score — same convention as the batch path). While unfrozen the
    /// result equals [`crate::detector::session_score`] exactly; after
    /// freezing it is the pinned-tolerance approximation.
    pub fn score(&self) -> f64 {
        if self.survivors < 3 {
            return 0.0;
        }
        if !self.frozen {
            let out = cusum_series(&self.prefix, self.config.cusum);
            return vqoe_stats::moments::population_std(&out);
        }
        self.outputs.std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::session_score;

    fn fold_all(points: &[(f64, f64)]) -> StreamingSwitchScore {
        let mut s = StreamingSwitchScore::default();
        for &(t, size) in points {
            s.fold(t, size);
        }
        s
    }

    fn synthetic(n: usize, switch_at: usize) -> Vec<(f64, f64)> {
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                let (size, dt) = if i < switch_at {
                    (100_000.0 + (i % 3) as f64 * 1_500.0, 2.0)
                } else {
                    (450_000.0 + (i % 5) as f64 * 3_000.0, 5.0)
                };
                let p = (t, size);
                t += dt;
                p
            })
            .collect()
    }

    #[test]
    fn short_sessions_score_zero_like_batch() {
        let points = [(0.0, 1_000.0), (20.0, 2_000.0)];
        let s = fold_all(&points);
        assert_eq!(s.score(), 0.0);
        assert_eq!(
            s.score(),
            session_score(&points, &SwitchScoreConfig::default())
        );
    }

    #[test]
    fn under_cap_score_is_exactly_the_batch_score() {
        // Well under SWITCH_PREFIX_CAP pairs: the streaming score must be
        // f64-identical to the batch pipeline, start-up filter included.
        for &(n, at) in &[(30usize, 15usize), (80, 10), (120, 60)] {
            let points = synthetic(n, at);
            let s = fold_all(&points);
            assert!(!s.is_frozen());
            let exact = session_score(&points, &SwitchScoreConfig::default());
            assert_eq!(s.score(), exact, "n={n} switch_at={at}");
        }
    }

    #[test]
    fn over_cap_score_preserves_detection_not_magnitude() {
        // Long sessions, frozen-μ approximation. On a *steady* session
        // the frozen reference is an excellent estimate of the full-
        // series one, so the score stays within a pinned 25% band of
        // exact. On a *switching* session the frozen (pre-switch)
        // reference makes the chart strictly more sensitive than the
        // batch pipeline — whose μ absorbs the post-switch regime — so
        // the contract is detection agreement, not magnitude: the
        // streaming score must sit on the same side of any threshold
        // separating the two populations, with at least the batch
        // path's separation.
        let n = SWITCH_PREFIX_CAP + 400;
        let switching = synthetic(n, n / 2);
        let steady = synthetic(n, n + 1);
        let s_switch = fold_all(&switching);
        let s_steady = fold_all(&steady);
        assert!(s_switch.is_frozen() && s_steady.is_frozen());

        let exact_steady = session_score(&steady, &SwitchScoreConfig::default());
        assert!(
            (s_steady.score() - exact_steady).abs() <= 0.25 * exact_steady.abs().max(1.0),
            "steady: approx {} vs exact {exact_steady}",
            s_steady.score()
        );

        let exact_switch = session_score(&switching, &SwitchScoreConfig::default());
        assert!(
            s_switch.score() >= exact_switch,
            "frozen reference must not dull the switch signal: approx {} vs exact {exact_switch}",
            s_switch.score()
        );
        assert!(s_switch.score() > 10.0 * s_steady.score().max(1e-9));
    }

    #[test]
    fn startup_filter_matches_batch_semantics() {
        // Points inside the first 10 s are dropped by both paths.
        let mut points = vec![(0.0, 1.0), (2.0, 9_999_999.0), (5.0, 1.0)];
        points
            .extend((0..40).map(|i| (12.0 + i as f64 * 2.0, 50_000.0 + (i % 2) as f64 * 40_000.0)));
        let s = fold_all(&points);
        assert_eq!(
            s.score(),
            session_score(&points, &SwitchScoreConfig::default())
        );
    }

    #[test]
    fn deterministic_and_serde_round_trips() {
        let points = synthetic(SWITCH_PREFIX_CAP + 100, 80);
        let a = fold_all(&points);
        let b = fold_all(&points);
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: StreamingSwitchScore = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.score(), a.score());
    }

    #[test]
    fn memory_stays_bounded_past_the_cap() {
        let mut s = StreamingSwitchScore::default();
        for i in 0..50_000u64 {
            s.fold(i as f64 * 2.0, 100_000.0 + (i % 7) as f64 * 10_000.0);
        }
        assert!(s.is_frozen());
        assert!(s.prefix.is_empty(), "prefix must drain at freeze");
        assert!(s.score().is_finite());
    }
}
