//! The one real wall clock in the workspace.
//!
//! Every deterministic crate drives [`vqoe_obs::StageSpan`] with
//! [`vqoe_obs::SimClock`] (tick counters). Benchmarks are the place
//! where real elapsed time is the measurement, so this crate — and
//! only this crate plus the `vqoe` CLI — is allowed to implement
//! [`Clock`] on top of the OS monotonic clock. `vqoe-analyze`'s
//! `raw-wall-clock` pass enforces the boundary.

use vqoe_obs::Clock;

/// Microseconds elapsed since construction, read from the OS
/// monotonic clock. `is_deterministic()` is `false`, so histograms it
/// feeds must be registered as [`vqoe_obs::MetricClass::Runtime`].
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// Start the clock at zero, now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqoe_obs::{buckets, MetricClass, Registry, StageSpan};

    #[test]
    fn wall_clock_is_monotonic_and_nondeterministic() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(!clock.is_deterministic());
    }

    #[test]
    fn wall_clock_drives_a_stage_span() {
        let clock = WallClock::new();
        let registry = Registry::new();
        let hist = registry.histogram(
            "bench_span_micros",
            "test span",
            MetricClass::Runtime,
            buckets::STAGE_MICROS,
        );
        let span = StageSpan::start(&clock, &hist);
        let delta = span.finish();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), delta);
    }
}
