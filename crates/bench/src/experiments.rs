//! One experiment per table and figure of the paper's evaluation, plus
//! the DESIGN.md ablations. Every experiment renders a self-contained
//! text report ending in paper-vs-measured comparison lines; the
//! `repro` binary prints them and `EXPERIMENTS.md` records a reference
//! run.

use crate::context::ReproContext;
use crate::render::{
    compare_line, render_cdf, render_cdf_pair, render_class_report, render_confusion, Table,
};
use vqoe_core::spec::DatasetSpec;
use vqoe_features::labels::has_switches;
use vqoe_features::{stall_label, SessionObs, StallClass};
use vqoe_ml::{cross_validate, Dataset, ForestConfig};
use vqoe_player::{AbrKind, ContentType, SessionTrace};
use vqoe_stats::Ecdf;

/// All experiment identifiers, in paper order.
pub const EXPERIMENTS: [&str; 31] = [
    "tab1",
    "fig1",
    "fig2",
    "fig3",
    "tab2",
    "tab3",
    "tab4",
    "tab5",
    "tab6",
    "tab7",
    "fig4",
    "fig5",
    "tab8",
    "tab9",
    "tab10",
    "tab11",
    "sec56",
    "ablation-features",
    "ablation-cusum",
    "ablation-reassembly",
    "baseline-binary",
    "generalization",
    "obfuscation",
    "chaos-sweep",
    "overload-sweep",
    "engine-scaling",
    "obs-overhead",
    "train-scaling",
    "ingest-bench",
    "trace-overhead",
    "subscriber-scaling",
];

/// Run one experiment by id. Unknown ids return an error string listing
/// the known ones.
pub fn run_experiment(id: &str, ctx: &ReproContext) -> String {
    match id {
        "tab1" => tab1(),
        "fig1" => fig1(ctx),
        "fig2" => fig2(ctx),
        "fig3" => fig3(ctx),
        "tab2" => tab2(ctx),
        "tab3" => tab3(ctx),
        "tab4" => tab4(ctx),
        "tab5" => tab5(ctx),
        "tab6" => tab6(ctx),
        "tab7" => tab7(ctx),
        "fig4" => fig4(ctx),
        "fig5" => fig5(ctx),
        "tab8" => tab8(ctx),
        "tab9" => tab9(ctx),
        "tab10" => tab10(ctx),
        "tab11" => tab11(ctx),
        "sec56" => sec56(ctx),
        "ablation-features" => ablation_features(ctx),
        "ablation-cusum" => ablation_cusum(ctx),
        "ablation-reassembly" => ablation_reassembly(ctx),
        "baseline-binary" => baseline_binary(ctx),
        "generalization" => generalization(ctx),
        "obfuscation" => obfuscation(ctx),
        "chaos-sweep" => chaos_sweep(ctx),
        "overload-sweep" => overload_sweep(ctx),
        "engine-scaling" => engine_scaling(ctx),
        "obs-overhead" => obs_overhead(ctx),
        "train-scaling" => train_scaling(ctx),
        "ingest-bench" => ingest_bench(ctx),
        "trace-overhead" => trace_overhead(ctx),
        "subscriber-scaling" => subscriber_scaling(ctx),
        other => format!(
            "unknown experiment '{other}'. known: {}\n",
            EXPERIMENTS.join(", ")
        ),
    }
}

fn header(id: &str, title: &str) -> String {
    format!("\n=== {id}: {title} ===\n\n")
}

// ---------------------------------------------------------------- tab1

fn tab1() -> String {
    let mut out = header("tab1", "metrics extracted from the operator's weblogs");
    let mut t = Table::new(vec![
        "Network features (clear + encrypted)",
        "Ground truth (URIs, cleartext only)",
    ]);
    let rows = [
        ("minimum RTT", "chunk resolution (itag)"),
        ("average RTT", "stall count (playback reports)"),
        ("maximum RTT", "stall duration (playback reports)"),
        ("bandwidth-delay product", "video session ID (cpn)"),
        ("average bytes-in-flight", ""),
        ("maximum bytes-in-flight", ""),
        ("% packet loss", ""),
        ("% packet retransmissions", ""),
        ("chunk size", ""),
        ("chunk time", ""),
    ];
    for (l, r) in rows {
        t.row(vec![l, r]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe left column is available for every flow; the right column only\n\
         for cleartext sessions — it is the training-phase ground truth\n\
         (vqoe_telemetry::groundtruth implements the extraction).\n",
    );
    out
}

// ---------------------------------------------------------------- fig1

/// Find an adaptive session with at least one stall and enough chunks to
/// show the recovery dynamics.
fn find_stalled_session(traces: &[SessionTrace]) -> Option<&SessionTrace> {
    traces
        .iter()
        .filter(|t| t.config.delivery.is_adaptive())
        .filter(|t| t.ground_truth.stall_count() >= 1 && t.chunks.len() >= 24)
        .max_by_key(|t| t.ground_truth.stall_count())
}

fn fig1(ctx: &ReproContext) -> String {
    let mut out = header("fig1", "chunk sizes in a video session with stalls");
    let Some(session) = find_stalled_session(&ctx.adaptive) else {
        return out + "no stalled adaptive session in the corpus (increase --sessions)\n";
    };
    let t0 = session.config.start_time;
    let stalls = &session.ground_truth.stalls;
    let mut t = Table::new(vec!["t (s)", "chunk size (KB)", "", "note"]);
    for c in session
        .chunks
        .iter()
        .filter(|c| c.content_type == ContentType::Video)
    {
        let rel = c.arrival_time.duration_since(t0).as_secs_f64();
        let kb = c.bytes as f64 / 1024.0;
        let bar = "#".repeat(((kb / 40.0).round() as usize).min(60));
        let in_recovery = stalls.iter().any(|s| {
            let s0 = s.start.duration_since(t0).as_secs_f64();
            let s1 = s0 + s.duration.as_secs_f64();
            rel >= s0 && rel <= s1 + 10.0
        });
        let note = if in_recovery {
            "<- stall / recovery"
        } else {
            ""
        };
        t.row(vec![
            format!("{rel:.1}"),
            format!("{kb:.0}"),
            bar,
            note.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nsession: {} stalls, {:.1}s stalled, RR = {:.3}\n",
        session.ground_truth.stall_count(),
        session.ground_truth.total_stall_time().as_secs_f64(),
        session.ground_truth.rebuffering_ratio()
    ));
    out.push_str(&compare_line(
        "chunk-size collapse at stall, ramp after recovery",
        "qualitative (Fig. 1)",
        "visible above",
    ));
    out
}

// ---------------------------------------------------------------- fig2

fn fig2(ctx: &ReproContext) -> String {
    let mut out = header("fig2", "ECDF of stalls per session and rebuffering ratio");
    let stall_counts: Vec<f64> = ctx
        .cleartext
        .iter()
        .map(|t| t.ground_truth.stall_count() as f64)
        .collect();
    let rr: Vec<f64> = ctx
        .cleartext
        .iter()
        .map(|t| t.ground_truth.rebuffering_ratio())
        .collect();
    let n = ctx.cleartext.len() as f64;
    let with_stalls = stall_counts.iter().filter(|&&c| c > 0.0).count() as f64 / n;
    let multi = stall_counts.iter().filter(|&&c| c > 1.0).count() as f64 / n;
    let severe = rr.iter().filter(|&&r| r > 0.1).count() as f64 / n;

    out.push_str(&render_cdf(
        "ECDF: number of stalls per session",
        "stalls",
        &Ecdf::new(&stall_counts).steps(),
        10,
    ));
    out.push('\n');
    let rr_nonzero: Vec<f64> = rr.iter().copied().filter(|&r| r > 0.0).collect();
    out.push_str(&render_cdf(
        "ECDF: rebuffering ratio (sessions with RR > 0)",
        "RR",
        &Ecdf::new(&rr_nonzero).steps(),
        10,
    ));
    out.push('\n');
    out.push_str(&compare_line(
        "% sessions with >=1 stall",
        "~12%",
        &format!("{:.1}%", with_stalls * 100.0),
    ));
    out.push_str(&compare_line(
        "% sessions with >1 stall",
        "~8%",
        &format!("{:.1}%", multi * 100.0),
    ));
    out.push_str(&compare_line(
        "% sessions with RR > 0.1 (severe)",
        "~10% of RR distribution",
        &format!("{:.1}% of all sessions", severe * 100.0),
    ));
    out
}

// ---------------------------------------------------------------- fig3

fn fig3(ctx: &ReproContext) -> String {
    let mut out = header("fig3", "Δt and Δsize around a representation switch");
    // Find a session with a clean up-switch and no stalls.
    let session = ctx
        .adaptive
        .iter()
        .filter(|t| t.ground_truth.stall_count() == 0 && t.chunks.len() >= 20)
        .find(|t| {
            let res = &t.ground_truth.segment_resolutions;
            res.windows(2).any(|w| w[1] > w[0] && w[0] >= 240)
        });
    let Some(session) = session else {
        return out + "no suitable switching session found (increase --sessions)\n";
    };
    let t0 = session.config.start_time;
    let video: Vec<&vqoe_player::ChunkRecord> = session
        .chunks
        .iter()
        .filter(|c| c.content_type == ContentType::Video)
        .collect();
    let mut t = Table::new(vec![
        "t (s)",
        "resolution",
        "size (KB)",
        "Δt (s)",
        "Δsize (KB)",
    ]);
    for (i, c) in video.iter().enumerate() {
        let rel = c.arrival_time.duration_since(t0).as_secs_f64();
        let (dt, dsize) = if i == 0 {
            (0.0, 0.0)
        } else {
            (
                c.arrival_time
                    .duration_since(video[i - 1].arrival_time)
                    .as_secs_f64(),
                (c.bytes as f64 - video[i - 1].bytes as f64).abs() / 1024.0,
            )
        };
        t.row(vec![
            format!("{rel:.1}"),
            format!("{}p", c.itag.expect("video chunk").resolution()),
            format!("{:.0}", c.bytes as f64 / 1024.0),
            format!("{dt:.2}"),
            format!("{dsize:.0}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&compare_line(
        "Δsize and Δt spike at the representation switch",
        "qualitative (Fig. 3)",
        "visible above",
    ));
    out
}

// ---------------------------------------------------------------- tab2

fn tab2(ctx: &ReproContext) -> String {
    let mut out = header("tab2", "stall-model features and information gains");
    let importance = ctx.stall.model.forest.feature_importance();
    let mut t = Table::new(vec!["info. gain", "forest MDI", "feature"]);
    for (i, r) in ctx.stall.selected.iter().enumerate() {
        t.row(vec![
            format!("{:.3}", r.gain),
            format!("{:.3}", importance.get(i).copied().unwrap_or(0.0)),
            r.name.clone(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(info. gain = model-free univariate score, the paper's Table 2 metric;\n\
         forest MDI = mean decrease in impurity, what the trained forest used)\n\n",
    );
    out.push_str(&compare_line(
        "top features are chunk-size statistics",
        "chunk size min 0.45, std 0.25",
        &ctx.stall
            .selected
            .iter()
            .take(2)
            .map(|r| format!("{} {:.2}", r.name, r.gain))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str(&compare_line(
        "BDP and retransmissions follow",
        "BDP mean 0.18, retx max 0.12",
        &ctx.stall
            .selected
            .iter()
            .filter(|r| r.name.contains("BDP") || r.name.contains("retransmissions"))
            .take(2)
            .map(|r| format!("{} {:.2}", r.name, r.gain))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out
}

// ------------------------------------------------------------ tab3/tab4

fn tab3(ctx: &ReproContext) -> String {
    let mut out = header("tab3", "stall classifier, 10-fold CV on cleartext");
    out.push_str(&render_class_report(&ctx.stall.cv_matrix));
    if let Some(oob) = ctx.stall.model.forest.oob_accuracy {
        out.push_str(&format!(
            "\n(out-of-bag accuracy of the deployed forest on its balanced\n\
             training corpus: {oob:.3})\n"
        ));
    }
    out.push('\n');
    let counts = &ctx.stall.class_counts;
    let total: usize = counts.iter().sum();
    out.push_str(&format!(
        "corpus: {total} sessions ({} no / {} mild / {} severe)\n\n",
        counts[0], counts[1], counts[2]
    ));
    out.push_str(&compare_line(
        "overall accuracy",
        "93.5%",
        &format!("{:.1}%", ctx.stall.cv_matrix.accuracy() * 100.0),
    ));
    out.push_str(&compare_line(
        "per-class recall ordering",
        "no 0.977 > mild 0.809 > severe 0.793",
        &format!(
            "no {:.3} / mild {:.3} / severe {:.3}",
            ctx.stall.cv_matrix.tp_rate(0),
            ctx.stall.cv_matrix.tp_rate(1),
            ctx.stall.cv_matrix.tp_rate(2)
        ),
    ));
    out
}

fn tab4(ctx: &ReproContext) -> String {
    let mut out = header("tab4", "stall detection confusion matrix (CV)");
    out.push_str(&render_confusion(&ctx.stall.cv_matrix));
    out.push('\n');
    let m = &ctx.stall.cv_matrix;
    let pct = m.row_percentages();
    out.push_str(&compare_line(
        "errors concentrate no<->mild and mild<->severe",
        "no->severe 0.18%, severe->no 4.2%",
        &format!("no->severe {:.1}%, severe->no {:.1}%", pct[0][2], pct[2][0]),
    ));
    out
}

// ------------------------------------------------------------ tab5..7

fn tab5(ctx: &ReproContext) -> String {
    let mut out = header("tab5", "average-representation features and gains");
    let mut t = Table::new(vec!["info. gain", "feature"]);
    for r in &ctx.representation.selected {
        t.row(vec![format!("{:.3}", r.gain), r.name.clone()]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let size_derived = ctx
        .representation
        .selected
        .iter()
        .filter(|r| r.name.contains("size"))
        .count();
    out.push_str(&compare_line(
        "size-derived features in the subset",
        "11 of 15 (Table 5)",
        &format!("{size_derived} of {}", ctx.representation.selected.len()),
    ));
    out
}

fn tab6(ctx: &ReproContext) -> String {
    let mut out = header("tab6", "average-representation classifier, 10-fold CV");
    out.push_str(&render_class_report(&ctx.representation.cv_matrix));
    out.push('\n');
    let counts = &ctx.representation.class_counts;
    let total: usize = counts.iter().sum();
    out.push_str(&format!(
        "adaptive corpus: {total} sessions ({} LD / {} SD / {} HD; paper 57/38/5%)\n\n",
        counts[0], counts[1], counts[2]
    ));
    out.push_str(&compare_line(
        "overall accuracy",
        "84.5%",
        &format!("{:.1}%", ctx.representation.cv_matrix.accuracy() * 100.0),
    ));
    out
}

fn tab7(ctx: &ReproContext) -> String {
    let mut out = header("tab7", "average-representation confusion matrix (CV)");
    out.push_str(&render_confusion(&ctx.representation.cv_matrix));
    out.push('\n');
    let pct = ctx.representation.cv_matrix.row_percentages();
    out.push_str(&compare_line(
        "SD->LD and HD->SD leakage (mid-session downscales)",
        "SD->LD 22.7%, HD->SD 18.2%",
        &format!("SD->LD {:.1}%, HD->SD {:.1}%", pct[1][0], pct[2][1]),
    ));
    out
}

// ---------------------------------------------------------------- fig4

fn fig4(ctx: &ReproContext) -> String {
    let mut out = header(
        "fig4",
        "CDF of σ(CUSUM(Δsize×Δt)) with vs without representation switches",
    );
    let a = Ecdf::new(&ctx.switch.scores_without);
    let b = Ecdf::new(&ctx.switch.scores_with);
    out.push_str(&render_cdf_pair(
        "score distributions",
        "score",
        "no switches",
        &a,
        "with switches",
        &b,
        12,
    ));
    out.push('\n');
    out.push_str(&format!(
        "calibrated threshold: {:.1} (paper's threshold: 500, in its units)\n\n",
        ctx.switch.model.threshold()
    ));
    out.push_str(&compare_line(
        "no-switch sessions below threshold",
        "78%",
        &format!("{:.1}%", ctx.switch.acc_without * 100.0),
    ));
    out.push_str(&compare_line(
        "switch sessions above threshold",
        "76%",
        &format!("{:.1}%", ctx.switch.acc_with * 100.0),
    ));
    out
}

// ---------------------------------------------------------------- fig5

fn fig5(ctx: &ReproContext) -> String {
    let mut out = header(
        "fig5",
        "segment size and inter-arrival CDFs: encrypted vs cleartext",
    );
    let clear_sizes: Vec<f64> = ctx
        .cleartext
        .iter()
        .flat_map(|t| t.chunks.iter().map(|c| c.bytes as f64 / 1024.0))
        .collect();
    let enc_sizes: Vec<f64> = ctx
        .world
        .sessions
        .iter()
        .flat_map(|s| s.chunks.iter().map(|c| c.bytes as f64 / 1024.0))
        .collect();
    let inter = |obs: SessionObs| obs.inter_arrivals();
    let clear_gaps: Vec<f64> = ctx
        .cleartext
        .iter()
        .flat_map(|t| inter(SessionObs::from_trace(t)))
        .collect();
    let enc_gaps: Vec<f64> = ctx
        .world
        .sessions
        .iter()
        .flat_map(|s| inter(SessionObs::from_reassembled(s)))
        .collect();

    let size_a = Ecdf::new(&clear_sizes);
    let size_b = Ecdf::new(&enc_sizes);
    out.push_str(&render_cdf_pair(
        "chunk size (KB)",
        "KB",
        "cleartext",
        &size_a,
        "encrypted",
        &size_b,
        12,
    ));
    out.push('\n');
    let gap_a = Ecdf::new(&clear_gaps);
    let gap_b = Ecdf::new(&enc_gaps);
    out.push_str(&render_cdf_pair(
        "chunk inter-arrival time (s)",
        "s",
        "cleartext",
        &gap_a,
        "encrypted",
        &gap_b,
        12,
    ));
    out.push('\n');
    out.push_str(&compare_line(
        "size distributions largely overlap",
        "qualitative (Fig. 5 left)",
        &format!("KS = {:.3}", size_a.ks_distance(&size_b)),
    ));
    out.push_str(&compare_line(
        "encrypted inter-arrivals slightly shorter",
        "60% of encrypted chunks lower",
        &format!(
            "median clear {:.2}s vs encrypted {:.2}s",
            gap_a.inverse(0.5),
            gap_b.inverse(0.5)
        ),
    ));
    out
}

// ------------------------------------------------------------ tab8..11

fn tab8(ctx: &ReproContext) -> String {
    let mut out = header("tab8", "stall detection on encrypted traffic");
    let m = ctx.stall.model.evaluate(&ctx.world.stall_eval_dataset());
    out.push_str(&render_class_report(&m));
    out.push('\n');
    out.push_str(&compare_line(
        "overall accuracy",
        "91.8% (cleartext − 1.7)",
        &format!(
            "{:.1}% (cleartext − {:.1})",
            m.accuracy() * 100.0,
            (ctx.stall.cv_matrix.accuracy() - m.accuracy()) * 100.0
        ),
    ));
    out.push_str(&compare_line(
        "severe class degrades the most",
        "severe recall 0.656",
        &format!("severe recall {:.3}", m.tp_rate(2)),
    ));
    out
}

fn tab9(ctx: &ReproContext) -> String {
    let mut out = header("tab9", "encrypted stall confusion matrix");
    let m = ctx.stall.model.evaluate(&ctx.world.stall_eval_dataset());
    out.push_str(&render_confusion(&m));
    out.push('\n');
    let pct = m.row_percentages();
    out.push_str(&compare_line(
        "severe -> mild inflation",
        "32.4%",
        &format!("{:.1}%", pct[2][1]),
    ));
    out
}

fn tab10(ctx: &ReproContext) -> String {
    let mut out = header("tab10", "average representation on encrypted traffic");
    let m = ctx
        .representation
        .model
        .evaluate(&ctx.world.representation_eval_dataset());
    out.push_str(&render_class_report(&m));
    out.push('\n');
    out.push_str(&compare_line(
        "overall accuracy",
        "81.9% (cleartext − 2.5)",
        &format!(
            "{:.1}% (cleartext − {:.1})",
            m.accuracy() * 100.0,
            (ctx.representation.cv_matrix.accuracy() - m.accuracy()) * 100.0
        ),
    ));
    out
}

fn tab11(ctx: &ReproContext) -> String {
    let mut out = header("tab11", "encrypted average-representation confusion matrix");
    let m = ctx
        .representation
        .model
        .evaluate(&ctx.world.representation_eval_dataset());
    out.push_str(&render_confusion(&m));
    out.push('\n');
    let pct = m.row_percentages();
    out.push_str(&compare_line(
        "LD -> SD shift on the encrypted set",
        "15.4%",
        &format!("{:.1}%", pct[0][1]),
    ));
    out
}

// ---------------------------------------------------------------- sec56

fn sec56(ctx: &ReproContext) -> String {
    let mut out = header(
        "sec56",
        "representation-switch detection on encrypted traffic (frozen threshold)",
    );
    let eval = ctx
        .switch
        .model
        .evaluate_labelled(&ctx.world.labelled_switch_sessions());
    out.push_str(&format!(
        "frozen threshold {:.1} applied to {} encrypted sessions\n\n",
        ctx.switch.model.threshold(),
        eval.n_with + eval.n_without
    ));
    out.push_str(&compare_line(
        "no-switch sessions correctly identified",
        "76.9% (calibration − 1.1)",
        &format!(
            "{:.1}% (calibration − {:.1})",
            eval.acc_without * 100.0,
            (ctx.switch.acc_without - eval.acc_without) * 100.0
        ),
    ));
    out.push_str(&compare_line(
        "switch sessions correctly identified",
        "71.7% (calibration − 4.3)",
        &format!(
            "{:.1}% (calibration − {:.1})",
            eval.acc_with * 100.0,
            (ctx.switch.acc_with - eval.acc_with) * 100.0
        ),
    ));
    out
}

// ------------------------------------------------------------ ablations

/// Feature-set ablation: retrain the stall model without any chunk-size
/// features. The paper's argument (§4.1) implies accuracy should drop
/// materially.
fn ablation_features(ctx: &ReproContext) -> String {
    let mut out = header(
        "ablation-features",
        "stall model without chunk-size features",
    );
    let mut stall_corpus = ctx.cleartext.clone();
    stall_corpus.extend(ctx.adaptive.iter().cloned());
    let full = vqoe_features::build_stall_dataset(&stall_corpus);
    // Drop the 7 chunk-size statistics (metric index 8 → columns 56..63).
    let keep: Vec<usize> = (0..full.n_features())
        .filter(|&i| !full.feature_names[i].starts_with("chunk size"))
        .collect();
    let without = full.select_features(&keep);
    let report_full =
        vqoe_core::stall_pipeline::train_stall_detector_on(&full, ForestConfig::default(), 7);
    let report_without =
        vqoe_core::stall_pipeline::train_stall_detector_on(&without, ForestConfig::default(), 7);
    let mut t = Table::new(vec![
        "feature set",
        "CV accuracy",
        "no-stall recall",
        "severe recall",
    ]);
    for (name, m) in [
        ("all 70 features", &report_full.cv_matrix),
        ("without chunk size", &report_without.cv_matrix),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", m.accuracy()),
            format!("{:.3}", m.tp_rate(0)),
            format!("{:.3}", m.tp_rate(2)),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "removing chunk-size features hurts",
        "implied by §4.1",
        &format!(
            "Δaccuracy = {:+.3}",
            report_without.cv_matrix.accuracy() - report_full.cv_matrix.accuracy()
        ),
    ));
    out
}

/// CUSUM ablation: score sessions by the raw σ of the Δsize×Δt series
/// instead of σ(CUSUM(...)) and compare separation quality.
fn ablation_cusum(ctx: &ReproContext) -> String {
    let mut out = header("ablation-cusum", "CUSUM vs raw σ of the Δsize×Δt series");
    let cfg = *ctx.switch.model.scoring();
    let mut raw_without = Vec::new();
    let mut raw_with = Vec::new();
    for t in &ctx.adaptive {
        let obs = SessionObs::from_trace(t);
        let filtered = vqoe_changedet::detector::startup_filter(&obs.chunk_points(), &cfg);
        if filtered.len() < 3 {
            continue;
        }
        let series = vqoe_changedet::detector::delta_product_series(&filtered, &cfg);
        let raw = vqoe_stats::moments::population_std(&series);
        if has_switches(&t.ground_truth) {
            raw_with.push(raw);
        } else {
            raw_without.push(raw);
        }
    }
    let (_, raw_wo, raw_w) = vqoe_stats::ecdf::best_separating_threshold(&raw_without, &raw_with);
    let mut t = Table::new(vec!["method", "no-switch acc", "switch acc", "balanced"]);
    t.row(vec![
        "σ(CUSUM(Δsize×Δt)) [paper]".to_string(),
        format!("{:.3}", ctx.switch.acc_without),
        format!("{:.3}", ctx.switch.acc_with),
        format!(
            "{:.3}",
            (ctx.switch.acc_without + ctx.switch.acc_with) / 2.0
        ),
    ]);
    t.row(vec![
        "σ(Δsize×Δt) raw".to_string(),
        format!("{raw_wo:.3}"),
        format!("{raw_w:.3}"),
        format!("{:.3}", (raw_wo + raw_w) / 2.0),
    ]);
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "CUSUM accumulation beats a raw variance score",
        "implied by §4.3's method choice",
        &format!(
            "Δbalanced = {:+.3}",
            (ctx.switch.acc_without + ctx.switch.acc_with) / 2.0 - (raw_wo + raw_w) / 2.0
        ),
    ));
    out
}

/// Reassembly sensitivity: sweep the idle-gap threshold of the §5.2
/// procedure and report recall (sessions recovered and matched) and
/// fragmentation (recovered sessions per real session).
fn ablation_reassembly(ctx: &ReproContext) -> String {
    let mut out = header(
        "ablation-reassembly",
        "idle-gap sensitivity of encrypted session reassembly",
    );
    let mut t = Table::new(vec![
        "idle gap (s)",
        "recovered",
        "matched",
        "recall",
        "exact chunk counts",
    ]);
    for gap_secs in [5u64, 15, 30, 60, 120, 600] {
        let cfg = vqoe_telemetry::ReassemblyConfig {
            idle_gap: vqoe_simnet::time::Duration::from_secs(gap_secs),
            ..vqoe_telemetry::ReassemblyConfig::default()
        };
        let sessions = vqoe_telemetry::reassemble_subscriber(&ctx.world.entries, &cfg);
        let joined = vqoe_telemetry::join_sessions(&sessions, &ctx.world.traces);
        let exact = joined
            .iter()
            .filter(|j| {
                sessions[j.reassembled_idx].chunk_count()
                    == ctx.world.traces[j.trace_idx].chunks.len()
            })
            .count();
        t.row(vec![
            format!("{gap_secs}"),
            format!("{}", sessions.len()),
            format!("{}", joined.len()),
            format!("{:.3}", joined.len() as f64 / ctx.world.traces.len() as f64),
            format!("{exact}/{}", joined.len()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "reassembly robust across a wide threshold range",
        "implied by §5.2's claimed reliability",
        "see the recall column",
    ));
    out
}

/// The Prometheus-style binary baseline the paper compares against:
/// stall / no-stall with all features.
fn baseline_binary(ctx: &ReproContext) -> String {
    let mut out = header(
        "baseline-binary",
        "binary stall classifier (Prometheus-style baseline)",
    );
    let mut stall_corpus = ctx.cleartext.clone();
    stall_corpus.extend(ctx.adaptive.iter().cloned());
    let full = vqoe_features::build_stall_dataset(&stall_corpus);
    let y_binary: Vec<usize> = stall_corpus
        .iter()
        .map(|t| usize::from(stall_label(&t.ground_truth) != StallClass::NoStalls))
        .collect();
    let binary = Dataset::new(
        full.feature_names.clone(),
        vec!["no stalls".to_string(), "stalls".to_string()],
        full.x.clone(),
        y_binary,
    );
    let m = cross_validate(&binary, 10, ForestConfig::default(), true, 7);
    out.push_str(&render_class_report(&m));
    out.push('\n');
    out.push_str(&compare_line(
        "binary baseline accuracy",
        "~84% (Prometheus [15])",
        &format!("{:.1}%", m.accuracy() * 100.0),
    ));
    out.push_str(&compare_line(
        "3-class model adds severity detection at",
        "93.5%",
        &format!("{:.1}%", ctx.stall.cv_matrix.accuracy() * 100.0),
    ));
    out
}

/// The §7 generalization probe: models trained on the YouTube profile,
/// evaluated on a provider with different delivery mechanics (shorter
/// muxed segments, more efficient encodes, deeper buffers).
fn generalization(ctx: &ReproContext) -> String {
    let mut out = header(
        "generalization",
        "§7 probe: YouTube-trained models on a Vimeo-like provider",
    );
    let mut config = vqoe_core::EncryptedEvalConfig::paper_default(ctx.scale.seed ^ 0x0666);
    config.spec.profile = vqoe_player::StreamingProfile::vimeo_like();
    let other = vqoe_core::EncryptedWorld::build(&config).expect("simulated world builds");

    let stall_home = ctx.stall.model.evaluate(&ctx.world.stall_eval_dataset());
    let stall_away = ctx.stall.model.evaluate(&other.stall_eval_dataset());
    let rep_home = ctx
        .representation
        .model
        .evaluate(&ctx.world.representation_eval_dataset());
    let rep_away = ctx
        .representation
        .model
        .evaluate(&other.representation_eval_dataset());
    let sw_home = ctx
        .switch
        .model
        .evaluate_labelled(&ctx.world.labelled_switch_sessions());
    let sw_away = ctx
        .switch
        .model
        .evaluate_labelled(&other.labelled_switch_sessions());

    let mut t = Table::new(vec![
        "detector",
        "YouTube profile",
        "Vimeo-like profile",
        "delta",
    ]);
    t.row(vec![
        "stall severity".to_string(),
        format!("{:.3}", stall_home.accuracy()),
        format!("{:.3}", stall_away.accuracy()),
        format!("{:+.3}", stall_away.accuracy() - stall_home.accuracy()),
    ]);
    t.row(vec![
        "avg representation".to_string(),
        format!("{:.3}", rep_home.accuracy()),
        format!("{:.3}", rep_away.accuracy()),
        format!("{:+.3}", rep_away.accuracy() - rep_home.accuracy()),
    ]);
    let bal = |e: &vqoe_core::SwitchEvalReport| (e.acc_with + e.acc_without) / 2.0;
    t.row(vec![
        "switch detection (balanced)".to_string(),
        format!("{:.3}", bal(&sw_home)),
        format!("{:.3}", bal(&sw_away)),
        format!("{:+.3}", bal(&sw_away) - bal(&sw_home)),
    ]);
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "methodology generalizes across providers",
        "conjectured (§7)",
        "see deltas above (retraining closes any gap)",
    ));
    out
}

/// Robustness extension: how much does provider-side traffic-shape
/// obfuscation degrade the trained detectors? The flip side of the
/// paper's thesis — TLS alone leaks QoE structure; this quantifies what
/// it would take to actually hide it.
fn obfuscation(ctx: &ReproContext) -> String {
    use rand::SeedableRng;
    use vqoe_features::labels::{rq_label, stall_label};
    use vqoe_features::obfuscation::{inject_dummies, jitter_timing, pad_sizes};

    let mut out = header(
        "obfuscation",
        "detector accuracy under provider-side shape countermeasures",
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0BF5);

    // Collect the joined encrypted sessions once.
    let sessions: Vec<(SessionObs, usize, usize)> = ctx
        .world
        .joined
        .iter()
        .map(|j| {
            (
                SessionObs::from_reassembled(&ctx.world.sessions[j.reassembled_idx]),
                stall_label(&ctx.world.traces[j.trace_idx].ground_truth).index(),
                rq_label(&ctx.world.traces[j.trace_idx].ground_truth).index(),
            )
        })
        .collect();

    let eval =
        |label: String, transform: &mut dyn FnMut(&SessionObs) -> SessionObs, t: &mut Table| {
            let mut stall_ok = 0usize;
            let mut rq_ok = 0usize;
            for (obs, stall_truth, rq_truth) in &sessions {
                let defended = transform(obs);
                if ctx.stall.model.predict(&defended).index() == *stall_truth {
                    stall_ok += 1;
                }
                if ctx.representation.model.predict(&defended).index() == *rq_truth {
                    rq_ok += 1;
                }
            }
            let n = sessions.len() as f64;
            t.row(vec![
                label,
                format!("{:.3}", stall_ok as f64 / n),
                format!("{:.3}", rq_ok as f64 / n),
            ]);
        };

    let mut t = Table::new(vec!["countermeasure", "stall acc", "repr acc"]);
    eval("none (baseline)".to_string(), &mut |o| o.clone(), &mut t);
    for quantum in [64_000u64, 256_000, 1_000_000] {
        eval(
            format!("pad sizes to {} KB", quantum / 1000),
            &mut |o| pad_sizes(o, quantum),
            &mut t,
        );
    }
    for jitter in [1.0f64, 5.0] {
        eval(
            format!("timing jitter ≤ {jitter}s"),
            &mut |o| jitter_timing(o, jitter, &mut rng),
            &mut t,
        );
    }
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(0x0BF6);
    for frac in [0.25f64, 1.0] {
        eval(
            format!("+{:.0}% dummy chunks", frac * 100.0),
            &mut |o| inject_dummies(o, frac, &mut rng2),
            &mut t,
        );
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "shape obfuscation is what it takes to defeat monitoring",
        "implied: TLS alone does not hide QoE",
        "accuracy decays with countermeasure strength",
    ));
    out
}

/// ABR-family comparison (extension experiment; not a paper artifact but
/// exercises the substrate's design space).
pub fn abr_comparison(seed: u64, n: usize) -> String {
    let mut out = header("abr-comparison", "stalls and switching across ABR families");
    let mut t = Table::new(vec![
        "ABR",
        "stalled sessions",
        "mean RR",
        "mean switches",
        "mean resolution",
    ]);
    for abr in [AbrKind::Throughput, AbrKind::BufferBased, AbrKind::Hybrid] {
        let mut spec = DatasetSpec::adaptive_default(n, seed);
        spec.delivery.abr = abr;
        let traces = vqoe_core::generate_traces(&spec);
        let stalled = traces
            .iter()
            .filter(|t| t.ground_truth.stall_count() > 0)
            .count();
        let mean_rr: f64 = traces
            .iter()
            .map(|t| t.ground_truth.rebuffering_ratio())
            .sum::<f64>()
            / traces.len() as f64;
        let mean_switches: f64 = traces
            .iter()
            .map(|t| t.ground_truth.switch_count() as f64)
            .sum::<f64>()
            / traces.len() as f64;
        let mean_res: f64 = traces
            .iter()
            .map(|t| t.ground_truth.avg_resolution())
            .sum::<f64>()
            / traces.len() as f64;
        t.row(vec![
            format!("{abr:?}"),
            format!("{stalled}/{}", traces.len()),
            format!("{mean_rr:.4}"),
            format!("{mean_switches:.2}"),
            format!("{mean_res:.0}p"),
        ]);
    }
    out.push_str(&t.render());
    out
}

// ----------------------------------------------------------- chaos-sweep

/// Greedy one-to-one matching of emitted assessments to ground-truth
/// traces by temporal overlap weighted by chunk-count agreement — the
/// same joining rule as `vqoe_telemetry::join_sessions`, restated for
/// assessments (which only expose start/end/chunk_count).
fn match_assessments(
    assessments: &[vqoe_core::SessionAssessment],
    traces: &[SessionTrace],
) -> Vec<(usize, usize)> {
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for (ai, a) in assessments.iter().enumerate() {
        for (ti, t) in traces.iter().enumerate() {
            let (t_start, t_end) = match (t.chunks.first(), t.chunks.last()) {
                (Some(first), Some(last)) => (first.request_time, last.arrival_time),
                _ => continue,
            };
            let overlap_start = a.start.max(t_start);
            let overlap_end = a.end.min(t_end);
            if overlap_end <= overlap_start {
                continue;
            }
            let overlap = overlap_end.duration_since(overlap_start).as_secs_f64();
            let union = a
                .end
                .max(t_end)
                .duration_since(a.start.min(t_start))
                .as_secs_f64();
            let temporal = if union > 0.0 { overlap / union } else { 0.0 };
            let ca = a.chunk_count as f64;
            let ct = t.chunks.len() as f64;
            let agreement = (1.0 - (ca - ct).abs() / ca.max(ct).max(1.0)).max(0.0);
            let score = temporal * agreement;
            if score > 0.0 {
                candidates.push((score, ai, ti));
            }
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut used_a = vec![false; assessments.len()];
    let mut used_t = vec![false; traces.len()];
    let mut out = Vec::new();
    for (_, ai, ti) in candidates {
        if !used_a[ai] && !used_t[ti] {
            used_a[ai] = true;
            used_t[ti] = true;
            out.push((ai, ti));
        }
    }
    out
}

/// Degradation sweep: run the encrypted world through a seeded
/// `ChaosTap` at increasing fault intensity and measure what survives —
/// the deployment question §8 leaves open (how does the monitor degrade
/// when the tap itself is unreliable?).
fn chaos_sweep(ctx: &ReproContext) -> String {
    use vqoe_core::{OnlineAssessor, QoeMonitor};
    use vqoe_telemetry::{apply_chaos, ChaosConfig, ReassemblyConfig};

    let mut out = header(
        "chaos-sweep",
        "graceful degradation under a hostile tap (fault intensity sweep)",
    );
    let monitor = QoeMonitor {
        stall_model: ctx.stall.model.clone(),
        representation_model: ctx.representation.model.clone(),
        switch_model: ctx.switch.model,
        reassembly: ReassemblyConfig::default(),
    };
    // Reference: the un-wrapped batch pipeline on the clean stream.
    let batch = monitor.pipeline().assess_subscriber(&ctx.world.entries);

    let mut t = Table::new(vec![
        "fault", "assessed", "matched", "stall", "repr", "switch", "reord", "dup", "quar", "evict",
        "partial",
    ]);
    let mut zero_identical = false;
    for (i, &intensity) in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4].iter().enumerate() {
        // The evaluation world is one subscriber's stream, so a single
        // mid-stream cut would censor the whole tail and the sweep
        // would measure where the first cut landed, not per-entry
        // fault tolerance. Cuts stay at zero here; the chaos-matrix
        // integration tests cover them on multi-subscriber taps.
        let cfg = ChaosConfig {
            cut: 0.0,
            ..ChaosConfig::uniform(intensity)
        };
        let (entries, _) = apply_chaos(
            &ctx.world.entries,
            &cfg,
            ctx.scale.seed ^ (0xC4A0 + i as u64),
        );
        let mut online = OnlineAssessor::new(monitor.clone());
        let mut assessments = Vec::new();
        for e in &entries {
            assessments.extend(online.ingest(e));
        }
        let report = online.into_report();
        assessments.extend(report.assessments);
        if intensity == 0.0 {
            zero_identical = assessments == batch;
        }
        let matches = match_assessments(&assessments, &ctx.world.traces);
        let mut stall_ok = 0usize;
        let mut rep_ok = 0usize;
        let mut switch_ok = 0usize;
        for &(ai, ti) in &matches {
            let gt = &ctx.world.traces[ti].ground_truth;
            if assessments[ai].stall == stall_label(gt) {
                stall_ok += 1;
            }
            if assessments[ai].representation == vqoe_features::labels::rq_label(gt) {
                rep_ok += 1;
            }
            if assessments[ai].has_quality_switches == has_switches(gt) {
                switch_ok += 1;
            }
        }
        let pct = |n: usize| -> String {
            if matches.is_empty() {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * n as f64 / matches.len() as f64)
            }
        };
        let h = report.health;
        t.row(vec![
            format!("{intensity:.2}"),
            assessments.len().to_string(),
            format!("{}/{}", matches.len(), ctx.world.traces.len()),
            pct(stall_ok),
            pct(rep_ok),
            pct(switch_ok),
            h.entries_reordered.to_string(),
            h.entries_duplicated.to_string(),
            h.entries_quarantined.to_string(),
            h.sessions_evicted.to_string(),
            h.sessions_partial.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "clean path bit-identical at zero faults",
        "required (ISSUE 2)",
        if zero_identical {
            "yes"
        } else {
            "NO — regression"
        },
    ));
    out.push_str(&compare_line(
        "degradation shape",
        "graceful (no collapse)",
        "accuracy and match rate decay with intensity; see table",
    ));
    out
}

// ----------------------------------------------------- overload-sweep

/// Workload knobs for [`overload_sweep_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadSweepConfig {
    /// Flood subscribers per legitimate subscriber (the "10x flood" of
    /// the acceptance bar).
    pub flood_multiplier: u64,
    /// Media chunks each flood subscriber requests.
    pub chunks_per_subscriber: usize,
    /// Chunks in the single pathological (never-ending) session.
    pub pathological_chunks: usize,
    /// Global budget as a percentage of the unbudgeted peak (forces
    /// shedding by construction).
    pub budget_pct_of_peak: u64,
}

impl OverloadSweepConfig {
    /// The harness point `scripts/bench.sh` records.
    pub fn quick() -> Self {
        OverloadSweepConfig {
            flood_multiplier: 10,
            chunks_per_subscriber: 24,
            pathological_chunks: 400,
            budget_pct_of_peak: 50,
        }
    }
}

/// Overload harness: merge a 10x subscriber flood and one pathological
/// never-ending session into the evaluation tap, cap the assessor's
/// memory, and measure what the budgets shed, what accuracy each
/// fidelity tier retains, and whether kill/checkpoint/restore/replay
/// stays bit-identical to the uninterrupted run.
pub fn overload_sweep_with(ctx: &ReproContext, cfg: OverloadSweepConfig) -> (String, String) {
    use std::collections::BTreeSet;
    use vqoe_core::{
        AdmissionPolicy, BudgetConfig, Fidelity, IngestReport, OnlineAssessor, OnlineCheckpoint,
        QoeMonitor,
    };
    use vqoe_simnet::time::{Duration, Instant};
    use vqoe_telemetry::{
        generate_pathological_session, generate_subscriber_flood, merge_streams, FloodSpec,
        ReassemblyConfig,
    };

    let monitor = QoeMonitor {
        stall_model: ctx.stall.model.clone(),
        representation_model: ctx.representation.model.clone(),
        switch_model: ctx.switch.model,
        reassembly: ReassemblyConfig::default(),
    };

    // The legitimate tap plus the overload: a subscriber flood sized at
    // `flood_multiplier` times the legitimate population, spread over
    // the whole capture window, and one pathological session that never
    // reaches a session boundary.
    let legit = &ctx.world.entries;
    let legit_subs: BTreeSet<u64> = legit.iter().map(|e| e.subscriber_id).collect();
    let start = legit.first().map(|e| e.timestamp).unwrap_or(Instant(0));
    let end = legit.last().map(|e| e.timestamp).unwrap_or(Instant(0));
    let window = end.duration_since(start).max(Duration::from_secs(60));
    let spec = FloodSpec {
        subscribers: cfg.flood_multiplier * legit_subs.len().max(1) as u64,
        chunks_per_subscriber: cfg.chunks_per_subscriber,
        window,
        ..FloodSpec::default()
    };
    let flood = generate_subscriber_flood(&spec, start, ctx.scale.seed ^ 0xF100D);
    let pathological = generate_pathological_session(
        0x000B_AD1D,
        start,
        cfg.pathological_chunks,
        Duration::from_millis(250),
        ctx.scale.seed ^ 0xBAD,
    );
    let entries = merge_streams(vec![legit.clone(), flood, pathological]);

    let run = |budget: BudgetConfig| -> (IngestReport, u64) {
        let mut online = OnlineAssessor::new(monitor.clone()).with_budget(budget);
        let mut assessments = Vec::new();
        for e in &entries {
            assessments.extend(online.ingest(e));
        }
        let peak = online.peak_tracked_bytes();
        let mut report = online.into_report();
        assessments.extend(std::mem::take(&mut report.assessments));
        report.assessments = assessments;
        (report, peak)
    };

    // Unbudgeted reference run: sizes the budget and anchors the
    // restore-equivalence check.
    let (reference, peak_unbudgeted) = run(BudgetConfig::default());
    let global_budget = (peak_unbudgeted * cfg.budget_pct_of_peak.clamp(1, 100)) / 100;
    let shed_budget = BudgetConfig {
        per_subscriber_bytes: global_budget / 4,
        global_bytes: global_budget,
        admission: AdmissionPolicy::ShedColdest,
    };
    // The refuse scenario runs a much tighter global-only budget:
    // refusals fire when a newcomer arrives while tracked bytes sit
    // within one record of the cap, so the cap has to stay genuinely
    // contended (a generous cap sheds into lumpy headroom and admits
    // everyone).
    let refuse_budget = BudgetConfig {
        per_subscriber_bytes: 0,
        global_bytes: (global_budget / 8).max(1),
        admission: AdmissionPolicy::Refuse,
    };
    let (shed_report, peak_shed) = run(shed_budget);
    let (refuse_report, peak_refuse) = run(refuse_budget);

    let total_subs = legit_subs.len() as u64 + spec.subscribers + 1;
    let mut out = header(
        "overload-sweep",
        "admission control, memory budgets and degraded tiers under a 10x flood",
    );
    out.push_str(&format!(
        "tap: {} entries ({} legitimate + flood of {} subscribers + 1 pathological); \
         unbudgeted peak {} bytes; global budget {} bytes ({}% of peak), \
         per-subscriber {} bytes\n\n",
        entries.len(),
        legit.len(),
        spec.subscribers,
        peak_unbudgeted,
        global_budget,
        cfg.budget_pct_of_peak,
        shed_budget.per_subscriber_bytes,
    ));

    let mut t = Table::new(vec![
        "scenario",
        "assessed",
        "full",
        "partial",
        "shed",
        "shed events",
        "refused",
        "peak bytes",
        "bytes/sub",
    ]);
    let scenarios: [(&str, &IngestReport, u64); 3] = [
        ("unlimited", &reference, peak_unbudgeted),
        ("budget+shed", &shed_report, peak_shed),
        ("budget+refuse", &refuse_report, peak_refuse),
    ];
    for (name, report, peak) in scenarios {
        let by_tier = |f: Fidelity| {
            report
                .assessments
                .iter()
                .filter(|a| a.fidelity == f)
                .count()
        };
        t.row(vec![
            name.to_string(),
            report.assessments.len().to_string(),
            by_tier(Fidelity::Full).to_string(),
            by_tier(Fidelity::Partial).to_string(),
            by_tier(Fidelity::Shed).to_string(),
            report.shed.total().to_string(),
            report.shed.reasons().admission_refused.to_string(),
            peak.to_string(),
            (peak / total_subs).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // Per-tier accuracy on the budgeted (shedding) run, against the
    // legitimate subscribers' ground truth. Flood/pathological sessions
    // have no ground truth and simply stay unmatched.
    let matches = match_assessments(&shed_report.assessments, &ctx.world.traces);
    let mut tier_table = Table::new(vec!["tier", "matched", "stall", "repr", "switch"]);
    let mut json_tiers = String::new();
    for tier in [Fidelity::Full, Fidelity::Partial, Fidelity::Shed] {
        let mut matched = 0usize;
        let mut stall_ok = 0usize;
        let mut rep_ok = 0usize;
        let mut switch_ok = 0usize;
        for &(ai, ti) in &matches {
            let a = &shed_report.assessments[ai];
            if a.fidelity != tier {
                continue;
            }
            matched += 1;
            let gt = &ctx.world.traces[ti].ground_truth;
            if a.stall == stall_label(gt) {
                stall_ok += 1;
            }
            if a.representation == vqoe_features::labels::rq_label(gt) {
                rep_ok += 1;
            }
            if a.has_quality_switches == has_switches(gt) {
                switch_ok += 1;
            }
        }
        let pct = |n: usize| -> String {
            if matched == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * n as f64 / matched as f64)
            }
        };
        tier_table.row(vec![
            tier.label().to_string(),
            matched.to_string(),
            pct(stall_ok),
            pct(rep_ok),
            pct(switch_ok),
        ]);
        if !json_tiers.is_empty() {
            json_tiers.push_str(", ");
        }
        let frac = |n: usize| -> f64 {
            if matched == 0 {
                0.0
            } else {
                n as f64 / matched as f64
            }
        };
        json_tiers.push_str(&format!(
            "\"{}\": {{\"matched\": {matched}, \"stall_acc\": {:.4}, \
             \"repr_acc\": {:.4}, \"switch_acc\": {:.4}}}",
            tier.label(),
            frac(stall_ok),
            frac(rep_ok),
            frac(switch_ok),
        ));
    }
    out.push_str("per-tier accuracy (budget+shed scenario, legitimate ground truth):\n");
    out.push_str(&tier_table.render());
    out.push('\n');

    // Kill/restore determinism: cut the budgeted run at the midpoint,
    // checkpoint, round-trip through JSON, restore into a fresh
    // assessor, replay the tail — the merged report must be
    // bit-identical to the uninterrupted budgeted run.
    let mid = entries.len() / 2;
    let mut first = OnlineAssessor::new(monitor.clone()).with_budget(shed_budget);
    let mut resumed_assessments = Vec::new();
    for e in entries.iter().take(mid) {
        resumed_assessments.extend(first.ingest(e));
    }
    let ck = first.checkpoint();
    let ck_json = ck.to_json().expect("checkpoint serializes");
    let ck_back = OnlineCheckpoint::from_json(&ck_json).expect("checkpoint parses");
    let json_stable = ck_back.to_json().expect("checkpoint re-serializes") == ck_json;
    let mut second =
        OnlineAssessor::restore(monitor.clone(), &ck_back).expect("checkpoint restores");
    for e in entries.iter().skip(mid) {
        resumed_assessments.extend(second.ingest(e));
    }
    let mut resumed = second.into_report();
    resumed_assessments.extend(std::mem::take(&mut resumed.assessments));
    resumed.assessments = resumed_assessments;
    let restore_identical = resumed == shed_report;

    let within_budget = peak_shed <= peak_unbudgeted && peak_refuse <= peak_unbudgeted;
    out.push_str(&compare_line(
        "survived 10x flood within budget",
        "yes (no panics, peak under unbudgeted)",
        if within_budget {
            "yes"
        } else {
            "NO — regression"
        },
    ));
    out.push_str(&compare_line(
        "kill @ midpoint + restore + replay tail",
        "bit-identical report",
        if restore_identical && json_stable {
            "bit-identical (JSON round-trip stable)"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "shedding is typed and logged",
        "every force-finalize has a ShedReason",
        &format!(
            "{} events: {} lru, {} subscriber-budget, {} global-budget, {} refused",
            shed_report.shed.total(),
            shed_report.shed.reasons().lru_capacity,
            shed_report.shed.reasons().subscriber_budget,
            shed_report.shed.reasons().global_budget,
            shed_report.shed.reasons().admission_refused,
        ),
    ));

    let json = format!(
        "{{\n  \"experiment\": \"overload-sweep\",\n  \"entries\": {},\n  \
         \"flood_subscribers\": {},\n  \"peak_unbudgeted_bytes\": {},\n  \
         \"global_budget_bytes\": {},\n  \"peak_budgeted_bytes\": {},\n  \
         \"bytes_per_subscriber\": {},\n  \"assessed_unlimited\": {},\n  \
         \"assessed_budgeted\": {},\n  \"shed_events\": {},\n  \
         \"refused_subscribers\": {},\n  \"shed_rate\": {:.4},\n  \
         \"tiers\": {{{json_tiers}}},\n  \"restore_bit_identical\": {},\n  \
         \"checkpoint_json_stable\": {}\n}}\n",
        entries.len(),
        spec.subscribers,
        peak_unbudgeted,
        global_budget,
        peak_shed,
        peak_shed / total_subs,
        reference.assessments.len(),
        shed_report.assessments.len(),
        shed_report.shed.total(),
        refuse_report.shed.reasons().admission_refused,
        shed_report.shed.total() as f64 / total_subs as f64,
        restore_identical,
        json_stable,
    );
    (out, json)
}

fn overload_sweep(ctx: &ReproContext) -> String {
    overload_sweep_with(ctx, OverloadSweepConfig::quick()).0
}

// ------------------------------------------------------ engine-scaling

/// Workload and measurement knobs for [`engine_scaling_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineScalingConfig {
    /// Independent subscriber streams sharing the tap.
    pub subscribers: u64,
    /// Sessions per subscriber.
    pub sessions: usize,
    /// Shard count (fixed across worker counts).
    pub shards: usize,
    /// Simulated tap-spool read latency per shard job, for the
    /// tap-paced regime (`EngineConfig::shard_pacing_micros`).
    pub pacing_micros: u64,
    /// Timing repetitions; the best (minimum) wall time is reported.
    pub reps: usize,
}

impl EngineScalingConfig {
    /// The quick harness point `scripts/bench.sh` records: small enough
    /// to run in seconds, paced hard enough that the tap-read latency
    /// dominates the per-shard compute.
    pub fn quick() -> Self {
        EngineScalingConfig {
            subscribers: 12,
            sessions: 1,
            shards: 32,
            pacing_micros: 15_000,
            reps: 2,
        }
    }
}

/// Throughput of the sharded engine at 1/2/4/8 workers, in two regimes.
///
/// * **compute** — pure CPU: reassembly, feature construction and
///   forest inference with no simulated tap latency. Speedup here is
///   bounded by the machine's core count (a 1-core container honestly
///   reports ~1×).
/// * **tap-paced** — each shard job is charged a fixed simulated
///   tap-spool read ([`EngineConfig::shard_pacing_micros`]) before
///   processing, modelling the I/O-bound deployment the engine is
///   designed for. Reads overlap across workers regardless of core
///   count, so this regime exposes the engine's pipelining headroom
///   even on a small machine.
///
/// Returns the rendered text report and a machine-readable JSON record
/// (the `BENCH_pr3.json` artifact). The headline `speedup_4v1` is the
/// tap-paced one; both regimes are recorded and labelled.
pub fn engine_scaling_with(ctx: &ReproContext, cfg: EngineScalingConfig) -> (String, String) {
    use std::time::Instant;
    use vqoe_core::{
        AssessmentEngine, EncryptedEvalConfig, EncryptedWorld, EngineConfig, QoeMonitor,
    };
    use vqoe_telemetry::{ReassemblyConfig, WeblogEntry};

    let monitor = QoeMonitor {
        stall_model: ctx.stall.model.clone(),
        representation_model: ctx.representation.model.clone(),
        switch_model: ctx.switch.model,
        reassembly: ReassemblyConfig::default(),
    };
    // A multi-subscriber tap, interleaved by timestamp.
    let mut entries: Vec<WeblogEntry> = Vec::new();
    for s in 0..cfg.subscribers {
        let mut wc = EncryptedEvalConfig::paper_default(ctx.scale.seed ^ 0xE561 ^ (s << 8));
        wc.spec.n_sessions = cfg.sessions;
        let mut world = EncryptedWorld::build(&wc).expect("simulated world builds");
        for e in &mut world.entries {
            e.subscriber_id = s;
        }
        entries.extend(world.entries);
    }
    entries.sort_by_key(|e| e.timestamp);

    let workers_axis = [1usize, 2, 4, 8];
    let regimes = [("compute", 0u64), ("tap-paced", cfg.pacing_micros)];

    let mut out = header(
        "engine-scaling",
        "sharded-engine throughput vs worker count",
    );
    out.push_str(&format!(
        "tap: {} entries from {} subscribers over {} shards; best of {} reps; \
         machine parallelism {}\n\n",
        entries.len(),
        cfg.subscribers,
        cfg.shards,
        cfg.reps,
        std::thread::available_parallelism().map_or(0, |p| p.get()),
    ));

    let mut t = Table::new(vec![
        "regime",
        "workers",
        "wall secs",
        "sessions/s",
        "speedup vs 1",
    ]);
    let mut json_regimes = String::new();
    let mut headline_speedup = 0.0f64;
    let mut sessions_assessed = 0usize;
    let mut identical = true;
    for (regime, pacing) in regimes {
        let mut reference: Option<vqoe_core::IngestReport> = None;
        let mut secs_at: Vec<(usize, f64)> = Vec::new();
        for &workers in &workers_axis {
            let engine_cfg = EngineConfig {
                workers,
                shards: cfg.shards,
                shard_pacing_micros: pacing,
                ..EngineConfig::default()
            };
            let engine = AssessmentEngine::new(&monitor, engine_cfg);
            let mut best = f64::INFINITY;
            for _ in 0..cfg.reps.max(1) {
                let t0 = Instant::now();
                let report = engine.assess(&entries);
                best = best.min(t0.elapsed().as_secs_f64());
                sessions_assessed = report.assessments.len();
                match &reference {
                    None => reference = Some(report),
                    Some(r) => identical &= *r == report,
                }
            }
            secs_at.push((workers, best));
        }
        let base = secs_at[0].1;
        let mut json_workers = String::new();
        for &(workers, secs) in &secs_at {
            let speedup = base / secs;
            t.row(vec![
                regime.to_string(),
                workers.to_string(),
                format!("{secs:.3}"),
                format!("{:.1}", sessions_assessed as f64 / secs),
                format!("{speedup:.2}x"),
            ]);
            if !json_workers.is_empty() {
                json_workers.push_str(", ");
            }
            json_workers.push_str(&format!(
                "\"{workers}\": {{\"secs\": {secs:.6}, \"sessions_per_sec\": {:.3}, \
                 \"speedup_vs_1\": {speedup:.4}}}",
                sessions_assessed as f64 / secs
            ));
        }
        let speedup_4v1 = base
            / secs_at
                .iter()
                .find(|&&(w, _)| w == 4)
                .expect("4-worker point")
                .1;
        if regime == "tap-paced" {
            headline_speedup = speedup_4v1;
        }
        if !json_regimes.is_empty() {
            json_regimes.push_str(", ");
        }
        json_regimes.push_str(&format!(
            "\"{}\": {{\"pacing_micros\": {pacing}, \"workers\": {{{json_workers}}}, \
             \"speedup_4v1\": {speedup_4v1:.4}}}",
            regime.replace('-', "_"),
        ));
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "output across worker counts and regimes",
        "bit-identical",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "tap-paced speedup, 4 workers vs 1",
        ">= 2x",
        &format!("{headline_speedup:.2}x"),
    ));
    out.push_str(
        "\nthe compute regime is bounded by physical cores; the tap-paced regime\n\
         overlaps simulated tap reads across workers and is the deployment-\n\
         relevant (I/O-bound) figure. pacing never affects engine output.\n",
    );

    let json = format!(
        "{{\n  \"experiment\": \"engine-scaling\",\n  \"entries\": {},\n  \
         \"sessions_assessed\": {},\n  \"subscribers\": {},\n  \"shards\": {},\n  \
         \"reps\": {},\n  \"machine_parallelism\": {},\n  \"bit_identical\": {},\n  \
         \"regimes\": {{{json_regimes}}},\n  \"speedup_4v1\": {headline_speedup:.4}\n}}\n",
        entries.len(),
        sessions_assessed,
        cfg.subscribers,
        cfg.shards,
        cfg.reps,
        std::thread::available_parallelism().map_or(0, |p| p.get()),
        identical,
    );
    (out, json)
}

fn engine_scaling(ctx: &ReproContext) -> String {
    engine_scaling_with(ctx, EngineScalingConfig::quick()).0
}

// ------------------------------------------------------- obs-overhead

/// Workload and measurement knobs for [`obs_overhead_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsOverheadConfig {
    /// Independent subscriber streams sharing the tap.
    pub subscribers: u64,
    /// Sessions per subscriber.
    pub sessions: usize,
    /// Shard count.
    pub shards: usize,
    /// Worker count for the timed runs.
    pub workers: usize,
    /// Timing repetitions; the best (minimum) wall time per variant is
    /// reported.
    pub reps: usize,
}

impl ObsOverheadConfig {
    /// The harness point `scripts/bench.sh` records: the compute
    /// regime (no simulated tap pacing), so any metric-recording cost
    /// lands directly on the measured wall time instead of hiding
    /// behind simulated I/O, and a single worker, so a small container
    /// measures recording cost rather than scheduler jitter.
    pub fn quick() -> Self {
        ObsOverheadConfig {
            subscribers: 12,
            sessions: 4,
            shards: 32,
            workers: 1,
            reps: 7,
        }
    }
}

/// Cost and fidelity of the `vqoe-obs` instrumentation layer.
///
/// Runs the same multi-subscriber tap through the sharded engine twice
/// per repetition — once bare, once with [`PipelineMetrics`] attached —
/// and checks three things:
///
/// 1. **bit-identity** — the instrumented engine's `IngestReport`
///    equals the bare engine's, field for field. Observability must
///    never perturb assessments.
/// 2. **snapshot determinism** — the stable-class JSON snapshot is
///    byte-identical across repeated instrumented runs *and* across
///    worker counts (1 vs `cfg.workers`).
/// 3. **overhead** — best-of-reps instrumented wall time vs bare wall
///    time, in the compute regime, against the `< 2%` budget.
///
/// Each instrumented run is also wrapped in a [`crate::WallClock`]
/// stage span feeding a `Runtime`-class histogram — the one sanctioned
/// wall-clock `Clock` impl outside the CLI — which shows up in the
/// Prometheus rendering but is excluded from the JSON snapshot (else
/// determinism would be impossible).
pub fn obs_overhead_with(ctx: &ReproContext, cfg: ObsOverheadConfig) -> (String, String) {
    use std::time::Instant;
    use vqoe_core::{
        AssessmentEngine, EncryptedEvalConfig, EncryptedWorld, EngineConfig, PipelineMetrics,
        QoeMonitor,
    };
    use vqoe_obs::{buckets, MetricClass, Registry, StageSpan};
    use vqoe_telemetry::{ReassemblyConfig, WeblogEntry};

    let monitor = QoeMonitor {
        stall_model: ctx.stall.model.clone(),
        representation_model: ctx.representation.model.clone(),
        switch_model: ctx.switch.model,
        reassembly: ReassemblyConfig::default(),
    };
    // The same multi-subscriber tap engine-scaling uses, interleaved by
    // timestamp.
    let mut entries: Vec<WeblogEntry> = Vec::new();
    for s in 0..cfg.subscribers {
        let mut wc = EncryptedEvalConfig::paper_default(ctx.scale.seed ^ 0xE561 ^ (s << 8));
        wc.spec.n_sessions = cfg.sessions;
        let mut world = EncryptedWorld::build(&wc).expect("simulated world builds");
        for e in &mut world.entries {
            e.subscriber_id = s;
        }
        entries.extend(world.entries);
    }
    entries.sort_by_key(|e| e.timestamp);

    let engine_cfg = EngineConfig {
        workers: cfg.workers,
        shards: cfg.shards,
        shard_pacing_micros: 0,
        ..EngineConfig::default()
    };

    // One untimed warm-up pass, then bare and instrumented runs
    // interleaved within each rep so neither variant systematically
    // enjoys warmer caches; best (minimum) time per variant wins.
    let bare_engine = AssessmentEngine::new(&monitor, engine_cfg);
    let reference = bare_engine.assess(&entries);

    let wall = crate::WallClock::new();
    let mut bare_secs = f64::INFINITY;
    let mut instrumented_secs = f64::INFINITY;
    let mut bit_identical = true;
    let mut snapshots: Vec<String> = Vec::new();
    let mut prom_series = 0usize;
    for _ in 0..cfg.reps.max(1) {
        let t0 = Instant::now();
        let bare_report = bare_engine.assess(&entries);
        bare_secs = bare_secs.min(t0.elapsed().as_secs_f64());
        bit_identical &= bare_report == reference;

        // Fresh registry per instrumented run so each snapshot is a
        // full, independent record of one pass over the tap.
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        let span_hist = registry.histogram(
            "vqoe_bench_obs_overhead_run_wall_micros",
            "wall time of one instrumented engine pass",
            MetricClass::Runtime,
            buckets::STAGE_MICROS,
        );
        let engine = AssessmentEngine::new(&monitor, engine_cfg).with_metrics(metrics);
        let span = StageSpan::start(&wall, &span_hist);
        let t0 = Instant::now();
        let report = engine.assess(&entries);
        instrumented_secs = instrumented_secs.min(t0.elapsed().as_secs_f64());
        span.finish();
        bit_identical &= report == reference;
        snapshots.push(registry.snapshot_json());
        prom_series = registry
            .render_prometheus()
            .lines()
            .filter(|l| l.starts_with("vqoe_"))
            .count();
    }
    // One more instrumented pass at a different worker count: the
    // stable-class snapshot must not care how the work was scheduled.
    {
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        let other = EngineConfig {
            workers: cfg.workers + 2,
            ..engine_cfg
        };
        let engine = AssessmentEngine::new(&monitor, other).with_metrics(metrics);
        let report = engine.assess(&entries);
        bit_identical &= report == reference;
        snapshots.push(registry.snapshot_json());
    }
    let snapshot_deterministic = snapshots.windows(2).all(|w| w[0] == w[1]);
    let overhead_pct = (instrumented_secs - bare_secs) / bare_secs * 100.0;

    let mut out = header("obs-overhead", "cost of the vqoe-obs metrics layer");
    out.push_str(&format!(
        "tap: {} entries from {} subscribers over {} shards; {} workers; \
         best of {} reps, compute regime (no tap pacing)\n\n",
        entries.len(),
        cfg.subscribers,
        cfg.shards,
        cfg.workers,
        cfg.reps,
    ));
    let mut t = Table::new(vec!["variant", "wall secs", "sessions/s"]);
    for (variant, secs) in [("bare", bare_secs), ("instrumented", instrumented_secs)] {
        t.row(vec![
            variant.to_string(),
            format!("{secs:.4}"),
            format!("{:.1}", reference.assessments.len() as f64 / secs),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&format!(
        "registry after one pass: {prom_series} Prometheus sample lines; \
         stable-class JSON snapshot compared across {} runs\n\n",
        snapshots.len(),
    ));
    out.push_str(&compare_line(
        "instrumented vs bare assessments",
        "bit-identical",
        if bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "JSON snapshot across runs and worker counts",
        "byte-identical",
        if snapshot_deterministic {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "metrics overhead (compute regime)",
        "< 2%",
        &format!("{overhead_pct:.2}%"),
    ));
    out.push_str(
        "\nstable-class metrics are recorded as commutative per-shard deltas,\n\
         so the snapshot is a property of the tap, not of the schedule; the\n\
         wall-clock span histogram is runtime-class and stays out of it.\n",
    );

    let json = format!(
        "{{\n  \"experiment\": \"obs-overhead\",\n  \"entries\": {},\n  \
         \"sessions_assessed\": {},\n  \"subscribers\": {},\n  \"shards\": {},\n  \
         \"workers\": {},\n  \"reps\": {},\n  \"base_secs\": {bare_secs:.6},\n  \
         \"instrumented_secs\": {instrumented_secs:.6},\n  \
         \"overhead_pct\": {overhead_pct:.4},\n  \"bit_identical\": {bit_identical},\n  \
         \"snapshot_deterministic\": {snapshot_deterministic}\n}}\n",
        entries.len(),
        reference.assessments.len(),
        cfg.subscribers,
        cfg.shards,
        cfg.workers,
        cfg.reps,
    );
    (out, json)
}

fn obs_overhead(ctx: &ReproContext) -> String {
    obs_overhead_with(ctx, ObsOverheadConfig::quick()).0
}

// ----------------------------------------------------- trace-overhead

/// Workload and measurement knobs for [`trace_overhead_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOverheadConfig {
    /// Independent subscriber streams sharing the tap.
    pub subscribers: u64,
    /// Sessions per subscriber.
    pub sessions: usize,
    /// Shard count.
    pub shards: usize,
    /// Worker count for the timed runs.
    pub workers: usize,
    /// Timing repetitions; the best (minimum) wall time per variant is
    /// reported.
    pub reps: usize,
}

impl TraceOverheadConfig {
    /// The harness point `scripts/bench.sh` records: same compute
    /// regime and single-worker rationale as
    /// [`ObsOverheadConfig::quick`] — span recording cost must land on
    /// the measured wall time, not hide behind pacing or scheduling.
    pub fn quick() -> Self {
        TraceOverheadConfig {
            subscribers: 12,
            sessions: 4,
            shards: 32,
            workers: 1,
            reps: 7,
        }
    }
}

/// Cost and fidelity of the deterministic session-tracing layer.
///
/// Runs the same multi-subscriber tap through the sharded engine twice
/// per repetition — once bare (`assess`), once traced
/// (`assess_traced`) — and checks three things:
///
/// 1. **bit-identity** — the traced engine's `IngestReport` equals the
///    bare engine's. Tracing must never perturb assessments.
/// 2. **trace determinism** — the Chrome trace-event export is
///    byte-identical across repeated traced runs *and* across worker
///    counts (`cfg.workers` vs `cfg.workers + 2`): span events are
///    keyed by emission key and merged in key order, so the schedule
///    cannot leak into the artifact.
/// 3. **overhead** — best-of-reps traced wall time vs bare wall time,
///    in the compute regime, against the `< 2%` budget.
pub fn trace_overhead_with(ctx: &ReproContext, cfg: TraceOverheadConfig) -> (String, String) {
    use std::time::Instant;
    use vqoe_core::{
        AssessmentEngine, EncryptedEvalConfig, EncryptedWorld, EngineConfig, QoeMonitor,
    };
    use vqoe_obs::TraceConfig;
    use vqoe_telemetry::{ReassemblyConfig, WeblogEntry};

    let monitor = QoeMonitor {
        stall_model: ctx.stall.model.clone(),
        representation_model: ctx.representation.model.clone(),
        switch_model: ctx.switch.model,
        reassembly: ReassemblyConfig::default(),
    };
    let mut entries: Vec<WeblogEntry> = Vec::new();
    for s in 0..cfg.subscribers {
        let mut wc = EncryptedEvalConfig::paper_default(ctx.scale.seed ^ 0x7ACE ^ (s << 8));
        wc.spec.n_sessions = cfg.sessions;
        let mut world = EncryptedWorld::build(&wc).expect("simulated world builds");
        for e in &mut world.entries {
            e.subscriber_id = s;
        }
        entries.extend(world.entries);
    }
    entries.sort_by_key(|e| e.timestamp);

    let engine_cfg = EngineConfig {
        workers: cfg.workers,
        shards: cfg.shards,
        shard_pacing_micros: 0,
        ..EngineConfig::default()
    };

    // Warm-up, then bare and traced passes interleaved per rep so
    // neither variant systematically enjoys warmer caches.
    let engine = AssessmentEngine::new(&monitor, engine_cfg);
    let reference = engine.assess(&entries);

    let mut bare_secs = f64::INFINITY;
    let mut traced_secs = f64::INFINITY;
    let mut bit_identical = true;
    let mut exports: Vec<String> = Vec::new();
    let mut spans = 0u64;
    let mut dropped = 0u64;
    for _ in 0..cfg.reps.max(1) {
        let t0 = Instant::now();
        let bare_report = engine.assess(&entries);
        bare_secs = bare_secs.min(t0.elapsed().as_secs_f64());
        bit_identical &= bare_report == reference;

        let t0 = Instant::now();
        let (report, trace) = engine.assess_traced(&entries, TraceConfig::default());
        traced_secs = traced_secs.min(t0.elapsed().as_secs_f64());
        bit_identical &= report == reference;
        spans = trace.events().len() as u64;
        dropped = trace.dropped();
        exports.push(trace.to_chrome_json());
    }
    // One traced pass at a different worker count: the export must not
    // care how the work was scheduled.
    {
        let other = EngineConfig {
            workers: cfg.workers + 2,
            ..engine_cfg
        };
        let engine = AssessmentEngine::new(&monitor, other);
        let (report, trace) = engine.assess_traced(&entries, TraceConfig::default());
        bit_identical &= report == reference;
        exports.push(trace.to_chrome_json());
    }
    let trace_deterministic = exports.windows(2).all(|w| w[0] == w[1]);
    let overhead_pct = (traced_secs - bare_secs) / bare_secs * 100.0;
    let export_bytes = exports.first().map(String::len).unwrap_or(0);

    let mut out = header("trace-overhead", "cost of deterministic session tracing");
    out.push_str(&format!(
        "tap: {} entries from {} subscribers over {} shards; {} workers; \
         best of {} reps, compute regime (no tap pacing)\n\n",
        entries.len(),
        cfg.subscribers,
        cfg.shards,
        cfg.workers,
        cfg.reps,
    ));
    let mut t = Table::new(vec!["variant", "wall secs", "sessions/s"]);
    for (variant, secs) in [("bare", bare_secs), ("traced", traced_secs)] {
        t.row(vec![
            variant.to_string(),
            format!("{secs:.4}"),
            format!("{:.1}", reference.assessments.len() as f64 / secs),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&format!(
        "trace after one pass: {spans} span events ({dropped} dropped), \
         {export_bytes} bytes of Chrome trace JSON; export compared \
         across {} runs\n\n",
        exports.len(),
    ));
    out.push_str(&compare_line(
        "traced vs bare assessments",
        "bit-identical",
        if bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "Chrome export across runs and worker counts",
        "byte-identical",
        if trace_deterministic {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "tracing overhead (compute regime)",
        "< 2%",
        &format!("{overhead_pct:.2}%"),
    ));
    out.push_str(
        "\nspan events carry the session's emission key plus a sequence\n\
         number and the reducer sorts the merged shard vectors by (key,\n\
         seq), so the assembled trace is a property of the tap, not of\n\
         the schedule; per-shard sinks are bounded, and overflow is\n\
         counted instead of reallocating on the hot path.\n",
    );

    let json = format!(
        "{{\n  \"experiment\": \"trace-overhead\",\n  \"entries\": {},\n  \
         \"sessions_assessed\": {},\n  \"subscribers\": {},\n  \"shards\": {},\n  \
         \"workers\": {},\n  \"reps\": {},\n  \"span_events\": {spans},\n  \
         \"spans_dropped\": {dropped},\n  \"export_bytes\": {export_bytes},\n  \
         \"base_secs\": {bare_secs:.6},\n  \"traced_secs\": {traced_secs:.6},\n  \
         \"overhead_pct\": {overhead_pct:.4},\n  \"bit_identical\": {bit_identical},\n  \
         \"trace_deterministic\": {trace_deterministic}\n}}\n",
        entries.len(),
        reference.assessments.len(),
        cfg.subscribers,
        cfg.shards,
        cfg.workers,
        cfg.reps,
    );
    (out, json)
}

fn trace_overhead(ctx: &ReproContext) -> String {
    trace_overhead_with(ctx, TraceOverheadConfig::quick()).0
}

// ------------------------------------------------------ train-scaling

/// Workload and measurement knobs for [`train_scaling_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainScalingConfig {
    /// Sessions drawn from the context's cleartext corpus for the
    /// training workload.
    pub sessions: usize,
    /// Trees in the timed forest fits.
    pub n_trees: usize,
    /// Simulated per-job feature-store read latency for the paced
    /// regime ([`TrainConfig::job_pacing_micros`]).
    pub pacing_micros: u64,
    /// Timing repetitions; the best (minimum) wall time is reported.
    pub reps: usize,
}

impl TrainScalingConfig {
    /// The quick harness point `scripts/bench.sh` records: small enough
    /// to run in seconds, paced hard enough that the simulated
    /// feature-store read dominates the per-tree compute.
    pub fn quick() -> Self {
        TrainScalingConfig {
            sessions: 300,
            n_trees: 48,
            pacing_micros: 4_000,
            reps: 2,
        }
    }
}

/// Training-path scaling: forest fit and cross-validation at 1/2/4/8
/// workers, in two regimes, plus the bit-identity proof.
///
/// * **identity** — the fitted forest and the full 10-fold CV report are
///   compared against the sequential reference at workers ∈ {1, 2, 7}.
///   Determinism is the training fan-out's contract
///   ([`vqoe_ml::par::run_indexed`] reduces in job-index order), so the
///   expectation is byte-identity, not approximate agreement.
/// * **compute** — pure CPU tree fitting. Speedup is bounded by the
///   machine's core count (a 1-core container honestly reports ~1×).
/// * **paced** — each tree job is charged a fixed simulated
///   feature-store read ([`TrainConfig::job_pacing_micros`]) before
///   fitting, modelling an I/O-paced trainer. Reads overlap across
///   workers regardless of core count, so this regime exposes the
///   fan-out's pipelining headroom even on a small machine.
///
/// Returns the rendered text report and a machine-readable JSON record
/// (the `BENCH_pr5.json` artifact). The headline `speedup_4v1` is the
/// paced one; both regimes are recorded and labelled.
pub fn train_scaling_with(ctx: &ReproContext, cfg: TrainScalingConfig) -> (String, String) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;
    use vqoe_core::stall_pipeline::CV_FOLDS;
    use vqoe_ml::{cross_validate_with, RandomForest, TrainConfig};

    // The workload: the stall detector's own reduced feature space over
    // a slice of the cleartext corpus, balanced exactly as the training
    // pipeline balances it.
    let sessions = cfg.sessions.min(ctx.cleartext.len());
    let full = vqoe_features::build_stall_dataset(&ctx.cleartext[..sessions]);
    let reduced = full.select_features(&ctx.stall.model.selected_indices);
    let mut rng = StdRng::seed_from_u64(ctx.scale.seed);
    let train_set = reduced.balanced_downsample(&mut rng);
    let forest_cfg = ForestConfig {
        n_trees: cfg.n_trees,
        ..ForestConfig::default()
    };

    // Identity phase: forest fit and cross-validation at several worker
    // counts must equal the sequential reference, field for field.
    let ref_forest = RandomForest::fit_with(&train_set, forest_cfg, TrainConfig::sequential());
    let ref_cv = cross_validate_with(
        &reduced,
        CV_FOLDS,
        forest_cfg,
        true,
        ctx.scale.seed,
        TrainConfig::sequential(),
    );
    let mut identical = true;
    for workers in [1usize, 2, 7] {
        let tc = TrainConfig::with_workers(workers);
        identical &= RandomForest::fit_with(&train_set, forest_cfg, tc) == ref_forest;
        identical &=
            cross_validate_with(&reduced, CV_FOLDS, forest_cfg, true, ctx.scale.seed, tc) == ref_cv;
    }

    let workers_axis = [1usize, 2, 4, 8];
    let regimes = [("compute", 0u64), ("paced", cfg.pacing_micros)];

    let mut out = header("train-scaling", "training-path throughput vs worker count");
    out.push_str(&format!(
        "workload: {} rows × {} features (balanced to {} rows for fitting), \
         {} trees; best of {} reps; machine parallelism {}\n\n",
        reduced.n_rows(),
        reduced.n_features(),
        train_set.n_rows(),
        cfg.n_trees,
        cfg.reps,
        std::thread::available_parallelism().map_or(0, |p| p.get()),
    ));

    let mut t = Table::new(vec![
        "regime",
        "workers",
        "wall secs",
        "trees/s",
        "speedup vs 1",
    ]);
    let mut json_regimes = String::new();
    let mut headline_speedup = 0.0f64;
    for (regime, pacing) in regimes {
        let mut secs_at: Vec<(usize, f64)> = Vec::new();
        for &workers in &workers_axis {
            let tc = TrainConfig {
                workers,
                job_pacing_micros: pacing,
            };
            let mut best = f64::INFINITY;
            for _ in 0..cfg.reps.max(1) {
                let t0 = Instant::now();
                let forest = RandomForest::fit_with(&train_set, forest_cfg, tc);
                best = best.min(t0.elapsed().as_secs_f64());
                // Pacing and worker count must never leak into the model.
                identical &= forest == ref_forest;
            }
            secs_at.push((workers, best));
        }
        let base = secs_at[0].1;
        let mut json_workers = String::new();
        for &(workers, secs) in &secs_at {
            let speedup = base / secs;
            t.row(vec![
                regime.to_string(),
                workers.to_string(),
                format!("{secs:.3}"),
                format!("{:.1}", cfg.n_trees as f64 / secs),
                format!("{speedup:.2}x"),
            ]);
            if !json_workers.is_empty() {
                json_workers.push_str(", ");
            }
            json_workers.push_str(&format!(
                "\"{workers}\": {{\"secs\": {secs:.6}, \"trees_per_sec\": {:.3}, \
                 \"speedup_vs_1\": {speedup:.4}}}",
                cfg.n_trees as f64 / secs
            ));
        }
        let speedup_4v1 = base
            / secs_at
                .iter()
                .find(|&&(w, _)| w == 4)
                .expect("4-worker point")
                .1;
        if regime == "paced" {
            headline_speedup = speedup_4v1;
        }
        if !json_regimes.is_empty() {
            json_regimes.push_str(", ");
        }
        json_regimes.push_str(&format!(
            "\"{regime}\": {{\"pacing_micros\": {pacing}, \"workers\": {{{json_workers}}}, \
             \"speedup_4v1\": {speedup_4v1:.4}}}",
        ));
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "fitted forest & CV report across worker counts",
        "byte-identical",
        if identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "paced fit speedup, 4 workers vs 1",
        ">= 1.8x",
        &format!("{headline_speedup:.2}x"),
    ));
    out.push_str(
        "\nthe compute regime is bounded by physical cores; the paced regime\n\
         overlaps simulated feature-store reads across workers and is the\n\
         I/O-bound figure. pacing never affects the fitted model.\n",
    );

    let json = format!(
        "{{\n  \"experiment\": \"train-scaling\",\n  \"rows\": {},\n  \
         \"features\": {},\n  \"balanced_rows\": {},\n  \"n_trees\": {},\n  \
         \"cv_folds\": {CV_FOLDS},\n  \"reps\": {},\n  \
         \"machine_parallelism\": {},\n  \"bit_identical\": {},\n  \
         \"regimes\": {{{json_regimes}}},\n  \"speedup_4v1\": {headline_speedup:.4}\n}}\n",
        reduced.n_rows(),
        reduced.n_features(),
        train_set.n_rows(),
        cfg.n_trees,
        cfg.reps,
        std::thread::available_parallelism().map_or(0, |p| p.get()),
        identical,
    );
    (out, json)
}

fn train_scaling(ctx: &ReproContext) -> String {
    train_scaling_with(ctx, TrainScalingConfig::quick()).0
}

// -------------------------------------------------------- ingest-bench

/// Workload and measurement knobs for [`ingest_bench_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestBenchConfig {
    /// Independent subscriber streams sharing the tap.
    pub subscribers: u64,
    /// Sessions per subscriber.
    pub sessions: usize,
    /// Timing repetitions; the best (minimum) wall time per variant is
    /// reported.
    pub reps: usize,
}

impl IngestBenchConfig {
    /// The harness point `scripts/bench.sh` records (`BENCH_pr8.json`).
    pub fn quick() -> Self {
        IngestBenchConfig {
            subscribers: 12,
            sessions: 4,
            reps: 7,
        }
    }
}

/// JSON vs binary weblog replay through the subscription ingest
/// pipeline.
///
/// Serializes one multi-subscriber tap both ways — JSONL (the archival
/// interchange format, serde per line) and the packed
/// [`vqoe_telemetry::BinaryCorpus`] (length-prefixed records, zero-copy
/// iteration) — then measures, best-of-reps:
///
/// 1. **decode** — bytes back to `Vec<WeblogEntry>`. This is the step
///    the binary format exists for; its speedup is the headline
///    `replay_speedup` (budget: ≥ 3x).
/// 2. **end-to-end** — decode plus a full [`IngestPipeline::assess`]
///    pass, the operator-facing replay figure (model inference
///    dominates, so this ratio is closer to 1).
///
/// Identity is asserted, not assumed: the packed corpus must decode to
/// the exact entry vector, and the [`IngestReport`]s from JSON-decoded
/// and binary-decoded replay — plus the deprecated
/// `QoeMonitor::assess_corpus` shim — must be bit-identical at 1, 2
/// and 7 workers.
///
/// [`IngestPipeline::assess`]: vqoe_core::IngestPipeline
/// [`IngestReport`]: vqoe_core::IngestReport
pub fn ingest_bench_with(ctx: &ReproContext, cfg: IngestBenchConfig) -> (String, String) {
    use std::time::Instant;
    use vqoe_core::{
        EncryptedEvalConfig, EncryptedWorld, EngineConfig, IngestPipeline, QoeMonitor,
    };
    use vqoe_telemetry::{BinaryCorpus, ReassemblyConfig, WeblogEntry};

    let monitor = QoeMonitor {
        stall_model: ctx.stall.model.clone(),
        representation_model: ctx.representation.model.clone(),
        switch_model: ctx.switch.model,
        reassembly: ReassemblyConfig::default(),
    };
    // The same multi-subscriber tap engine-scaling uses, interleaved by
    // timestamp.
    let mut entries: Vec<WeblogEntry> = Vec::new();
    for s in 0..cfg.subscribers {
        let mut wc = EncryptedEvalConfig::paper_default(ctx.scale.seed ^ 0xE561 ^ (s << 8));
        wc.spec.n_sessions = cfg.sessions;
        let mut world = EncryptedWorld::build(&wc).expect("simulated world builds");
        for e in &mut world.entries {
            e.subscriber_id = s;
        }
        entries.extend(world.entries);
    }
    entries.sort_by_key(|e| e.timestamp);

    // Both encodings of the same tap, in memory (no disk noise).
    let jsonl: String = entries
        .iter()
        .map(|e| {
            let mut line = serde_json::to_string(e).expect("weblog entries serialize");
            line.push('\n');
            line
        })
        .collect();
    let corpus = BinaryCorpus::pack(&entries);

    let decode_jsonl = |text: &str| -> Vec<WeblogEntry> {
        text.lines()
            .map(|l| serde_json::from_str(l).expect("weblog JSONL parses"))
            .collect()
    };
    let decode_binary = |c: &BinaryCorpus| c.decode_all().expect("packed corpus decodes");

    // Identity first, timing second: the binary round trip must be
    // exact, and the replay reports must be bit-identical on every
    // path at every worker count.
    let mut identical = decode_binary(&corpus) == entries;
    let pipeline = IngestPipeline::new(&monitor);
    let mut sessions_assessed = 0usize;
    for workers in [1usize, 2, 7] {
        let engine_cfg = EngineConfig {
            workers,
            ..EngineConfig::default()
        };
        let p = pipeline.clone().with_engine(engine_cfg);
        let from_json = p.assess(&decode_jsonl(&jsonl));
        let from_binary = p.assess_binary(&corpus).expect("packed corpus replays");
        #[allow(deprecated)]
        let from_shim = monitor.assess_corpus(&entries, &engine_cfg);
        identical &= from_json == from_binary && from_json == from_shim;
        sessions_assessed = from_json.assessments.len();
    }

    // Timed phases, best of reps. Decode is the format's own cost;
    // end-to-end adds the (format-independent) assessment pass.
    let mut json_decode = f64::INFINITY;
    let mut bin_decode = f64::INFINITY;
    let mut json_e2e = f64::INFINITY;
    let mut bin_e2e = f64::INFINITY;
    for _ in 0..cfg.reps.max(1) {
        let t0 = Instant::now();
        let decoded = decode_jsonl(&jsonl);
        json_decode = json_decode.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let _ = pipeline.assess(&decoded);
        let assess_secs = t0.elapsed().as_secs_f64();
        json_e2e = json_e2e.min(json_decode + assess_secs);

        let t0 = Instant::now();
        let decoded = decode_binary(&corpus);
        bin_decode = bin_decode.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let _ = pipeline.assess(&decoded);
        let assess_secs = t0.elapsed().as_secs_f64();
        bin_e2e = bin_e2e.min(bin_decode + assess_secs);
    }
    let replay_speedup = json_decode / bin_decode;
    let e2e_speedup = json_e2e / bin_e2e;
    let size_ratio = jsonl.len() as f64 / corpus.as_bytes().len().max(1) as f64;

    let mut out = header(
        "ingest-bench",
        "JSON vs binary weblog replay through the subscription pipeline",
    );
    out.push_str(&format!(
        "tap: {} entries from {} subscribers, {} sessions assessed; best of {} reps\n\
         encodings: JSONL {} bytes, packed binary {} bytes ({size_ratio:.2}x smaller)\n\n",
        entries.len(),
        cfg.subscribers,
        sessions_assessed,
        cfg.reps,
        jsonl.len(),
        corpus.as_bytes().len(),
    ));
    let mut t = Table::new(vec!["phase", "JSONL secs", "binary secs", "speedup"]);
    t.row(vec![
        "decode (replay hot path)".to_string(),
        format!("{json_decode:.4}"),
        format!("{bin_decode:.4}"),
        format!("{replay_speedup:.2}x"),
    ]);
    t.row(vec![
        "decode + assess (end-to-end)".to_string(),
        format!("{json_e2e:.4}"),
        format!("{bin_e2e:.4}"),
        format!("{e2e_speedup:.2}x"),
    ]);
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&compare_line(
        "reports across encodings, shim and workers 1/2/7",
        "bit-identical",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    ));
    out.push_str(&compare_line(
        "binary-over-JSON replay (decode) speedup",
        ">= 3x",
        &format!("{replay_speedup:.2}x"),
    ));
    out.push_str(
        "\nthe decode phase is what the binary format accelerates (no serde on\n\
         the hot path); the end-to-end figure folds in the format-independent\n\
         assessment pass. encoding never affects the report.\n",
    );

    let json = format!(
        "{{\n  \"experiment\": \"ingest-bench\",\n  \"entries\": {},\n  \
         \"sessions_assessed\": {},\n  \"subscribers\": {},\n  \"reps\": {},\n  \
         \"jsonl_bytes\": {},\n  \"binary_bytes\": {},\n  \"size_ratio\": {size_ratio:.4},\n  \
         \"bit_identical\": {},\n  \
         \"json_decode_secs\": {json_decode:.6},\n  \"binary_decode_secs\": {bin_decode:.6},\n  \
         \"json_e2e_secs\": {json_e2e:.6},\n  \"binary_e2e_secs\": {bin_e2e:.6},\n  \
         \"e2e_speedup\": {e2e_speedup:.4},\n  \"replay_speedup\": {replay_speedup:.4}\n}}\n",
        entries.len(),
        sessions_assessed,
        cfg.subscribers,
        cfg.reps,
        jsonl.len(),
        corpus.as_bytes().len(),
        identical,
    );
    (out, json)
}

fn ingest_bench(ctx: &ReproContext) -> String {
    ingest_bench_with(ctx, IngestBenchConfig::quick()).0
}

// -------------------------------------------------- subscriber-scaling

/// Workload knobs for [`subscriber_scaling_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriberScalingConfig {
    /// Concurrent-subscriber ladder; one measured point each.
    pub subscriber_counts: Vec<usize>,
    /// Exactness cap forced onto the reassembler. The production
    /// default (`vqoe_telemetry::EXACT_ENTRY_CAP` = 4096) is deliberate
    /// headroom; the harness pins it low so the long cohort actually
    /// exercises the sketch-spill path.
    pub exact_entry_cap: usize,
    /// Media chunks in a short (under-cap, exact) session.
    pub short_chunks: usize,
    /// Media chunks in a long (spilling, sketched) session.
    pub long_chunks: usize,
    /// Every `long_every`-th subscriber plays a long session.
    pub long_every: usize,
}

impl SubscriberScalingConfig {
    /// The 100k–1M ladder `scripts/bench.sh` records (`BENCH_pr10.json`).
    pub fn quick() -> Self {
        SubscriberScalingConfig {
            subscriber_counts: vec![100_000, 300_000, 1_000_000],
            exact_entry_cap: 64,
            short_chunks: 4,
            long_chunks: 512,
            long_every: 64,
        }
    }

    /// The 10k single point `scripts/check.sh` runs behind the soak
    /// gate (also what `repro subscriber-scaling --smoke` uses).
    pub fn smoke() -> Self {
        SubscriberScalingConfig {
            subscriber_counts: vec![10_000],
            ..SubscriberScalingConfig::quick()
        }
    }
}

/// One measured ladder point of [`subscriber_scaling_with`].
struct ScalePoint {
    subscribers: usize,
    entries: u64,
    sessions: usize,
    elapsed_secs: f64,
    bytes_per_subscriber: u64,
    sketched: usize,
    partial: usize,
    evicted: u64,
    shed: u64,
}

/// Concurrent-subscriber scaling of the streaming [`OnlineAssessor`].
///
/// Every ladder point opens `n` subscribers *simultaneously*: chunks
/// arrive in 2-second waves, round-robin across subscribers, so at the
/// peak all `n` per-subscriber machines are live at once. A fixed
/// fraction of subscribers (1 in `long_every`) plays a session far past
/// the exactness cap — those cross into the ISSUE-10 streaming-digest
/// path and come back `Fidelity::Sketched`; everyone else stays exact.
///
/// Reported per point: sessions/sec (ingest + final drain), peak
/// tracked bytes per subscriber (the memory-bound headline — must stay
/// flat as `n` grows 10x, because per-subscriber state is O(1) in both
/// subscriber count and session length), and the sketch-spill /
/// eviction / partial rates. The counterfactual buffered cost of one
/// long session is printed alongside: past the cap the buffered path
/// grows linearly with session length while the streaming path is the
/// pinned constant (`SPILL_STATE_COST_BYTES` + the capped prefix).
///
/// [`OnlineAssessor`]: vqoe_core::OnlineAssessor
pub fn subscriber_scaling_with(
    ctx: &ReproContext,
    cfg: SubscriberScalingConfig,
) -> (String, String) {
    use vqoe_core::{Fidelity, OnlineAssessor, QoeMonitor};
    use vqoe_player::TransportSummary;
    use vqoe_simnet::time::{Duration as SimDuration, Instant as SimInstant};
    use vqoe_telemetry::{EntryKind, IngestConfig, ReassemblyConfig, WeblogEntry};

    let wave_micros: u64 = 2_000_000; // one chunk per subscriber every 2 s
    let entry = |s: u64, k: usize| -> WeblogEntry {
        WeblogEntry {
            // Waves are 2 s apart per subscriber; the sub-millisecond
            // stagger spreads a wave across subscribers without ever
            // reordering any single subscriber's stream.
            timestamp: SimInstant(k as u64 * wave_micros + (s % 997) * 1_000),
            subscriber_id: s,
            host: "r7---sn-scale.googlevideo.com".to_string(),
            uri: None,
            bytes: 200_000 + ((s + k as u64) % 7) * 10_000,
            duration: SimDuration::from_millis(400 + (k as u64 % 5) * 40),
            transport: TransportSummary {
                rtt_min: 0.020,
                rtt_mean: 0.035,
                rtt_max: 0.060,
                bdp_mean: 80_000.0,
                bif_mean: 30_000.0,
                bif_max: 60_000.0,
                loss_frac: 0.002,
                retx_frac: 0.004,
            },
            encrypted: true,
            kind: EntryKind::MediaChunk,
        }
    };

    let mut points: Vec<ScalePoint> = Vec::new();
    for &n in &cfg.subscriber_counts {
        let monitor = QoeMonitor {
            stall_model: ctx.stall.model.clone(),
            representation_model: ctx.representation.model.clone(),
            switch_model: ctx.switch.model,
            reassembly: ReassemblyConfig {
                exact_entry_cap: cfg.exact_entry_cap,
                ..ReassemblyConfig::default()
            },
        };
        let ingest_cfg = IngestConfig {
            max_open_subscribers: n,
            ..IngestConfig::default()
        };
        let mut online = OnlineAssessor::with_config(monitor, ingest_cfg);
        let t0 = std::time::Instant::now();
        let mut entries_fed = 0u64;
        let mut tally = (0usize, 0usize, 0usize); // (sessions, sketched, partial)
        let fold = |assessments: Vec<vqoe_core::SessionAssessment>,
                    t: &mut (usize, usize, usize)| {
            for a in assessments {
                t.0 += 1;
                if a.fidelity == Fidelity::Sketched {
                    t.1 += 1;
                }
                if a.partial {
                    t.2 += 1;
                }
            }
        };
        for k in 0..cfg.long_chunks {
            if k < cfg.short_chunks {
                for s in 0..n as u64 {
                    fold(online.ingest(&entry(s, k)), &mut tally);
                    entries_fed += 1;
                }
            } else {
                // Only the long cohort is still playing.
                for s in (0..n as u64).step_by(cfg.long_every) {
                    fold(online.ingest(&entry(s, k)), &mut tally);
                    entries_fed += 1;
                }
            }
        }
        let peak = online.peak_tracked_bytes();
        let report = online.into_report();
        fold(report.assessments, &mut tally);
        let elapsed = t0.elapsed().as_secs_f64();
        points.push(ScalePoint {
            subscribers: n,
            entries: entries_fed,
            sessions: tally.0,
            elapsed_secs: elapsed,
            bytes_per_subscriber: peak / n.max(1) as u64,
            sketched: tally.1,
            partial: tally.2,
            evicted: report.health.sessions_evicted,
            shed: report.health.sessions_shed,
        });
    }

    // The counterfactual: what one long session would have cost the
    // budget had every chunk stayed buffered, vs the streaming bound.
    let per_entry = entry(0, 0).tracked_cost();
    let buffered_long = cfg.long_chunks as u64 * per_entry;
    let streaming_long =
        cfg.exact_entry_cap as u64 * per_entry + vqoe_telemetry::SPILL_STATE_COST_BYTES;

    let flatness = {
        let bpses: Vec<u64> = points.iter().map(|p| p.bytes_per_subscriber).collect();
        let max = bpses.iter().copied().max().unwrap_or(1).max(1);
        let min = bpses.iter().copied().min().unwrap_or(1).max(1);
        max as f64 / min as f64
    };

    let mut out = header(
        "subscriber-scaling",
        "streaming per-subscriber state at 100k-1M concurrent subscribers",
    );
    out.push_str(&format!(
        "every point holds all subscribers open at once; 1 in {} plays a\n\
         {}-chunk session past the exactness cap ({}) and degrades to the\n\
         sketched tier; the rest stay exact at {} chunks\n\n",
        cfg.long_every, cfg.long_chunks, cfg.exact_entry_cap, cfg.short_chunks,
    ));
    let mut t = Table::new(vec![
        "subscribers",
        "entries",
        "sessions",
        "sessions/sec",
        "bytes/subscriber",
        "sketched %",
        "evicted",
        "partial %",
    ]);
    for p in &points {
        t.row(vec![
            format!("{}", p.subscribers),
            format!("{}", p.entries),
            format!("{}", p.sessions),
            format!("{:.0}", p.sessions as f64 / p.elapsed_secs.max(1e-9)),
            format!("{}", p.bytes_per_subscriber),
            format!(
                "{:.2}",
                100.0 * p.sketched as f64 / p.sessions.max(1) as f64
            ),
            format!("{}", p.evicted + p.shed),
            format!("{:.2}", 100.0 * p.partial as f64 / p.sessions.max(1) as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&format!(
        "one {}-chunk session, per-subscriber budget cost:\n  \
         buffered path (pre-ISSUE-10): {} bytes (grows with session length)\n  \
         streaming path:              {} bytes (constant for any length)\n\n",
        cfg.long_chunks, buffered_long, streaming_long,
    ));
    out.push_str(&compare_line(
        "bytes/subscriber flatness across the ladder (max/min)",
        "<= 1.15x",
        &format!("{flatness:.3}x"),
    ));
    let expected_sketched = 100.0 / cfg.long_every as f64;
    let last = points.last().expect("at least one ladder point");
    out.push_str(&compare_line(
        "sketched-session rate at the largest point",
        &format!("~{expected_sketched:.2}%"),
        &format!(
            "{:.2}%",
            100.0 * last.sketched as f64 / last.sessions.max(1) as f64
        ),
    ));
    out.push_str(&compare_line(
        "sessions assessed at the largest point",
        &format!("{}", last.subscribers),
        &format!("{}", last.sessions),
    ));
    out.push_str(
        "\nper-subscriber state is O(1) in both subscriber count and session\n\
         length: under the cap sessions buffer exactly (bit-identical to the\n\
         batch path), past it they fold into fixed-size moments + quantile\n\
         sketches and surface as Fidelity::Sketched.\n",
    );

    let json_points: String = points
        .iter()
        .map(|p| {
            format!(
                "\n    {{\"subscribers\": {}, \"entries\": {}, \"sessions\": {}, \
                 \"sessions_per_sec\": {:.1}, \"bytes_per_subscriber\": {}, \
                 \"sketched\": {}, \"partial\": {}, \"evicted\": {}, \"shed\": {}}}",
                p.subscribers,
                p.entries,
                p.sessions,
                p.sessions as f64 / p.elapsed_secs.max(1e-9),
                p.bytes_per_subscriber,
                p.sketched,
                p.partial,
                p.evicted,
                p.shed,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"experiment\": \"subscriber-scaling\",\n  \
         \"exact_entry_cap\": {},\n  \"short_chunks\": {},\n  \
         \"long_chunks\": {},\n  \"long_every\": {},\n  \
         \"buffered_long_session_bytes\": {buffered_long},\n  \
         \"streaming_long_session_bytes\": {streaming_long},\n  \
         \"bytes_per_subscriber_flatness\": {flatness:.4},\n  \
         \"points\": [{json_points}\n  ]\n}}\n",
        cfg.exact_entry_cap, cfg.short_chunks, cfg.long_chunks, cfg.long_every,
    );
    (out, json)
}

/// `run_experiment` form: the 10k smoke point, so `repro all` and the
/// render test stay fast; `scripts/bench.sh` calls
/// [`subscriber_scaling_with`] on the full [`SubscriberScalingConfig::quick`]
/// ladder.
fn subscriber_scaling(ctx: &ReproContext) -> String {
    subscriber_scaling_with(ctx, SubscriberScalingConfig::smoke()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ReproContext, ReproScale};
    use std::sync::OnceLock;

    fn ctx() -> &'static ReproContext {
        static CTX: OnceLock<ReproContext> = OnceLock::new();
        CTX.get_or_init(|| ReproContext::build(ReproScale::smoke()))
    }

    #[test]
    fn every_experiment_renders() {
        let ctx = ctx();
        for id in EXPERIMENTS {
            let report = run_experiment(id, ctx);
            assert!(
                report.len() > 80,
                "experiment {id} produced a stub: {report}"
            );
            assert!(report.contains(id), "report missing its id: {id}");
        }
    }

    #[test]
    fn unknown_experiment_lists_known_ones() {
        let report = run_experiment("nope", ctx());
        assert!(report.contains("unknown experiment"));
        assert!(report.contains("tab3"));
    }

    #[test]
    fn tab3_reports_accuracy_against_paper() {
        let report = run_experiment("tab3", ctx());
        assert!(report.contains("93.5%"), "paper value missing");
        assert!(report.contains("weighted avg."));
    }

    #[test]
    fn fig4_reports_threshold() {
        let report = run_experiment("fig4", ctx());
        assert!(report.contains("calibrated threshold"));
        assert!(report.contains("78%"));
    }

    #[test]
    fn chaos_sweep_proves_clean_path_identity() {
        let report = run_experiment("chaos-sweep", ctx());
        assert!(
            !report.contains("NO — regression"),
            "robustness layer altered the clean path:\n{report}"
        );
        assert!(report.contains("0.40"), "sweep must reach high intensity");
    }
}
