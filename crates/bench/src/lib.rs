//! # vqoe-bench
//!
//! The reproduction harness for *Measuring Video QoE from Encrypted
//! Traffic* (IMC 2016): one experiment per table and figure in the
//! paper's evaluation, regenerated end to end from the simulation
//! substrate, plus the ablations called out in `DESIGN.md`.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p vqoe-bench --bin repro -- all
//! ```
//!
//! or a single artifact, scaled up:
//!
//! ```text
//! cargo run --release -p vqoe-bench --bin repro -- tab3 --sessions 20000
//! ```
//!
//! The Criterion performance benches live in `benches/perf.rs`
//! (`cargo bench -p vqoe-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod render;
pub mod wallclock;

pub use context::{ReproContext, ReproScale};
pub use experiments::{run_experiment, EXPERIMENTS};
pub use wallclock::WallClock;
