//! Text rendering for experiment reports: aligned tables, the paper's
//! classifier-output format, and ASCII CDF plots.

use vqoe_ml::ConfusionMatrix;

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are free-form strings).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..cols {
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                }
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
            out
        };
        let mut out = fmt_row(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Render the paper's classifier-output table (TP Rate / FP Rate /
/// Precision / Recall per class plus the weighted average row) — the
/// format of Tables 3, 6, 8 and 10.
pub fn render_class_report(matrix: &ConfusionMatrix) -> String {
    let mut t = Table::new(vec!["Class", "TP Rate", "FP Rate", "Precision", "Recall"]);
    for r in matrix.class_reports() {
        t.row(vec![
            r.class.clone(),
            format!("{:.3}", r.tp_rate),
            format!("{:.3}", r.fp_rate),
            format!("{:.3}", r.precision),
            format!("{:.3}", r.recall),
        ]);
    }
    let avg = matrix.weighted_average();
    t.row(vec![
        avg.class.clone(),
        format!("{:.3}", avg.tp_rate),
        format!("{:.3}", avg.fp_rate),
        format!("{:.3}", avg.precision),
        format!("{:.3}", avg.recall),
    ]);
    t.render()
}

/// Render the paper's confusion-matrix table (row percentages) — the
/// format of Tables 4, 7, 9 and 11.
pub fn render_confusion(matrix: &ConfusionMatrix) -> String {
    let mut headers = vec!["original \\ predicted".to_string()];
    headers.extend(matrix.class_names.iter().cloned());
    let mut t = Table::new(headers);
    let pcts = matrix.row_percentages();
    for (i, name) in matrix.class_names.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(pcts[i].iter().map(|p| format!("{p:.1}%")));
        t.row(row);
    }
    t.render()
}

/// Render an ASCII CDF: one row per grid point with a proportional bar.
/// `label` heads the plot; `unit` annotates the x column.
pub fn render_cdf(label: &str, unit: &str, steps: &[(f64, f64)], rows: usize) -> String {
    const BAR_WIDTH: usize = 40;
    let mut out = format!("{label}\n");
    if steps.is_empty() {
        out.push_str("  (empty distribution)\n");
        return out;
    }
    // Downsample to ~`rows` evenly spaced points across the series.
    let stride = (steps.len() / rows.max(1)).max(1);
    let mut picked: Vec<(f64, f64)> = steps.iter().copied().step_by(stride).collect();
    if picked.last() != steps.last() {
        picked.push(*steps.last().expect("non-empty"));
    }
    for (x, f) in picked {
        let bar = "#".repeat((f * BAR_WIDTH as f64).round() as usize);
        out.push_str(&format!(
            "  {x:>12.3} {unit:<6} |{bar:<BAR_WIDTH$}| {:.3}\n",
            f
        ));
    }
    out
}

/// Render two CDFs side by side on a merged grid (the Figure-4/5 shape).
pub fn render_cdf_pair(
    label: &str,
    unit: &str,
    name_a: &str,
    a: &vqoe_stats::Ecdf,
    name_b: &str,
    b: &vqoe_stats::Ecdf,
    rows: usize,
) -> String {
    let mut out = format!("{label}\n");
    if a.is_empty() && b.is_empty() {
        out.push_str("  (both distributions empty)\n");
        return out;
    }
    let lo = a.inverse(0.0).min(b.inverse(0.0));
    let hi = a.inverse(1.0).max(b.inverse(1.0));
    let mut t = Table::new(vec![
        format!("x ({unit})"),
        name_a.to_string(),
        name_b.to_string(),
    ]);
    for i in 0..=rows {
        let x = lo + (hi - lo) * i as f64 / rows as f64;
        t.row(vec![
            format!("{x:.3}"),
            format!("{:.3}", a.eval(x)),
            format!("{:.3}", b.eval(x)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "  KS distance = {:.3}   (n = {} vs {})\n",
        a.ks_distance(b),
        a.len(),
        b.len()
    ));
    out
}

/// A paper-vs-measured comparison line for the experiment footers.
pub fn compare_line(what: &str, paper: &str, measured: &str) -> String {
    format!("  {what:<46} paper: {paper:<18} measured: {measured}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer-name", "23"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width.
        assert!(lines[2].len() == lines[3].len());
        assert!(s.contains("longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn class_report_contains_weighted_avg() {
        let m = ConfusionMatrix::from_predictions(
            vec!["x".to_string(), "y".to_string()],
            &[0, 0, 1, 1],
            &[0, 1, 1, 1],
        );
        let s = render_class_report(&m);
        assert!(s.contains("weighted avg."));
        assert!(s.contains("TP Rate"));
    }

    #[test]
    fn confusion_rows_show_percentages() {
        let m = ConfusionMatrix::from_predictions(
            vec!["x".to_string(), "y".to_string()],
            &[0, 0, 1, 1],
            &[0, 0, 1, 0],
        );
        let s = render_confusion(&m);
        assert!(s.contains("100.0%"));
        assert!(s.contains("50.0%"));
    }

    #[test]
    fn cdf_renders_monotone_bars() {
        let steps: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, i as f64 / 10.0)).collect();
        let s = render_cdf("test", "s", &steps, 5);
        assert!(s.contains("test"));
        assert!(s.contains("1.000"));
    }

    #[test]
    fn cdf_pair_reports_ks() {
        let a = vqoe_stats::Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = vqoe_stats::Ecdf::new(&[2.0, 3.0, 4.0]);
        let s = render_cdf_pair("cmp", "KB", "A", &a, "B", &b, 4);
        assert!(s.contains("KS distance"));
    }

    #[test]
    fn empty_cdf_is_handled() {
        let s = render_cdf("empty", "s", &[], 5);
        assert!(s.contains("empty distribution"));
    }
}
