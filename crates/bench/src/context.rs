//! Shared experiment context: corpora, trained models and the encrypted
//! evaluation world, built once and reused by every experiment.

use vqoe_changedet::SwitchScoreConfig;
use vqoe_core::avgrep_pipeline::{train_representation_detector, RepresentationTrainingReport};
use vqoe_core::stall_pipeline::{train_stall_detector, StallTrainingReport};
use vqoe_core::switch_pipeline::SwitchCalibrationReport;
use vqoe_core::SwitchModel;
use vqoe_core::{generate_traces, DatasetSpec, EncryptedEvalConfig, EncryptedWorld};
use vqoe_ml::ForestConfig;
use vqoe_player::SessionTrace;

/// How big a reproduction run to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReproScale {
    /// Cleartext (progressive-heavy) corpus size.
    pub cleartext_sessions: usize,
    /// Adaptive corpus size (representation/switch models).
    pub adaptive_sessions: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ReproScale {
    fn default() -> Self {
        ReproScale {
            cleartext_sessions: 8_000,
            adaptive_sessions: 3_000,
            seed: 2016,
        }
    }
}

impl ReproScale {
    /// A fast scale for tests and smoke runs.
    pub fn smoke() -> Self {
        ReproScale {
            cleartext_sessions: 800,
            adaptive_sessions: 400,
            seed: 2016,
        }
    }
}

/// Everything the experiments share.
pub struct ReproContext {
    /// The scale this context was built at.
    pub scale: ReproScale,
    /// §3 cleartext corpus (97 % progressive).
    pub cleartext: Vec<SessionTrace>,
    /// Adaptive-only corpus (representation & switch models).
    pub adaptive: Vec<SessionTrace>,
    /// §4.1 stall pipeline outputs (Tables 2–4) — trained on the union
    /// of both corpora (see `vqoe_core::monitor` for the rationale).
    pub stall: StallTrainingReport,
    /// §4.2 representation pipeline outputs (Tables 5–7).
    pub representation: RepresentationTrainingReport,
    /// §4.3 switch calibration (Figure 4).
    pub switch: SwitchCalibrationReport,
    /// §5 encrypted evaluation world (722 sessions).
    pub world: EncryptedWorld,
}

impl ReproContext {
    /// Build the full context (generation + training + encrypted world).
    /// At the default scale this takes tens of seconds in release mode.
    pub fn build(scale: ReproScale) -> Self {
        let cleartext = generate_traces(&DatasetSpec::cleartext_default(
            scale.cleartext_sessions,
            scale.seed,
        ));
        let adaptive = generate_traces(&DatasetSpec::adaptive_default(
            scale.adaptive_sessions,
            scale.seed ^ 0xADA7,
        ));

        let mut stall_corpus = cleartext.clone();
        stall_corpus.extend(adaptive.iter().cloned());
        let stall = train_stall_detector(&stall_corpus, ForestConfig::default(), scale.seed);
        let representation =
            train_representation_detector(&adaptive, ForestConfig::default(), scale.seed);
        let switch = SwitchModel::calibrate(&adaptive, SwitchScoreConfig::default());

        let world = EncryptedWorld::build(&EncryptedEvalConfig::paper_default(scale.seed ^ 0x5EC5))
            .expect("simulated world builds");

        ReproContext {
            scale,
            cleartext,
            adaptive,
            stall,
            representation,
            switch,
            world,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_context_builds_consistently() {
        let ctx = ReproContext::build(ReproScale::smoke());
        assert_eq!(ctx.cleartext.len(), 800);
        assert_eq!(ctx.adaptive.len(), 400);
        assert!(ctx.stall.selected.len() >= 4);
        assert!(ctx.representation.selected.len() >= 10);
        assert!(ctx.switch.model.threshold().is_finite());
        assert_eq!(ctx.world.traces.len(), 722);
        assert!(ctx.world.reassembly_recall() > 0.9);
    }
}
