//! `repro` — regenerate every table and figure of *Measuring Video QoE
//! from Encrypted Traffic* (IMC 2016) from the simulation substrate.
//!
//! ```text
//! repro all                         # every experiment, default scale
//! repro tab3 tab4                   # selected experiments
//! repro all --sessions 20000        # bigger cleartext corpus
//! repro all --out results/          # also write one .txt per experiment
//! repro abr-comparison              # extension experiment
//! ```

use std::io::Write;
use vqoe_bench::experiments::{
    abr_comparison, engine_scaling_with, ingest_bench_with, obs_overhead_with, overload_sweep_with,
    run_experiment, subscriber_scaling_with, trace_overhead_with, train_scaling_with,
    EngineScalingConfig, IngestBenchConfig, ObsOverheadConfig, OverloadSweepConfig,
    SubscriberScalingConfig, TraceOverheadConfig, TrainScalingConfig, EXPERIMENTS,
};
use vqoe_bench::{ReproContext, ReproScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = ReproScale::default();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut smoke = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => {
                i += 1;
                scale.cleartext_sessions = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--sessions needs a number"));
                scale.adaptive_sessions = (scale.cleartext_sessions * 3 / 8).max(200);
            }
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--out" => {
                i += 1;
                out_dir = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--out needs a directory")),
                );
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--bench-json needs a file path")),
                );
            }
            "--smoke" => {
                smoke = true;
                scale = ReproScale {
                    seed: scale.seed,
                    ..ReproScale::smoke()
                };
            }
            "--help" | "-h" => {
                usage("");
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment given");
    }
    if ids.iter().any(|id| id == "all") {
        ids = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    // The abr-comparison extension doesn't need the trained context.
    if ids == ["abr-comparison"] {
        println!("{}", abr_comparison(scale.seed, 600));
        return;
    }

    eprintln!(
        "building reproduction context: {} cleartext + {} adaptive sessions, seed {} ...",
        scale.cleartext_sessions, scale.adaptive_sessions, scale.seed
    );
    let t0 = std::time::Instant::now();
    let ctx = ReproContext::build(scale);
    eprintln!("context ready in {:.1}s\n", t0.elapsed().as_secs_f64());

    for id in &ids {
        let report = if id == "abr-comparison" {
            abr_comparison(scale.seed, 600)
        } else if id == "engine-scaling" {
            let (txt, json) = engine_scaling_with(&ctx, EngineScalingConfig::quick());
            if let Some(path) = &bench_json {
                std::fs::write(path, json).expect("write --bench-json file");
            }
            txt
        } else if id == "obs-overhead" {
            let (txt, json) = obs_overhead_with(&ctx, ObsOverheadConfig::quick());
            if let Some(path) = &bench_json {
                std::fs::write(path, json).expect("write --bench-json file");
            }
            txt
        } else if id == "overload-sweep" {
            let (txt, json) = overload_sweep_with(&ctx, OverloadSweepConfig::quick());
            if let Some(path) = &bench_json {
                std::fs::write(path, json).expect("write --bench-json file");
            }
            txt
        } else if id == "train-scaling" {
            let (txt, json) = train_scaling_with(&ctx, TrainScalingConfig::quick());
            if let Some(path) = &bench_json {
                std::fs::write(path, json).expect("write --bench-json file");
            }
            txt
        } else if id == "ingest-bench" {
            let (txt, json) = ingest_bench_with(&ctx, IngestBenchConfig::quick());
            if let Some(path) = &bench_json {
                std::fs::write(path, json).expect("write --bench-json file");
            }
            txt
        } else if id == "trace-overhead" {
            let (txt, json) = trace_overhead_with(&ctx, TraceOverheadConfig::quick());
            if let Some(path) = &bench_json {
                std::fs::write(path, json).expect("write --bench-json file");
            }
            txt
        } else if id == "subscriber-scaling" {
            // The full 100k-1M ladder takes minutes; --smoke runs the
            // single 10k point scripts/check.sh gates on.
            let cfg = if smoke {
                SubscriberScalingConfig::smoke()
            } else {
                SubscriberScalingConfig::quick()
            };
            let (txt, json) = subscriber_scaling_with(&ctx, cfg);
            if let Some(path) = &bench_json {
                std::fs::write(path, json).expect("write --bench-json file");
            }
            txt
        } else {
            run_experiment(id, &ctx)
        };
        print!("{report}");
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create --out directory");
            let path = dir.join(format!("{id}.txt"));
            let mut f = std::fs::File::create(&path).expect("create report file");
            f.write_all(report.as_bytes()).expect("write report");
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--sessions N] [--seed S] [--out DIR] [--smoke] \
         [--bench-json FILE] <experiment...|all>\n\
         experiments: {}  abr-comparison",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
