//! Criterion performance benches for the vqoe stack.
//!
//! These measure the *library's* throughput — how fast the substrate
//! simulates, how fast features extract, how fast the detectors train
//! and score — which is what decides whether an operator could run the
//! framework online ("report issues in real time", §8). The experiment
//! regeneration itself lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vqoe_changedet::detector::{session_score, SwitchScoreConfig};
use vqoe_core::{
    generate_traces, DatasetSpec, EngineConfig, OnlineAssessor, QoeMonitor, TrainingConfig,
};
use vqoe_features::{representation_features, stall_features, SessionObs};
use vqoe_ml::{cross_validate, ForestConfig, RandomForest};
use vqoe_player::{simulate_session, AbrKind, Delivery, SessionConfig};
use vqoe_simnet::channel::Scenario;
use vqoe_simnet::rng::SeedSequence;
use vqoe_simnet::time::Instant;
use vqoe_telemetry::{apply_chaos, reassemble_subscriber, ChaosConfig, ReassemblyConfig};

fn bench_simulation(c: &mut Criterion) {
    let seeds = SeedSequence::new(42);
    let mut group = c.benchmark_group("simulate_session");
    group.bench_function("progressive/static_home", |b| {
        let mut idx = 0u64;
        b.iter(|| {
            idx += 1;
            simulate_session(
                &SessionConfig {
                    session_index: idx,
                    scenario: Scenario::StaticHome,
                    delivery: Delivery::Progressive,
                    start_time: Instant::ZERO,
                    profile: Default::default(),
                },
                &seeds,
            )
        })
    });
    group.bench_function("dash_hybrid/commuting", |b| {
        let mut idx = 0u64;
        b.iter(|| {
            idx += 1;
            simulate_session(
                &SessionConfig {
                    session_index: idx,
                    scenario: Scenario::Commuting,
                    delivery: Delivery::Dash(AbrKind::Hybrid),
                    start_time: Instant::ZERO,
                    profile: Default::default(),
                },
                &seeds,
            )
        })
    });
    group.finish();
}

fn bench_features(c: &mut Criterion) {
    let seeds = SeedSequence::new(7);
    let trace = simulate_session(
        &SessionConfig {
            session_index: 1,
            scenario: Scenario::StaticHome,
            delivery: Delivery::Dash(AbrKind::Hybrid),
            start_time: Instant::ZERO,
            profile: Default::default(),
        },
        &seeds,
    );
    let obs = SessionObs::from_trace(&trace);
    let mut group = c.benchmark_group("feature_extraction");
    group.bench_function("stall_70", |b| b.iter(|| stall_features(&obs)));
    group.bench_function("representation_210", |b| {
        b.iter(|| representation_features(&obs))
    });
    group.bench_function("cusum_switch_score", |b| {
        let points = obs.chunk_points();
        let cfg = SwitchScoreConfig::default();
        b.iter(|| session_score(&points, &cfg))
    });
    group.finish();
}

fn bench_ml(c: &mut Criterion) {
    let traces = generate_traces(&DatasetSpec::cleartext_default(600, 9));
    let full = vqoe_features::build_stall_dataset(&traces);
    let mut rng = rand::SeedableRng::seed_from_u64(1);
    let balanced = full.balanced_downsample(&mut rng);
    let mut group = c.benchmark_group("ml");
    group.sample_size(10);
    group.bench_function("forest_fit_balanced", |b| {
        b.iter(|| RandomForest::fit(&balanced, ForestConfig::default()))
    });
    let forest = RandomForest::fit(&balanced, ForestConfig::default());
    group.bench_function("forest_predict_row", |b| {
        let row = &full.x[0];
        b.iter(|| forest.predict(row))
    });
    group.bench_function("cv_10fold_4feat", |b| {
        let reduced = full.select_features(&[56, 59, 21, 48]);
        b.iter(|| cross_validate(&reduced, 10, ForestConfig::default(), true, 3))
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // One subscriber's day: 20 sequential encrypted sessions plus noise.
    let spec = DatasetSpec {
        n_sessions: 20,
        ..DatasetSpec::encrypted_default(77)
    };
    let traces = vqoe_core::generate_sequential_traces(&spec, 120.0);
    let mut rng = rand::SeedableRng::seed_from_u64(5);
    let mut entries = Vec::new();
    for t in &traces {
        entries.extend(
            vqoe_telemetry::capture_session(
                t,
                &vqoe_telemetry::CaptureConfig {
                    encrypted: true,
                    subscriber_id: 1,
                },
                &mut rng,
            )
            .expect("simulated traces always capture"),
        );
    }
    entries.sort_by_key(|e| e.timestamp);
    let mut group = c.benchmark_group("telemetry");
    group.bench_function("reassemble_20_sessions", |b| {
        b.iter_batched(
            || entries.clone(),
            |e| reassemble_subscriber(&e, &ReassemblyConfig::default()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_online_ingest(c: &mut Criterion) {
    // One subscriber's day of encrypted traffic, streamed through the
    // hardened online assessor: the entries/sec baseline for later perf
    // work, clean vs. a 10 % composite fault rate.
    let spec = DatasetSpec {
        n_sessions: 20,
        ..DatasetSpec::encrypted_default(78)
    };
    let traces = vqoe_core::generate_sequential_traces(&spec, 120.0);
    let mut rng = rand::SeedableRng::seed_from_u64(6);
    let mut entries = Vec::new();
    for t in &traces {
        entries.extend(
            vqoe_telemetry::capture_session(
                t,
                &vqoe_telemetry::CaptureConfig {
                    encrypted: true,
                    subscriber_id: 1,
                },
                &mut rng,
            )
            .expect("simulated traces always capture"),
        );
    }
    entries.sort_by_key(|e| e.timestamp);
    let (faulted, _) = apply_chaos(&entries, &ChaosConfig::uniform(0.1), 40);
    let monitor = QoeMonitor::train(&TrainingConfig {
        cleartext_sessions: 250,
        adaptive_sessions: 150,
        seed: 17,
        ..TrainingConfig::default()
    });

    let mut group = c.benchmark_group("online_ingest");
    group.sample_size(10);
    for (name, stream) in [("clean_stream", &entries), ("fault_10pct", &faulted)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (OnlineAssessor::new(monitor.clone()), stream.clone()),
                |(mut online, stream)| {
                    let mut assessed = 0usize;
                    for e in &stream {
                        assessed += online.ingest(e).len();
                    }
                    assessed + online.finish().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    // The sharded parallel engine over a multi-subscriber tap, 1 worker
    // vs 4 (no simulated tap pacing — pure compute; the tap-paced
    // regime lives in the `engine-scaling` repro experiment).
    let mut rng = rand::SeedableRng::seed_from_u64(8);
    let mut entries = Vec::new();
    for s in 0..6u64 {
        let spec = DatasetSpec {
            n_sessions: 4,
            ..DatasetSpec::encrypted_default(80 + s)
        };
        for t in &vqoe_core::generate_sequential_traces(&spec, 120.0) {
            entries.extend(
                vqoe_telemetry::capture_session(
                    t,
                    &vqoe_telemetry::CaptureConfig {
                        encrypted: true,
                        subscriber_id: s,
                    },
                    &mut rng,
                )
                .expect("simulated traces always capture"),
            );
        }
    }
    entries.sort_by_key(|e| e.timestamp);
    let monitor = QoeMonitor::train(&TrainingConfig {
        cleartext_sessions: 250,
        adaptive_sessions: 150,
        seed: 18,
        ..TrainingConfig::default()
    });

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let cfg = EngineConfig {
            workers,
            ..EngineConfig::default()
        };
        let name = format!("assess_corpus_w{workers}");
        group.bench_function(name.as_str(), |b| {
            b.iter(|| monitor.pipeline().with_engine(cfg).assess(&entries))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_features,
    bench_ml,
    bench_telemetry,
    bench_online_ingest,
    bench_engine
);
criterion_main!(benches);
