//! Regression tests for the lexer's edge cases: raw hash-guard
//! strings, nested block comments, and backslash-newline string
//! continuations. Every case asserts two invariants the passes depend
//! on: the physical line count is preserved (findings carry 1-based
//! line numbers, so any drift misplaces every later diagnostic), and
//! quoted/commented text never leaks into `Line::code`.

use vqoe_analyze::lexer::lex_file;

#[test]
fn raw_hash_guard_string_contents_are_blanked() {
    let src = "let s = r#\"quote \" and // slash\"#; after();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 1);
    assert!(!lines[0].code.contains("slash"), "{:?}", lines[0].code);
    assert!(lines[0].code.contains("after()"), "{:?}", lines[0].code);
    assert!(lines[0].comment.is_empty());
}

#[test]
fn raw_string_with_more_hashes_needs_the_full_guard() {
    // `"#` inside an `r##"…"##` string does not terminate it.
    let src = "let s = r##\"inner \"# still inside\"##; tail();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 1);
    assert!(!lines[0].code.contains("still inside"));
    assert!(lines[0].code.contains("tail()"));
}

#[test]
fn multiline_raw_string_preserves_line_count() {
    let src = "let s = r#\"first\nsecond // not a comment\nthird\"#;\nlet x = 1;\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 4);
    // The interior lines are pure string content: blanked code, no
    // comment text.
    assert!(lines[1].code.trim().is_empty(), "{:?}", lines[1].code);
    assert!(lines[1].comment.is_empty());
    assert!(lines[3].code.contains("let x = 1;"));
}

#[test]
fn adjacent_raw_strings_with_different_guards() {
    let src = "f(r#\"a\"#, r##\"b\"##, r\"c\"); g();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 1);
    assert!(lines[0].code.contains("g();"));
    for inner in ["a", "b", "c"] {
        assert!(
            !lines[0].code.contains(&format!("\"{inner}\"")),
            "{:?}",
            lines[0].code
        );
    }
}

#[test]
fn raw_hash_string_is_not_a_line_comment_opener() {
    // `r#"//"#` contains a comment-lookalike that must stay string.
    let src = "let s = r#\"//\"#; real(); // real comment\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 1);
    assert!(lines[0].code.contains("real()"));
    assert_eq!(lines[0].comment.trim(), "real comment");
}

#[test]
fn nested_block_comments_track_depth() {
    let src = "/* outer /* inner */ still a comment */ code();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 1);
    assert!(lines[0].code.contains("code()"), "{:?}", lines[0].code);
    assert!(!lines[0].code.contains("still"), "{:?}", lines[0].code);
    assert!(lines[0].comment.contains("inner"));
}

#[test]
fn deeply_nested_block_comment_spans_lines_without_drift() {
    let src = "before();\n/* 1 /* 2 /* 3 */ 2 */\nstill comment */ after();\nlast();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 4);
    assert!(lines[0].code.contains("before()"));
    assert!(lines[1].code.trim().is_empty());
    assert!(lines[2].code.contains("after()"), "{:?}", lines[2].code);
    assert!(!lines[2].code.contains("still"));
    assert!(lines[3].code.contains("last()"));
}

#[test]
fn adjacent_block_comments_do_not_merge() {
    let src = "/* a */ x(); /* b */ y();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 1);
    assert!(lines[0].code.contains("x()"));
    assert!(lines[0].code.contains("y()"));
}

#[test]
fn backslash_newline_string_continuation_preserves_line_count() {
    // A `\` at end of line inside a string continues it on the next
    // physical line; the lexer must still emit one `Line` per physical
    // line or every later finding's line number drifts.
    let src = "let s = \"one \\\ntwo\";\nlet x = v.first().unwrap();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert!(
        lines[2].code.contains(".unwrap()"),
        "line 3 must hold the unwrap: {:?}",
        lines[2].code
    );
}

#[test]
fn escaped_quote_does_not_terminate_a_string() {
    let src = "let s = \"not \\\" done // nope\"; real();\n";
    let lines = lex_file(src);
    assert_eq!(lines.len(), 1);
    assert!(lines[0].code.contains("real()"));
    assert!(lines[0].comment.is_empty(), "{:?}", lines[0].comment);
}

#[test]
fn allow_markers_cover_their_own_and_next_line() {
    let src = "// analyze:allow(unwrap)\nlet a = x.unwrap();\nlet b = y.unwrap();\n";
    let lines = lex_file(src);
    assert!(lines[0].allows.iter().any(|a| a == "unwrap"));
    assert!(lines[1].allows.iter().any(|a| a == "unwrap"));
    assert!(lines[2].allows.is_empty());
}

#[test]
fn cfg_test_region_is_brace_matched() {
    let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn b() {}\n";
    let lines = lex_file(src);
    assert!(!lines[0].in_test);
    assert!(lines[3].in_test);
    assert!(!lines[5].in_test, "{lines:?}");
}
