//! End-to-end tests for the gates: each fixture under
//! `tests/fixtures/` seeds one violation per rule, and the live
//! workspace must come out clean (the gate gates itself).

use std::path::{Path, PathBuf};
use std::process::Command;

use vqoe_analyze::{
    bounded, clock, clones, constants, determinism, floatord, hygiene, locks, panics, run_all,
    staleallow, Finding,
};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn determinism_fixture_trips_every_rule_once() {
    let findings = determinism::check(&fixture("determinism"));
    let rules = rules(&findings);
    assert_eq!(rules.iter().filter(|r| **r == "thread-rng").count(), 1);
    // Two wall-clock sites are seeded but one carries analyze:allow.
    assert_eq!(rules.iter().filter(|r| **r == "wall-clock").count(), 1);
    // One HashMap walk in the simnet fixture, one in the engine-reducer
    // fixture; its BTreeMap and keyed-access paths stay silent.
    assert_eq!(rules.iter().filter(|r| **r == "hashmap-iter").count(), 2);
    assert_eq!(findings.len(), 4, "{findings:?}");
    for f in &findings {
        assert!(
            f.file.ends_with("crates/simnet/src/lib.rs")
                || f.file.ends_with("crates/core/src/engine.rs"),
            "{f:?}"
        );
        assert!(f.line > 0);
    }
    let engine: Vec<_> = findings
        .iter()
        .filter(|f| f.file.ends_with("crates/core/src/engine.rs"))
        .collect();
    assert_eq!(engine.len(), 1, "{engine:?}");
    assert_eq!(engine[0].rule, "hashmap-iter");
    assert!(engine[0].message.contains("per_shard"));
}

#[test]
fn panics_fixture_trips_every_rule_and_spares_tests() {
    let findings = panics::check(&fixture("panics"));
    assert_eq!(
        rules(&findings),
        vec!["unwrap", "expect", "panic"],
        "{findings:?}"
    );
    // The partial_cmp special case carries the total_cmp hint.
    assert!(findings[0].message.contains("total_cmp"));
    // The unwrap inside #[cfg(test)] did not fire (it would be a 4th finding).
}

#[test]
fn constants_fixture_reports_the_seeded_mismatch() {
    let findings = constants::check(&fixture("constants"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "const-mismatch");
    assert_eq!(findings[0].file, "DESIGN.md");
    assert!(findings[0].message.contains("71"));
    assert!(findings[0].message.contains("70"));
}

#[test]
fn hygiene_fixture_reports_manifest_and_lib_violations() {
    let findings = hygiene::check(&fixture("hygiene"));
    let rules = rules(&findings);
    assert!(rules.contains(&"workspace-lints"));
    assert!(rules.contains(&"lib-doc"));
    assert!(rules.contains(&"missing-docs-attr"));
    assert!(rules.contains(&"forbid-unsafe"));
    // `rand = "0.8"` is flagged; `serde = { workspace = true }` is not.
    let dep: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "workspace-dep")
        .collect();
    assert_eq!(dep.len(), 1, "{dep:?}");
    assert!(dep[0].message.contains("rand"));
}

#[test]
fn bounded_fixture_flags_only_the_evictionless_table() {
    let findings = bounded::check(&fixture("bounded"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "unbounded-map");
    assert!(findings[0].file.ends_with("crates/telemetry/src/lib.rs"));
    assert!(findings[0].message.contains("`open`"));
    // `recent` (retained), `delegated` (allow-marked), the local `let`
    // map, and the #[cfg(test)] field all stayed silent.
}

#[test]
fn clock_fixture_flags_raw_wall_clock_outside_allowlist() {
    let findings = clock::check(&fixture("clock"));
    let rules = rules(&findings);
    // Two violations in the deterministic crate; the allow-marked line
    // and every look-alike stay silent, and the bench crate is exempt
    // despite calling both OS clocks.
    assert_eq!(
        rules,
        vec!["raw-wall-clock", "raw-wall-clock"],
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.file.ends_with("crates/core/src/lib.rs")));
    assert!(findings.iter().any(|f| f.message.contains("SystemTime")));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("std::time::Instant")),
        "{findings:?}"
    );
}

#[test]
fn locks_fixture_flags_both_shapes_and_spares_lookalikes() {
    let findings = locks::check(&fixture("locks"));
    assert_eq!(
        rules(&findings),
        vec!["lock-across-handoff", "lock-across-handoff"],
        "{findings:?}"
    );
    // Shape 1: the guard live across the send.
    assert_eq!(findings[0].line, 7);
    assert!(findings[0].message.contains("`guard`"));
    assert!(findings[0].message.contains("send"));
    // Shape 2: the lock inside the spawned worker body.
    assert_eq!(findings[1].line, 13);
    assert!(findings[1].message.contains("fan-out"));
    // The dropped-guard, narrow-scope, io::Read, allow-marked and
    // test-module sites all stayed silent.
}

#[test]
fn floatord_fixture_flags_both_shapes_and_spares_lookalikes() {
    let findings = floatord::check(&fixture("floatord"));
    assert_eq!(
        rules(&findings),
        vec!["float-reduce-order", "float-reduce-order"],
        "{findings:?}"
    );
    // Shape 1: the `.sum::<f64>()` chained onto the HashMap walk.
    assert_eq!(findings[0].line, 6);
    assert!(findings[0].message.contains("sum"));
    // Shape 2: the `+=` inside the loop over the HashMap.
    assert_eq!(findings[1].line, 12);
    assert!(findings[1].message.contains("+="));
    // BTreeMap, integer, sorted-keys, allow-marked and test sites all
    // stayed silent.
}

#[test]
fn clones_fixture_flags_heavy_clones_and_spares_lookalikes() {
    let findings = clones::check(&fixture("clones"));
    assert_eq!(
        rules(&findings),
        vec!["clone-heavy-handoff", "clone-heavy-handoff"],
        "{findings:?}"
    );
    // The clone in the send loop (via loop-variable propagation) and
    // the `.to_vec()` in the fan-out job.
    assert_eq!(findings[0].line, 7);
    assert_eq!(findings[1].line, 13);
    assert!(findings[1].message.contains("`entries`"));
    // Moved values, light types, out-of-loop clones, allow-marked and
    // test sites all stayed silent.
}

#[test]
fn staleallow_fixture_flags_dead_and_typo_markers_only() {
    let findings = staleallow::check(&fixture("staleallow"));
    assert_eq!(
        rules(&findings),
        vec!["stale-allow", "stale-allow"],
        "{findings:?}"
    );
    // The dead unwrap marker.
    assert_eq!(findings[0].line, 13);
    assert!(findings[0].message.contains("no longer suppresses"));
    // The typo'd rule name.
    assert_eq!(findings[1].line, 18);
    assert!(findings[1].message.contains("unwarp"));
    // The live marker, the manifest-level rule, the self-suppressed
    // marker, and the doc-comment mention all stayed silent.
}

#[test]
fn live_workspace_passes_all_gates() {
    let findings = run_all(&workspace_root());
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn live_workspace_has_no_stale_allow_markers() {
    // Satellite guarantee: every `analyze:allow` in the tree still
    // suppresses something (run_all covers this too, but this pins the
    // specific rule if it ever regresses).
    let findings = staleallow::check(&workspace_root());
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_when_clean() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    let dirty = Command::new(bin)
        .args(["--root"])
        .arg(fixture("panics"))
        .output()
        .expect("binary runs");
    assert_eq!(dirty.status.code(), Some(1));
    let clean = Command::new(bin)
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    assert!(String::from_utf8_lossy(&clean.stdout).contains("all checks passed"));
}

#[test]
fn json_output_is_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    // The constants fixture is the one whose *only* violation survives
    // run_all (its crates carry no manifests, so hygiene skips them).
    let out = Command::new(bin)
        .args(["--format", "json", "--root"])
        .arg(fixture("constants"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"count\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"const-mismatch\""));
    assert!(json.contains("\"file\": \"DESIGN.md\""));
    assert!(json.contains("\"line\": "));
}

#[test]
fn unknown_flags_exit_with_usage_error() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    let out = Command::new(bin)
        .arg("--bogus")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sarif_output_is_valid_and_carries_the_findings() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    let out = Command::new(bin)
        .args(["--sarif", "--no-baseline", "--root"])
        .arg(fixture("panics"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    let doc: serde_json::Value = serde_json::from_str(&text).expect("SARIF parses as JSON");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "{text}"
    );
    assert!(doc
        .get("$schema")
        .and_then(|v| v.as_str())
        .is_some_and(|s| s.contains("sarif-schema-2.1.0")));
    let runs = doc.get("runs").and_then(|v| v.as_array()).expect("runs");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(|v| v.as_str()),
        Some("vqoe-analyze")
    );
    // The full rule table rides along; the panics fixture yields its
    // three findings as results with physical locations.
    assert!(driver
        .get("rules")
        .and_then(|v| v.as_array())
        .is_some_and(|r| r.len() >= 19));
    let results = runs[0]
        .get("results")
        .and_then(|v| v.as_array())
        .expect("results");
    // The fixture's three panic findings are all present (plus
    // const-missing noise: the fixture root has no DESIGN.md).
    for rule in ["unwrap", "expect", "panic"] {
        assert!(
            results
                .iter()
                .any(|r| r.get("ruleId").and_then(|v| v.as_str()) == Some(rule)),
            "missing {rule}: {text}"
        );
    }
    for r in results {
        assert!(r
            .get("locations")
            .and_then(|l| l.as_array())
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .is_some());
    }
}

#[test]
fn baseline_grandfathers_known_debt_until_disabled() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    // The fixture root carries an analyze-baseline.toml covering its
    // single unwrap — found by default, so the gate passes…
    let grandfathered = Command::new(bin)
        .args(["--root"])
        .arg(fixture("baseline"))
        .output()
        .expect("binary runs");
    assert_eq!(
        grandfathered.status.code(),
        Some(0),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&grandfathered.stdout),
        String::from_utf8_lossy(&grandfathered.stderr)
    );
    assert!(String::from_utf8_lossy(&grandfathered.stderr).contains("grandfathered"));
    // …and --no-baseline restores the raw verdict.
    let raw = Command::new(bin)
        .args(["--no-baseline", "--root"])
        .arg(fixture("baseline"))
        .output()
        .expect("binary runs");
    assert_eq!(raw.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&raw.stdout).contains("unwrap"));
}

#[test]
fn warn_severity_findings_do_not_fail_the_gate() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    let out = Command::new(bin)
        .args(["--no-baseline", "--root"])
        .arg(fixture("clones"))
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // clone-heavy-handoff is warn: reported, exit still 0.
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(
        stdout.contains("warning: [clone-heavy-handoff]"),
        "{stdout}"
    );
    assert!(stdout.contains("0 violation(s), 2 warning(s)"), "{stdout}");
}

#[test]
fn warm_cache_run_serves_every_file_from_the_cache() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    let cache_path =
        std::env::temp_dir().join(format!("vqoe-analyze-gates-cache-{}", std::process::id()));
    let _ = std::fs::remove_file(&cache_path);
    let run = |label: &str| {
        let out = Command::new(bin)
            .args(["--no-baseline", "--cache-path"])
            .arg(&cache_path)
            .arg("--root")
            .arg(fixture("panics"))
            .output()
            .expect("binary runs");
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
            format!("{label}: {}", out.status),
        )
    };
    let (cold_out, cold_err, _) = run("cold");
    assert!(cold_err.contains("0 hit(s)"), "{cold_err}");
    let (warm_out, warm_err, _) = run("warm");
    assert!(warm_err.contains("0 miss(es)"), "{warm_err}");
    // Cached findings are byte-identical to computed ones.
    assert_eq!(cold_out, warm_out);
    let _ = std::fs::remove_file(&cache_path);
}
