//! End-to-end tests for the gates: each fixture under
//! `tests/fixtures/` seeds one violation per rule, and the live
//! workspace must come out clean (the gate gates itself).

use std::path::{Path, PathBuf};
use std::process::Command;

use vqoe_analyze::{bounded, clock, constants, determinism, hygiene, panics, run_all, Finding};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn determinism_fixture_trips_every_rule_once() {
    let findings = determinism::check(&fixture("determinism"));
    let rules = rules(&findings);
    assert_eq!(rules.iter().filter(|r| **r == "thread-rng").count(), 1);
    // Two wall-clock sites are seeded but one carries analyze:allow.
    assert_eq!(rules.iter().filter(|r| **r == "wall-clock").count(), 1);
    // One HashMap walk in the simnet fixture, one in the engine-reducer
    // fixture; its BTreeMap and keyed-access paths stay silent.
    assert_eq!(rules.iter().filter(|r| **r == "hashmap-iter").count(), 2);
    assert_eq!(findings.len(), 4, "{findings:?}");
    for f in &findings {
        assert!(
            f.file.ends_with("crates/simnet/src/lib.rs")
                || f.file.ends_with("crates/core/src/engine.rs"),
            "{f:?}"
        );
        assert!(f.line > 0);
    }
    let engine: Vec<_> = findings
        .iter()
        .filter(|f| f.file.ends_with("crates/core/src/engine.rs"))
        .collect();
    assert_eq!(engine.len(), 1, "{engine:?}");
    assert_eq!(engine[0].rule, "hashmap-iter");
    assert!(engine[0].message.contains("per_shard"));
}

#[test]
fn panics_fixture_trips_every_rule_and_spares_tests() {
    let findings = panics::check(&fixture("panics"));
    assert_eq!(
        rules(&findings),
        vec!["unwrap", "expect", "panic"],
        "{findings:?}"
    );
    // The partial_cmp special case carries the total_cmp hint.
    assert!(findings[0].message.contains("total_cmp"));
    // The unwrap inside #[cfg(test)] did not fire (it would be a 4th finding).
}

#[test]
fn constants_fixture_reports_the_seeded_mismatch() {
    let findings = constants::check(&fixture("constants"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "const-mismatch");
    assert_eq!(findings[0].file, "DESIGN.md");
    assert!(findings[0].message.contains("71"));
    assert!(findings[0].message.contains("70"));
}

#[test]
fn hygiene_fixture_reports_manifest_and_lib_violations() {
    let findings = hygiene::check(&fixture("hygiene"));
    let rules = rules(&findings);
    assert!(rules.contains(&"workspace-lints"));
    assert!(rules.contains(&"lib-doc"));
    assert!(rules.contains(&"missing-docs-attr"));
    assert!(rules.contains(&"forbid-unsafe"));
    // `rand = "0.8"` is flagged; `serde = { workspace = true }` is not.
    let dep: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "workspace-dep")
        .collect();
    assert_eq!(dep.len(), 1, "{dep:?}");
    assert!(dep[0].message.contains("rand"));
}

#[test]
fn bounded_fixture_flags_only_the_evictionless_table() {
    let findings = bounded::check(&fixture("bounded"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "unbounded-map");
    assert!(findings[0].file.ends_with("crates/telemetry/src/lib.rs"));
    assert!(findings[0].message.contains("`open`"));
    // `recent` (retained), `delegated` (allow-marked), the local `let`
    // map, and the #[cfg(test)] field all stayed silent.
}

#[test]
fn clock_fixture_flags_raw_wall_clock_outside_allowlist() {
    let findings = clock::check(&fixture("clock"));
    let rules = rules(&findings);
    // Two violations in the deterministic crate; the allow-marked line
    // and every look-alike stay silent, and the bench crate is exempt
    // despite calling both OS clocks.
    assert_eq!(
        rules,
        vec!["raw-wall-clock", "raw-wall-clock"],
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.file.ends_with("crates/core/src/lib.rs")));
    assert!(findings.iter().any(|f| f.message.contains("SystemTime")));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("std::time::Instant")),
        "{findings:?}"
    );
}

#[test]
fn live_workspace_passes_all_gates() {
    let findings = run_all(&workspace_root());
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_when_clean() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    let dirty = Command::new(bin)
        .args(["--root"])
        .arg(fixture("panics"))
        .output()
        .expect("binary runs");
    assert_eq!(dirty.status.code(), Some(1));
    let clean = Command::new(bin)
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    assert!(String::from_utf8_lossy(&clean.stdout).contains("all checks passed"));
}

#[test]
fn json_output_is_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    // The constants fixture is the one whose *only* violation survives
    // run_all (its crates carry no manifests, so hygiene skips them).
    let out = Command::new(bin)
        .args(["--format", "json", "--root"])
        .arg(fixture("constants"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"count\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"const-mismatch\""));
    assert!(json.contains("\"file\": \"DESIGN.md\""));
    assert!(json.contains("\"line\": "));
}

#[test]
fn unknown_flags_exit_with_usage_error() {
    let bin = env!("CARGO_BIN_EXE_vqoe-analyze");
    let out = Command::new(bin)
        .arg("--bogus")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
