// Fixture for the raw-wall-clock pass: two violations (a SystemTime
// read and a smuggled std::time::Instant field), one allow-marked line,
// and deterministic look-alikes that must stay silent.

pub struct Smuggled {
    pub origin: std::time::Instant,
}

pub fn read_os_clock() -> u64 {
    let t = SystemTime::now();
    t.elapsed().unwrap_or_default().as_micros() as u64
}

pub struct Marked {
    // analyze:allow(raw-wall-clock)
    pub origin: std::time::Instant,
}

pub fn fine() {
    // Comments mentioning SystemTime do not fire, nor do strings.
    let _s = "std::time::Instant";
    // The deterministic twin is legal:
    let _i = vqoe_simnet::time::Instant::ZERO;
    // ... and so is plain duration data:
    std::thread::sleep(std::time::Duration::from_micros(1));
}
