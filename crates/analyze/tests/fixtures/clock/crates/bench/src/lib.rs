// Bench is allowlisted: measuring wall-clock time is its purpose.

pub fn timed() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamped() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
