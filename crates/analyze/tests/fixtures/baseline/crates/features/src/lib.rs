//! Fixture crate docs:
//! 7 summary statistics over each of the 10 Table-1 metrics = 70 features.
//! 15 statistics over 14 series (with *cumulative-sum throughput*) = 210 features.

pub mod labels;
pub mod representation;
pub mod stall;
