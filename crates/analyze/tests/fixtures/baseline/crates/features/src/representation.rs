//! Fixture §4.2: 14 series × 15 statistics = 210.

pub const REP_STATS: [&str; 15] = [
    "minimum", "mean", "maximum", "std", "5%", "10%", "15%", "20%", "25%", "50%", "75%", "80%",
    "85%", "90%", "95%",
];

pub const REP_METRICS: [&str; 14] = [
    "RTT minimum",
    "RTT average",
    "RTT maximum",
    "BDP",
    "BIF average",
    "BIF maximum",
    "packet loss",
    "packet retransmissions",
    "chunk size",
    "chunk time",
    "chunk avg size",
    "chunk Δsize",
    "chunk Δt",
    "cumsum throughput",
];
