// Fixture: exemplar cap site.
pub const EXEMPLARS_PER_BUCKET: usize = 1;
