// Fixture: trace format version site.
pub const TRACE_FORMAT_VERSION: u32 = 1;
