// Fixture: streaming quantile-sketch capacity mirrored into DESIGN.md.
pub const SKETCH_CAPACITY: usize = 64;
