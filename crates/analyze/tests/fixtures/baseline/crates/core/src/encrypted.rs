//! Fixture: the 70-dim labelled stall dataset and the
//! 210-dim labelled representation dataset.
