//! Baseline fixture: one unwrap violation, grandfathered by the
//! `analyze-baseline.toml` committed at this fixture's root.

fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
