//! Fixture: one seeded violation per panic-path rule.

pub fn shortcuts(v: &mut [f64], o: Option<u32>) -> u32 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let first = o.expect("present");
    if first == 0 {
        panic!("zero");
    }
    first
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
