//! Stale-allow fixture: a live marker (stays), a dead marker (flagged),
//! a typo'd rule name (flagged), a manifest-level rule (skipped), and a
//! self-suppressed dead marker (skipped).
//!
//! Doc-comment mentions of `analyze:allow(unwrap)` are not markers.

fn live(v: &[u64]) -> u64 {
    // first element guaranteed by the caller. analyze:allow(unwrap)
    *v.first().unwrap()
}

fn dead() -> u64 {
    // analyze:allow(unwrap)
    42
}

fn typo() -> u64 {
    // analyze:allow(unwarp)
    7
}

fn manifest_rule_is_skipped() -> u64 {
    // analyze:allow(workspace-lints)
    8
}

fn self_suppressed() -> u64 {
    // analyze:allow(stale-allow) analyze:allow(panic)
    9
}
