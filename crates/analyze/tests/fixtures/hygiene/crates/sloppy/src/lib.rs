pub fn undocumented() {}
