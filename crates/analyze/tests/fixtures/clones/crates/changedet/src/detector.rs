//! Fixture: the score threshold is calibrated (the paper's "500").
