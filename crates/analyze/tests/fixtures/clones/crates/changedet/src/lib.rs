//! Fixture: a change fires when the CUSUM score exceeds a threshold
//! (500 in its units).

pub mod detector;
