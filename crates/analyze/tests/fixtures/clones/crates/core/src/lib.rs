//! Clones fixture: a heavy clone inside a send loop and a heavy
//! `.to_vec()` inside a fan-out job, plus moved / light / out-of-loop /
//! allow-marked look-alikes that must stay silent.

fn broadcast(sessions: &[ReassembledSession], tx: &Sender<ReassembledSession>) {
    for s in sessions {
        tx.send(s.clone()).ok();
    }
}

fn fan(entries: &[WeblogEntry]) {
    run_indexed(4, cfg, |i| {
        let mine = entries.to_vec();
        work(i, mine)
    });
}

fn broadcast_moved(sessions: Vec<ReassembledSession>, tx: &Sender<ReassembledSession>) {
    for s in sessions {
        tx.send(s).ok();
    }
}

fn broadcast_light(ids: &[u64], tx: &Sender<u64>) {
    for id in ids {
        tx.send(id.clone()).ok();
    }
}

fn clone_outside_loop(template: &ReassembledSession, tx: &Sender<u64>) {
    let copy = template.clone();
    for i in 0..copy.chunks.len() {
        tx.send(i as u64).ok();
    }
}

fn broadcast_allowed(sessions: &[ReassembledSession], tx: &Sender<ReassembledSession>) {
    for s in sessions {
        // cold retry path, bounded by the cap. analyze:allow(clone-heavy-handoff)
        tx.send(s.clone()).ok();
    }
}

#[cfg(test)]
mod tests {
    fn tests_clone_freely(traces: &[SessionTrace]) {
        for t in traces {
            tx.send(t.clone()).ok();
        }
    }
}
