//! Fixture labelling rules: "when the RR is over 0.1, users abandon".

pub const SEVERE_RR_THRESHOLD: f64 = 0.1;

pub enum StallClass {
    NoStalls,
    Mild,
    Severe,
}

impl StallClass {
    pub fn names() -> Vec<String> {
        vec![
            "no stalls".to_string(),
            "mild stalls".to_string(),
            "severe stalls".to_string(),
        ]
    }
}

pub enum RqClass {
    Ld,
    Sd,
    Hd,
}

impl RqClass {
    pub fn names() -> Vec<String> {
        vec!["LD".to_string(), "SD".to_string(), "HD".to_string()]
    }
}
