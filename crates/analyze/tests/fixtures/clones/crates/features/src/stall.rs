//! Fixture §4.1: ten metrics × seven statistics = 70 features.

pub const STALL_STATS: [&str; 7] = ["minimum", "maximum", "mean", "std", "25%", "50%", "75%"];

pub const STALL_METRICS: [&str; 10] = [
    "RTT minimum",
    "RTT average",
    "RTT maximum",
    "BDP",
    "BIF average",
    "BIF maximum",
    "packet loss",
    "packet retransmissions",
    "chunk size",
    "chunk time",
];
