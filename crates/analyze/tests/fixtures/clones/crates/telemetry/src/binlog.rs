// Fixture: binary weblog constants mirrored into DESIGN.md.
pub const BINLOG_VERSION: u16 = 1;
pub const RECORD_FIXED_BYTES: usize = 105;
