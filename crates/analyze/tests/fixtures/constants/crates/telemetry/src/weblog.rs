// Fixture: tracked per-record overhead mirrored into DESIGN.md.
pub const RECORD_OVERHEAD_BYTES: u64 = 192;
