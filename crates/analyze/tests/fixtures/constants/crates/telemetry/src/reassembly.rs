// Fixture: per-session exactness cap mirrored into DESIGN.md.
pub const EXACT_ENTRY_CAP: usize = 4096;
