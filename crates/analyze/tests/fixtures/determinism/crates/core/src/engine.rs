//! Fixture: a parallel-engine reducer that merges shard outputs by
//! iterating a `HashMap` — the order-dependent bug class the live
//! engine avoids by keying every worker-side table on a `BTreeMap`.

use std::collections::{BTreeMap, HashMap};

pub fn nondeterministic_reduce() -> u64 {
    let mut per_shard: HashMap<usize, u64> = HashMap::new();
    per_shard.insert(0, 7);
    let mut merged = 0;
    for (_, v) in per_shard.iter() {
        merged += v;
    }
    merged
}

pub fn ordered_reduce_is_silent() -> u64 {
    let mut by_shard: BTreeMap<usize, u64> = BTreeMap::new();
    by_shard.insert(0, 7);
    by_shard.values().sum()
}

pub fn keyed_access_is_silent(per_subscriber: HashMap<u64, u64>) -> Option<u64> {
    per_subscriber.get(&3).copied()
}
