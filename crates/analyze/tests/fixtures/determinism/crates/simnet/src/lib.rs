//! Fixture: one seeded violation per determinism rule.

use std::collections::HashMap;

pub fn entropy_everywhere() -> u64 {
    let mut rng = rand::thread_rng();
    let t = std::time::Instant::now();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    counts.insert(1, 2);
    let mut total = 0;
    for (_, v) in counts.iter() {
        total += v;
    }
    total + t.elapsed().as_secs() + rng.next_u64()
}

pub fn allowed_wall_clock() -> std::time::Instant {
    // fixture exercises the escape hatch. analyze:allow(wall-clock)
    std::time::Instant::now()
}
