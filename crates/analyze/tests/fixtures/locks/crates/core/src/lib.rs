//! Locks fixture: one guard live across a channel send (shape 1), one
//! lock taken inside a spawned worker body (shape 2), plus clean and
//! allow-marked look-alikes that must stay silent.

fn ship(m: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = m.lock();
    tx.send(guard[0]).ok();
}

fn fan(out: &Mutex<Vec<u64>>) {
    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            out.lock().push(1);
        });
    })
    .ok();
}

fn ship_clean(m: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = m.lock();
    let v = guard[0];
    drop(guard);
    tx.send(v).ok();
}

fn ship_narrow(m: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let v = {
        let guard = m.lock();
        guard[0]
    };
    tx.send(v).ok();
}

fn ship_allowed(m: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = m.lock();
    // single consumer on a bounded queue. analyze:allow(lock-across-handoff)
    tx.send(guard[0]).ok();
}

fn io_read_is_not_a_lock(stream: &mut TcpStream, tx: &Sender<usize>) {
    let n = stream.read();
    tx.send(n).ok();
}

#[cfg(test)]
mod tests {
    fn tests_synchronize_however_they_like() {
        let g = m.lock();
        tx.send(*g).ok();
    }
}
