// Bounded-collections fixture: three persistent session tables, one
// violation. `open` grows forever (the seeded `unbounded-map` finding);
// `recent` is retained down; `delegated` is allow-marked.

use std::collections::BTreeMap;

pub struct SessionTable {
    open: BTreeMap<u64, u32>,
    recent: BTreeMap<u64, u32>,
    // analyze:allow(unbounded-map)
    delegated: BTreeMap<u64, u32>,
}

impl SessionTable {
    pub fn push(&mut self, id: u64) {
        self.open.insert(id, 0);
        self.recent.insert(id, 0);
        self.recent.retain(|_, v| *v > 0);
        self.delegated.insert(id, 0);
    }
}

pub fn scratch(ids: &[u64]) {
    // Local maps die with the frame: out of scope for the rule.
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for id in ids {
        *counts.entry(*id).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    pub struct Fixture {
        pub seen: std::collections::BTreeMap<u64, u32>,
    }
}
