//! Floatord fixture: a float reduction chained onto a HashMap walk
//! (shape 1) and a float `+=` inside a loop over one (shape 2), plus
//! ordered / integer / allow-marked look-alikes that must stay silent.

fn mean_score(scores: &HashMap<u64, f64>) -> f64 {
    scores.values().sum::<f64>() / scores.len() as f64
}

fn total_weight(weights: &HashMap<u32, f32>) -> f32 {
    let mut acc = 0.0f32;
    for (_k, w) in weights {
        acc += w;
    }
    acc
}

fn ordered_total(ranked: &BTreeMap<u64, f64>) -> f64 {
    ranked.values().sum::<f64>()
}

fn count_total(counts: &HashMap<u64, u64>) -> u64 {
    counts.values().sum::<u64>()
}

fn sorted_total(scores: &HashMap<u64, f64>) -> f64 {
    let mut keys: Vec<u64> = scores.keys().copied().collect();
    keys.sort_unstable();
    keys.iter().map(|k| scores[k]).sum::<f64>()
}

fn allowed_total(scores: &HashMap<u64, f64>) -> f64 {
    // re-sorted before comparison downstream. analyze:allow(float-reduce-order)
    scores.values().sum::<f64>()
}

#[cfg(test)]
mod tests {
    fn tests_may_sum_however_they_like(m: &HashMap<u64, f64>) -> f64 {
        m.values().sum::<f64>()
    }
}
