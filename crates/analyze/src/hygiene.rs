//! Pass 4 — workspace hygiene.
//!
//! Uniformity rules that keep the workspace's lint policy and
//! dependency graph centralised, checked for every member crate:
//!
//! * `lib-doc` — `src/lib.rs` opens with a `//!` crate doc comment;
//! * `missing-docs-attr` — `src/lib.rs` carries `#![warn(missing_docs)]`;
//! * `forbid-unsafe` — `src/lib.rs` carries `#![forbid(unsafe_code)]`;
//! * `workspace-lints` — `Cargo.toml` has a `[lints]` section with
//!   `workspace = true`;
//! * `workspace-dep` — every `[dependencies]`/`[dev-dependencies]`
//!   entry inherits from `[workspace.dependencies]` (`workspace =
//!   true`), so versions and vendor substitutions live in exactly one
//!   place.

use std::fs;
use std::path::Path;

use crate::walk::member_crates;
use crate::Finding;

/// Run the hygiene pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, dir) in member_crates(root) {
        check_manifest(&name, &dir, &mut findings);
        check_lib(&name, &dir, &mut findings);
    }
    findings
}

fn check_manifest(name: &str, dir: &Path, findings: &mut Vec<Finding>) {
    let manifest = format!("crates/{name}/Cargo.toml");
    let Ok(text) = fs::read_to_string(dir.join("Cargo.toml")) else {
        findings.push(Finding::new(
            &manifest,
            1,
            "workspace-lints",
            "cannot read crate manifest".to_string(),
        ));
        return;
    };
    if !section_lines(&text, "[lints]").any(|(_, l)| l == "workspace = true") {
        findings.push(Finding::new(
            &manifest,
            1,
            "workspace-lints",
            "missing `[lints]` section with `workspace = true`; the crate \
             opts out of the workspace lint policy"
                .to_string(),
        ));
    }
    for section in [
        "[dependencies]",
        "[dev-dependencies]",
        "[build-dependencies]",
    ] {
        for (lineno, line) in section_lines(&text, section) {
            if line.contains('=') && !line.contains("workspace = true") {
                findings.push(Finding::new(
                    &manifest,
                    lineno,
                    "workspace-dep",
                    format!(
                        "dependency `{}` does not use `workspace = true`; declare it \
                         in [workspace.dependencies] and inherit it",
                        line.split('=').next().unwrap_or(line).trim()
                    ),
                ));
            }
        }
    }
}

/// `(line_number, trimmed_line)` for every line inside a TOML section,
/// comments and blanks skipped.
fn section_lines<'a>(
    text: &'a str,
    header: &'a str,
) -> impl Iterator<Item = (usize, &'a str)> + 'a {
    let mut in_section = false;
    text.lines().enumerate().filter_map(move |(i, raw)| {
        let line = raw.trim();
        if line.starts_with('[') {
            in_section = line == header;
            return None;
        }
        if in_section && !line.is_empty() && !line.starts_with('#') {
            Some((i + 1, line))
        } else {
            None
        }
    })
}

fn check_lib(name: &str, dir: &Path, findings: &mut Vec<Finding>) {
    let lib = dir.join("src/lib.rs");
    let Ok(text) = fs::read_to_string(&lib) else {
        return; // bin-only crates have no library to check
    };
    let rel = format!("crates/{name}/src/lib.rs");
    if !text
        .lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim_start().starts_with("//!"))
    {
        findings.push(Finding::new(
            &rel,
            1,
            "lib-doc",
            "lib.rs must open with a `//!` crate-level doc comment".to_string(),
        ));
    }
    for (attr, rule) in [
        ("#![warn(missing_docs)]", "missing-docs-attr"),
        ("#![forbid(unsafe_code)]", "forbid-unsafe"),
    ] {
        if !text.contains(attr) {
            findings.push(Finding::new(
                &rel,
                1,
                rule,
                format!("lib.rs must carry `{attr}`"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_lines_respects_boundaries() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\n# a comment\nfoo = { workspace = true }\nbar = \"1.0\"\n\n[lints]\nworkspace = true\n";
        let deps: Vec<_> = section_lines(toml, "[dependencies]").collect();
        assert_eq!(
            deps,
            vec![(6, "foo = { workspace = true }"), (7, "bar = \"1.0\"")]
        );
        assert_eq!(
            section_lines(toml, "[lints]").collect::<Vec<_>>(),
            vec![(10, "workspace = true")]
        );
    }

    #[test]
    fn live_workspace_is_hygienic() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = check(&root);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
