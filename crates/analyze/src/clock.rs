//! Pass 6 — raw wall-clock lint.
//!
//! Since the observability layer (`vqoe-obs`), stage timing goes
//! through the `vqoe_obs::Clock` trait: deterministic crates drive a
//! `SimClock` tick counter, and only the allowlisted non-deterministic
//! surfaces (`crates/bench`, plus explicitly marked lines such as the
//! `vqoe` CLI's `WallClock`) may touch the OS clock. This pass enforces
//! the boundary *everywhere* — unlike the determinism pass's
//! `wall-clock` rule it also flags mentions of the raw types
//! (`std::time::Instant` fields, `SystemTime` imports), not just `now()`
//! calls, so a wall-clock handle cannot be smuggled into a deterministic
//! crate and read later (rule `raw-wall-clock`).
//!
//! `std::time::Duration` stays legal everywhere: a duration is plain
//! data, only *reading* a clock is non-deterministic.

use std::fs;
use std::path::Path;

use crate::lexer::{lex_file, Line};
use crate::walk::{member_crates, rel, rust_sources};
use crate::Finding;

/// Crates whose whole purpose is wall-clock measurement; every other
/// member crate (including binaries) must go through `vqoe_obs::Clock`
/// or carry an explicit `analyze:allow(raw-wall-clock)` marker.
pub(crate) const EXEMPT_CRATES: &[&str] = &["bench"];

/// Run the raw-wall-clock pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, dir) in member_crates(root) {
        if EXEMPT_CRATES.contains(&name.as_str()) {
            continue;
        }
        for file in rust_sources(&dir.join("src")) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = lex_file(&text);
            findings.extend(crate::filter_allows(
                raw_findings(&rel(root, &file), &lines),
                &lines,
            ));
        }
    }
    findings
}

/// Per-file findings *before* `analyze:allow` filtering.
pub(crate) fn raw_findings(file: &str, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if let Some(what) = raw_clock_use(&line.code) {
            findings.push(Finding::new(
                file,
                idx + 1,
                "raw-wall-clock",
                format!(
                    "raw OS clock `{what}` outside the allowlisted \
                     non-deterministic crates; implement or take a \
                     `vqoe_obs::Clock` instead"
                ),
            ));
        }
    }
    findings
}

/// The raw clock token this line touches, if any. `SystemTime` alone is
/// enough (it has no deterministic twin); `Instant` only counts when
/// the line ties it to `std::time` — the workspace's own
/// `vqoe_simnet::time::Instant` is the deterministic twin and must not
/// fire.
fn raw_clock_use(code: &str) -> Option<&'static str> {
    if contains_token(code, "SystemTime") {
        return Some("SystemTime");
    }
    if contains_token(code, "Instant") && code.contains("std::time") {
        return Some("std::time::Instant");
    }
    None
}

/// Substring match with identifier boundaries on both sides (same rule
/// as the determinism pass).
fn contains_token(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1]);
        let end = at + pat.len();
        let after_ok = end >= code.len() || !is_ident_char(code.as_bytes()[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + pat.len();
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        crate::filter_allows(raw_findings("x.rs", &lines), &lines)
    }

    #[test]
    fn std_time_instant_is_flagged() {
        let f = findings_in("struct W { origin: std::time::Instant }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-wall-clock");
        let f = findings_in("let t = std::time::Instant::now();\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn system_time_is_flagged_even_unqualified() {
        let f = findings_in("use std::time::SystemTime;\n");
        assert_eq!(f.len(), 1);
        let f = findings_in("let t = SystemTime::now();\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SystemTime"));
    }

    #[test]
    fn simnet_instant_and_durations_are_fine() {
        assert!(findings_in("use vqoe_simnet::time::Instant;\n").is_empty());
        assert!(findings_in("let i: Instant = Instant::ZERO;\n").is_empty());
        assert!(
            findings_in("std::thread::sleep(std::time::Duration::from_micros(3));\n").is_empty()
        );
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "// analyze:allow(raw-wall-clock)\nlet t: std::time::Instant = x;\n";
        assert!(findings_in(src).is_empty());
        let src = "let t: std::time::Instant = x; // analyze:allow(raw-wall-clock)\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// a std::time::Instant would be wrong here\nlet s = \"SystemTime\";\n";
        assert!(findings_in(src).is_empty());
    }
}
