//! Pass 10 — stale-allow lint.
//!
//! `analyze:allow(rule)` markers are the escape hatch for every
//! line-level rule, and escape hatches rot: the flagged code gets
//! refactored away and the suppression stays, silently masking the next
//! real finding on that line. Rule `stale-allow` closes the loop — a
//! marker is **stale** when the rule it names no longer fires (before
//! allow filtering) on any line the marker covers (its own line and the
//! one below).
//!
//! Scope of the staleness check:
//!
//! * only *line-verifiable* rules are checked — markers naming
//!   manifest/workspace-level rules (`const-*`, `workspace-*`,
//!   `lib-doc`, …) are left alone, since their liveness is not a
//!   property of one line;
//! * markers naming a rule this analyzer has never heard of are always
//!   reported (typos rot fastest);
//! * doc comments (`///`, `//!`) that merely *mention* the marker
//!   syntax are ignored — they document the hatch, they do not open it;
//! * `analyze:allow(stale-allow)` markers are exempt from their own
//!   rule (they are the escape hatch's escape hatch) and can suppress a
//!   stale-marker report on the same line.

use std::path::Path;

use crate::lexer::Line;
use crate::walk::{crate_dirs, rel, rust_sources};
use crate::Finding;

/// Run the stale-allow pass over the workspace at `root`. Staleness is
/// judged against the full per-file analysis (a marker is live exactly
/// when its rule fires before allow filtering), so this drives
/// [`crate::analyze_file`] and keeps only the stale-allow findings.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (_name, dir) in crate_dirs(root) {
        for file in rust_sources(&dir.join("src")) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            findings.extend(
                crate::analyze_file(&rel(root, &file), &text)
                    .into_iter()
                    .filter(|f| f.rule == "stale-allow"),
            );
        }
    }
    findings
}

/// Run the stale-allow check for one file, given the union of every
/// line-level pass's findings *before* allow filtering.
pub(crate) fn raw_findings(file: &str, lines: &[Line], raw: &[Finding]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (li, line) in lines.iter().enumerate() {
        if is_doc_comment(&line.comment) {
            continue;
        }
        for rule in parse_markers(&line.comment) {
            if rule == "stale-allow" {
                continue;
            }
            if !crate::is_known_rule(&rule) {
                findings.push(Finding::new(
                    file,
                    li + 1,
                    "stale-allow",
                    format!(
                        "`analyze:allow({rule})` names a rule this analyzer \
                         does not have; fix the typo or delete the marker"
                    ),
                ));
                continue;
            }
            if !crate::is_line_rule(&rule) {
                continue;
            }
            // The marker covers its own line and the next (1-based
            // li+1 and li+2).
            let covered = [li + 1, li + 2];
            let live = raw
                .iter()
                .any(|f| f.rule == rule && covered.contains(&f.line));
            if !live {
                findings.push(Finding::new(
                    file,
                    li + 1,
                    "stale-allow",
                    format!(
                        "`analyze:allow({rule})` no longer suppresses anything \
                         (rule `{rule}` does not fire on this line or the \
                         next); delete the stale marker"
                    ),
                ));
            }
        }
    }
    findings
}

/// Is this the comment text of a doc comment? The lexer strips the
/// leading `//`, so `///` leaves `/…`, `//!` leaves `!…`, and `/** */`
/// leaves `*…`.
fn is_doc_comment(comment: &str) -> bool {
    comment.starts_with('/') || comment.starts_with('!') || comment.starts_with('*')
}

/// Rules named by `analyze:allow(...)` markers in this comment text.
fn parse_markers(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("analyze:allow(") {
        rest = &rest[pos + "analyze:allow(".len()..];
        if let Some(end) = rest.find(')') {
            out.push(rest[..end].trim().to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    /// Run the pass the way the driver does: raw line findings from the
    /// panic pass feed the staleness check, then allow filtering.
    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        let raw = crate::panics::raw_findings("x.rs", &lines);
        crate::filter_allows(raw_findings("x.rs", &lines, &raw), &lines)
    }

    #[test]
    fn live_marker_is_fine() {
        let src = "// checked by caller. analyze:allow(unwrap)\nlet x = v.first().unwrap();\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn dead_marker_is_flagged() {
        let src = "// analyze:allow(unwrap)\nlet x = 42;\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stale-allow");
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let src = "// analyze:allow(no-such-rule)\nlet x = 1;\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no-such-rule"));
    }

    #[test]
    fn doc_comment_mentions_are_ignored() {
        let src = "//! Use `analyze:allow(unwrap)` markers sparingly.\n/// See analyze:allow(panic).\nlet x = 1;\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn manifest_level_rules_are_not_staleness_checked() {
        let src = "// analyze:allow(workspace-lints)\nlet x = 1;\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn stale_allow_marker_can_suppress_itself() {
        let src = "// analyze:allow(stale-allow) analyze:allow(unwrap)\nlet x = 1;\n";
        assert!(findings_in(src).is_empty());
    }
}
