//! Grandfathered-findings baseline.
//!
//! New passes have to be able to land before every old finding they
//! surface is fixed — otherwise the gate blocks its own improvement.
//! The committed `analyze-baseline.toml` records known debt as
//! `(file, rule) -> count` entries; at gate time the first `count`
//! findings of that file/rule pair are *grandfathered* (reported, but
//! not fatal) and anything beyond the count is **new** and fails the
//! gate. Shrinking counts is the only allowed edit direction in review:
//! the baseline is a ratchet, not a dumping ground.
//!
//! The format is a strict subset of TOML (parsed by hand — the analyzer
//! depends on nothing):
//!
//! ```toml
//! [[entry]]
//! file = "crates/core/src/engine.rs"
//! rule = "clone-heavy-handoff"
//! count = 2
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use crate::Finding;

/// Grandfathered counts keyed by `(file, rule)`.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// A findings list split against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Applied {
    /// Findings not covered by the baseline — these fail the gate.
    pub fresh: Vec<Finding>,
    /// Findings absorbed by baseline entries.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries whose debt has (partly) been paid: the counts
    /// on file no longer match any finding. Shrink or delete them.
    pub stale_entries: Vec<(String, String, usize)>,
}

impl Baseline {
    /// Load a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parse baseline text (the TOML subset described in the module
    /// docs). Unknown keys and malformed lines are errors: a gate file
    /// that is silently half-read is worse than one that fails loudly.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<usize>)> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut current, &mut entries, ln)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", ln + 1));
            };
            let Some(cur) = current.as_mut() else {
                return Err(format!("line {}: key outside [[entry]]", ln + 1));
            };
            match key.trim() {
                "file" => cur.0 = Some(unquote(value.trim(), ln)?),
                "rule" => cur.1 = Some(unquote(value.trim(), ln)?),
                "count" => {
                    cur.2 = Some(value.trim().parse::<usize>().map_err(|_| {
                        format!("line {}: count must be a non-negative integer", ln + 1)
                    })?)
                }
                other => return Err(format!("line {}: unknown key `{other}`", ln + 1)),
            }
        }
        let end = text.lines().count();
        flush(&mut current, &mut entries, end)?;
        Ok(Baseline { entries })
    }

    /// Number of `(file, rule)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no debt is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split `findings` into fresh vs grandfathered. For each
    /// `(file, rule)` pair the first `count` findings (in the already
    /// sorted order) are grandfathered; the rest are fresh.
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut out = Applied::default();
        for f in findings {
            let key = (f.file.clone(), f.rule.clone());
            let budget = self.entries.get(&key).copied().unwrap_or(0);
            let used_so_far = used.entry(key).or_insert(0);
            if *used_so_far < budget {
                *used_so_far += 1;
                out.grandfathered.push(f);
            } else {
                out.fresh.push(f);
            }
        }
        for (key, &count) in &self.entries {
            let consumed = used.get(key).copied().unwrap_or(0);
            if consumed < count {
                out.stale_entries
                    .push((key.0.clone(), key.1.clone(), count - consumed));
            }
        }
        out
    }

    /// Render `findings` as a baseline file (for `--write-baseline`).
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((&f.file, &f.rule)).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# vqoe-analyze baseline: grandfathered findings, keyed by (file, rule).\n\
             # New findings beyond these counts fail the gate. Counts may only\n\
             # shrink — pay the debt down, never add to it.\n",
        );
        for ((file, rule), count) in counts {
            out.push_str(&format!(
                "\n[[entry]]\nfile = \"{file}\"\nrule = \"{rule}\"\ncount = {count}\n"
            ));
        }
        out
    }
}

fn flush(
    current: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
    entries: &mut BTreeMap<(String, String), usize>,
    ln: usize,
) -> Result<(), String> {
    let Some((file, rule, count)) = current.take() else {
        return Ok(());
    };
    match (file, rule, count) {
        (Some(f), Some(r), Some(c)) => {
            entries.insert((f, r), c);
            Ok(())
        }
        _ => Err(format!(
            "line {}: [[entry]] needs file, rule and count",
            ln + 1
        )),
    }
}

fn unquote(s: &str, ln: usize) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {}: expected a double-quoted string", ln + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_findings() -> Vec<Finding> {
        vec![
            Finding::new("a.rs", 1, "unwrap", "m"),
            Finding::new("a.rs", 5, "unwrap", "m"),
            Finding::new("b.rs", 2, "expect", "m"),
        ]
    }

    #[test]
    fn roundtrip_through_render_and_parse() {
        let rendered = Baseline::render(&sample_findings());
        let parsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(parsed.len(), 2);
        let applied = parsed.apply(sample_findings());
        assert!(applied.fresh.is_empty(), "{:?}", applied.fresh);
        assert_eq!(applied.grandfathered.len(), 3);
        assert!(applied.stale_entries.is_empty());
    }

    #[test]
    fn findings_beyond_the_count_are_fresh() {
        let b =
            Baseline::parse("[[entry]]\nfile = \"a.rs\"\nrule = \"unwrap\"\ncount = 1\n").unwrap();
        let applied = b.apply(sample_findings());
        assert_eq!(applied.grandfathered.len(), 1);
        assert_eq!(applied.fresh.len(), 2);
        // The first (lowest-line) finding is the grandfathered one.
        assert_eq!(applied.grandfathered[0].line, 1);
    }

    #[test]
    fn paid_down_debt_is_reported_stale() {
        let b = Baseline::parse("[[entry]]\nfile = \"gone.rs\"\nrule = \"unwrap\"\ncount = 3\n")
            .unwrap();
        let applied = b.apply(vec![]);
        assert_eq!(applied.stale_entries.len(), 1);
        assert_eq!(applied.stale_entries[0].2, 3);
    }

    #[test]
    fn missing_file_is_an_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/analyze-baseline.toml")).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn malformed_input_fails_loudly() {
        assert!(Baseline::parse("file = \"a.rs\"\n").is_err());
        assert!(Baseline::parse("[[entry]]\nfile = \"a.rs\"\n").is_err());
        assert!(Baseline::parse("[[entry]]\nfile = a.rs\nrule = \"r\"\ncount = 1\n").is_err());
        assert!(Baseline::parse("[[entry]]\nfile = \"a\"\nrule = \"r\"\ncount = -1\n").is_err());
        assert!(Baseline::parse("[[entry]]\nnope = 3\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b =
            Baseline::parse("# header\n\n[[entry]]\nfile = \"a.rs\"\nrule = \"r\"\ncount = 2\n")
                .unwrap();
        assert_eq!(b.len(), 1);
    }
}
