//! Pass 8 — float-reduction-order lint.
//!
//! Float addition is not associative: summing the same `f64` values in
//! two different orders can differ in the last bits, and those bits are
//! exactly what the byte-identity contract (DESIGN.md §9/§10) promises
//! never change. An accumulation whose *source order* is a `HashMap` /
//! `HashSet` walk is therefore order-nondeterministic twice over — per
//! process (`RandomState`) and per refactor. Rule `float-reduce-order`
//! flags:
//!
//! * a `.sum()` / `.fold(` / `.product(` chain over an unordered
//!   collection when the element type is floating-point;
//! * a `+=` float accumulation inside a `for` loop whose header
//!   iterates an unordered collection.
//!
//! Integer reductions over the same walks are commutative and already
//! covered (and allowed case-by-case) by the `hashmap-iter` rule; this
//! pass carries the float-specific signal so the fix ("sort the keys,
//! or reduce in job-index order") lands where the bits actually rot.
//! Test code is exempt, matching `hashmap-iter`.

use std::fs;
use std::path::Path;

use crate::lexer::{lex_file, Line};
use crate::tree::TokenTree;
use crate::walk::{crate_dirs, rel, rust_sources};
use crate::Finding;

/// Reduction chain methods whose result depends on operand order for
/// floats. Matched as `.sum(` or turbofish `.sum::<`.
const REDUCE_METHODS: &[&str] = &[".sum", ".fold", ".product"];

/// The first reduction method invoked (plain or turbofish) in `code`.
fn reduce_method(code: &str) -> Option<&'static str> {
    REDUCE_METHODS.iter().copied().find(|m| {
        code.match_indices(*m).any(|(i, _)| {
            let rest = &code[i + m.len()..];
            rest.starts_with('(') || rest.starts_with("::<")
        })
    })
}

/// Run the float-reduction-order pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (_name, dir) in crate_dirs(root) {
        for file in rust_sources(&dir.join("src")) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = lex_file(&text);
            let tree = TokenTree::build(&lines);
            findings.extend(crate::filter_allows(
                raw_findings(&rel(root, &file), &lines, &tree),
                &lines,
            ));
        }
    }
    findings
}

/// Per-file findings *before* `analyze:allow` filtering.
pub(crate) fn raw_findings(file: &str, lines: &[Line], tree: &TokenTree) -> Vec<Finding> {
    let mut findings = Vec::new();
    let unordered = unordered_names(lines, tree);
    if unordered.is_empty() {
        return findings;
    }

    for (li, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        // Shape 1: reduction chain directly over the unordered walk.
        for (name, floaty) in &unordered {
            if !walks(&line.code, name) {
                continue;
            }
            if let Some(m) = reduce_method(&line.code) {
                if *floaty || float_hint(&line.code) {
                    findings.push(Finding::new(
                        file,
                        li + 1,
                        "float-reduce-order",
                        format!(
                            "float reduction `{}` over `{name}` accumulates in \
                             random RandomState order, so the low bits differ \
                             per process; walk sorted keys (or a BTreeMap) so \
                             the reduction order is fixed",
                            m.trim_start_matches('.')
                        ),
                    ));
                }
            }
        }
    }

    // Shape 2: `for` loop over the unordered walk with a float `+=` in
    // the body.
    for scope in &tree.scopes {
        let header = scope.header.trim_start();
        if !header.starts_with("for ") {
            continue;
        }
        let Some((name, _)) = unordered.iter().find(|(n, _)| walks(&scope.header, n)) else {
            continue;
        };
        for (li, line) in lines
            .iter()
            .enumerate()
            .take(scope.end + 1)
            .skip(scope.start)
        {
            if line.in_test || !line.code.contains("+=") {
                continue;
            }
            let acc_is_float = line
                .code
                .split("+=")
                .next()
                .and_then(trailing_ident)
                .map(|acc| {
                    tree.live_bindings(&acc, li)
                        .iter()
                        .any(|b| float_hint(&b.ty) || float_hint(&b.init))
                })
                .unwrap_or(false);
            if acc_is_float || float_hint(&line.code) {
                findings.push(Finding::new(
                    file,
                    li + 1,
                    "float-reduce-order",
                    format!(
                        "float `+=` accumulation inside a loop over `{name}` \
                         adds in random RandomState order, so the low bits \
                         differ per process; iterate sorted keys (or a \
                         BTreeMap) so the sum order is fixed"
                    ),
                ));
            }
        }
    }
    findings
}

/// Unordered collections visible in this file: `let` bindings, struct
/// fields and parameters typed (or initialized as) `HashMap`/`HashSet`.
/// The flag records whether the declaration itself shows a float
/// element type. Names are collected file-wide, so a name that is
/// *also* declared with an ordered type (`BTreeMap`/`BTreeSet`)
/// somewhere in the file is dropped — the pass cannot tell which
/// declaration a given walk refers to, and a deny rule must not guess.
fn unordered_names(lines: &[Line], tree: &TokenTree) -> Vec<(String, bool)> {
    let mut out: Vec<(String, bool)> = Vec::new();
    let mut ordered: Vec<String> = Vec::new();
    for b in &tree.bindings {
        if b.ty.contains("HashMap") || b.ty.contains("HashSet") {
            out.push((b.name.clone(), float_hint(&b.ty)));
        } else if b.init.contains("HashMap") || b.init.contains("HashSet") {
            out.push((b.name.clone(), float_hint(&b.init)));
        }
        if b.ty.contains("BTreeMap")
            || b.ty.contains("BTreeSet")
            || b.init.contains("BTreeMap")
            || b.init.contains("BTreeSet")
        {
            ordered.push(b.name.clone());
        }
    }
    // `name: HashMap<...>` / `name: &HashMap<...>` — fields and params.
    for line in lines {
        let code = &line.code;
        for (kind, is_ordered) in [
            ("HashMap<", false),
            ("HashSet<", false),
            ("BTreeMap<", true),
            ("BTreeSet<", true),
        ] {
            let mut start = 0;
            while let Some(p) = code[start..].find(kind) {
                let at = start + p;
                let head = code[..at].trim_end();
                let head = head.strip_suffix("&mut").unwrap_or(head).trim_end();
                let head = head.strip_suffix('&').unwrap_or(head).trim_end();
                if let Some(h) = head.strip_suffix(':') {
                    if let Some(name) = trailing_ident(h) {
                        if is_ordered {
                            ordered.push(name);
                        } else {
                            let floaty = float_hint(&code[at..]);
                            out.push((name, floaty));
                        }
                    }
                }
                start = at + kind.len();
            }
        }
    }
    out.retain(|(n, _)| !ordered.contains(n));
    out.sort();
    out.dedup();
    // A name declared floaty anywhere counts as floaty everywhere.
    let floaty: Vec<String> = out
        .iter()
        .filter(|(_, f)| *f)
        .map(|(n, _)| n.clone())
        .collect();
    out.dedup_by(|a, b| a.0 == b.0);
    for entry in &mut out {
        if floaty.contains(&entry.0) {
            entry.1 = true;
        }
    }
    out
}

/// Does `code` walk the elements of `name` (iterator method or `for`
/// header)?
fn walks(code: &str, name: &str) -> bool {
    for m in [
        ".iter()",
        ".keys()",
        ".values()",
        ".into_iter()",
        ".into_values()",
        ".drain(",
    ] {
        if code.contains(&format!("{name}{m}")) {
            return true;
        }
    }
    if let Some(pos) = code.find(" in ") {
        let rest = code[pos + 4..].trim_start();
        let rest = rest.strip_prefix("&mut ").unwrap_or(rest);
        let rest = rest.strip_prefix('&').unwrap_or(rest);
        let rest = rest.strip_prefix("self.").unwrap_or(rest);
        if rest == name
            || (rest.starts_with(name)
                && rest[name.len()..].starts_with(|c: char| " ({".contains(c)))
        {
            return true;
        }
    }
    false
}

/// Does this text show a floating-point element: an `f64`/`f32` token
/// or a float literal?
fn float_hint(s: &str) -> bool {
    for pat in ["f64", "f32"] {
        let mut start = 0;
        while let Some(p) = s[start..].find(pat) {
            let at = start + p;
            let before_ok = at == 0 || {
                let b = s.as_bytes()[at - 1];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            let end = at + pat.len();
            let after_ok = end >= s.len() || {
                let b = s.as_bytes()[end];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            if before_ok && after_ok {
                return true;
            }
            start = at + pat.len();
        }
    }
    // A `1.0`-style literal.
    let b = s.as_bytes();
    for i in 1..b.len().saturating_sub(1) {
        if b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit() {
            return true;
        }
    }
    false
}

fn trailing_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let start = trimmed
        .char_indices()
        .rev()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(0, |(i, c)| i + c.len_utf8());
    if start == trimmed.len() {
        None
    } else {
        Some(trimmed[start..].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        let tree = TokenTree::build(&lines);
        crate::filter_allows(raw_findings("x.rs", &lines, &tree), &lines)
    }

    #[test]
    fn sum_over_hashmap_values_is_flagged() {
        let src =
            "fn f(scores: &HashMap<u64, f64>) -> f64 {\n    scores.values().sum::<f64>()\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "float-reduce-order");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn float_accumulation_in_for_loop_is_flagged() {
        let src = "fn f(weights: &HashMap<u32, f32>) -> f32 {\n    let mut acc = 0.0f32;\n    for (_k, w) in weights {\n        acc += w;\n    }\n    acc\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn integer_reduction_is_fine() {
        let src =
            "fn f(counts: &HashMap<u64, u64>) -> u64 {\n    counts.values().sum::<u64>()\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn name_shared_with_an_ordered_declaration_is_not_flagged() {
        // `scores` is a HashMap in one function and a BTreeMap in
        // another; the file-global name table cannot tell which one a
        // walk uses, so it must stay silent on both.
        let src = "fn a(scores: &HashMap<u64, f64>) -> usize {\n    scores.len()\n}\nfn b(scores: &BTreeMap<u64, f64>) -> f64 {\n    scores.values().sum::<f64>()\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn btreemap_reduction_is_fine() {
        let src =
            "fn f(scores: &BTreeMap<u64, f64>) -> f64 {\n    scores.values().sum::<f64>()\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn sorted_key_walk_is_fine() {
        let src = "fn f(scores: &HashMap<u64, f64>) -> f64 {\n    let mut keys: Vec<u64> = scores.keys().copied().collect();\n    keys.sort_unstable();\n    keys.iter().map(|k| scores[k]).sum::<f64>()\n}\n";
        // Only the unsorted `.keys()` collect is a walk; it carries no
        // reduction, so nothing fires.
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f(scores: &HashMap<u64, f64>) -> f64 {\n    // merged deterministically downstream. analyze:allow(float-reduce-order)\n    scores.values().sum::<f64>()\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(m: &HashMap<u64, f64>) -> f64 { m.values().sum::<f64>() }\n}\n";
        assert!(findings_in(src).is_empty());
    }
}
