//! Diagnostic rendering: human-readable text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (a few dozen lines) because the
//! analyzer must not depend on anything — not even the workspace's own
//! vendored `serde_json` — so it keeps building when everything else is
//! broken. SARIF output shares the same escaping helper (see
//! [`crate::sarif`]).

use crate::{severity_of, Finding, Severity};

/// `file:line: [rule] message`, one finding per line (warn-severity
/// findings carry a `warning:` prefix), plus a summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    let mut warnings = 0usize;
    for f in findings {
        let prefix = match severity_of(&f.rule) {
            Severity::Deny => "",
            Severity::Warn => {
                warnings += 1;
                "warning: "
            }
        };
        out.push_str(&format!(
            "{}:{}: {}[{}] {}\n",
            f.file, f.line, prefix, f.rule, f.message
        ));
    }
    let violations = findings.len() - warnings;
    if findings.is_empty() {
        out.push_str("vqoe-analyze: all checks passed\n");
    } else if warnings == 0 {
        out.push_str(&format!("vqoe-analyze: {violations} violation(s)\n"));
    } else {
        out.push_str(&format!(
            "vqoe-analyze: {violations} violation(s), {warnings} warning(s)\n"
        ));
    }
    out
}

/// `{"count": N, "findings": [{"file", "line", "rule", "severity",
/// "message"}, ...]}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let severity = match severity_of(&f.rule) {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}}}",
            json_string(&f.file),
            f.line,
            json_string(&f.rule),
            json_string(severity),
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding::new(
            "crates/x/src/lib.rs",
            7,
            "unwrap",
            "a \"quoted\" message",
        )]
    }

    #[test]
    fn text_format_is_file_line_rule_message() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/lib.rs:7: [unwrap] a \"quoted\" message"));
        assert!(text.contains("1 violation(s)"));
    }

    #[test]
    fn warn_findings_are_prefixed_and_counted_separately() {
        let findings = vec![
            Finding::new("a.rs", 1, "unwrap", "m"),
            Finding::new("a.rs", 2, "clone-heavy-handoff", "m"),
        ];
        let text = render_text(&findings);
        assert!(text.contains("a.rs:2: warning: [clone-heavy-handoff]"));
        assert!(text.contains("1 violation(s), 1 warning(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"severity\": \"deny\""));
    }

    #[test]
    fn empty_report_is_valid() {
        assert!(render_text(&[]).contains("all checks passed"));
        assert!(render_json(&[]).contains("\"findings\": []"));
    }
}
