//! Diagnostic rendering: human-readable text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (a few dozen lines) because the
//! analyzer must not depend on anything — not even the workspace's own
//! vendored `serde_json` — so it keeps building when everything else is
//! broken.

use crate::Finding;

/// `file:line: [rule] message`, one finding per line, plus a summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str("vqoe-analyze: all checks passed\n");
    } else {
        out.push_str(&format!("vqoe-analyze: {} violation(s)\n", findings.len()));
    }
    out
}

/// `{"count": N, "findings": [{"file", "line", "rule", "message"}, ...]}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&f.file),
            f.line,
            json_string(&f.rule),
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding::new(
            "crates/x/src/lib.rs",
            7,
            "unwrap",
            "a \"quoted\" message",
        )]
    }

    #[test]
    fn text_format_is_file_line_rule_message() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/lib.rs:7: [unwrap] a \"quoted\" message"));
        assert!(text.contains("1 violation(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("\"line\": 7"));
    }

    #[test]
    fn empty_report_is_valid() {
        assert!(render_text(&[]).contains("all checks passed"));
        assert!(render_json(&[]).contains("\"findings\": []"));
    }
}
