//! Incremental analysis cache.
//!
//! The line-level passes are a pure function of `(relative path, file
//! content)` — crate scoping is derived from the path, and every
//! cross-line heuristic (map names, scope ranges, stale markers) lives
//! inside one file. That makes per-file memoization sound: the cache
//! maps `(path, FNV-1a(content))` to the file's findings, keyed under a
//! ruleset version so any rule change invalidates everything at once.
//! Only the cross-file passes (`constants`, `hygiene` — cheap by
//! construction) always run fresh.
//!
//! The on-disk format is a line-oriented text file (no dependencies,
//! deterministic ordering via `BTreeMap`); a corrupt or version-skewed
//! cache is simply discarded — the cache can only ever cost a rerun,
//! never a wrong answer.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::Finding;

/// Bump on any change to rules, severities, or pass scoping: stale
/// logic must never serve cached findings.
pub const RULESET_VERSION: &str = "ten-passes-v1";

const MAGIC: &str = "vqoe-analyze-cache";

#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    findings: Vec<Finding>,
}

/// A loaded (or empty) per-file findings cache.
#[derive(Debug, Default)]
pub struct Cache {
    path: PathBuf,
    entries: BTreeMap<String, Entry>,
    touched: BTreeSet<String>,
    hits: usize,
    misses: usize,
}

impl Cache {
    /// Load the cache at `path`; missing, corrupt, or version-skewed
    /// files yield an empty cache.
    pub fn load(path: &Path) -> Cache {
        let mut cache = Cache {
            path: path.to_path_buf(),
            ..Cache::default()
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return cache;
        };
        let expected = format!("{MAGIC} 1 {RULESET_VERSION}");
        if header != expected {
            return cache;
        }
        while let Some(meta) = lines.next() {
            // `<hex hash> <n findings> <path>`
            let mut parts = meta.splitn(3, ' ');
            let (Some(hash), Some(n), Some(path)) = (parts.next(), parts.next(), parts.next())
            else {
                return cache;
            };
            let (Ok(hash), Ok(n)) = (u64::from_str_radix(hash, 16), n.parse::<usize>()) else {
                return cache;
            };
            let mut findings = Vec::with_capacity(n);
            for _ in 0..n {
                let Some(rec) = lines.next() else {
                    return cache;
                };
                let mut f = rec.splitn(3, '\t');
                let (Some(line), Some(rule), Some(msg)) = (f.next(), f.next(), f.next()) else {
                    return cache;
                };
                let Ok(line) = line.parse::<usize>() else {
                    return cache;
                };
                findings.push(Finding::new(path, line, rule, unescape(msg)));
            }
            cache
                .entries
                .insert(path.to_string(), Entry { hash, findings });
        }
        cache
    }

    /// The findings for `(rel, text)`: served from the cache when the
    /// content hash matches, computed via `compute` otherwise.
    pub fn get_or_compute(
        &mut self,
        rel: &str,
        text: &str,
        compute: impl FnOnce() -> Vec<Finding>,
    ) -> Vec<Finding> {
        let hash = fnv1a(text.as_bytes());
        self.touched.insert(rel.to_string());
        if let Some(entry) = self.entries.get(rel) {
            if entry.hash == hash {
                self.hits += 1;
                return entry.findings.clone();
            }
        }
        self.misses += 1;
        let findings = compute();
        self.entries.insert(
            rel.to_string(),
            Entry {
                hash,
                findings: findings.clone(),
            },
        );
        findings
    }

    /// Cache hits served this run.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Files that had to be analyzed this run.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Persist the cache, pruning entries for files this run never
    /// touched (deleted or renamed sources). Errors are returned, not
    /// fatal: a gate that cannot write its cache still gates.
    pub fn save(&self) -> std::io::Result<()> {
        let mut out = format!("{MAGIC} 1 {RULESET_VERSION}\n");
        for (path, entry) in &self.entries {
            if !self.touched.contains(path) {
                continue;
            }
            out.push_str(&format!(
                "{:016x} {} {}\n",
                entry.hash,
                entry.findings.len(),
                path
            ));
            for f in &entry.findings {
                out.push_str(&format!("{}\t{}\t{}\n", f.line, f.rule, escape(&f.message)));
            }
        }
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&self.path, out)
    }
}

/// FNV-1a, the standard 64-bit offset/prime pair.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "vqoe-analyze-cache-test-{tag}-{}",
            std::process::id()
        ))
    }

    #[test]
    fn second_lookup_with_same_content_hits() {
        let mut c = Cache::default();
        let compute = || vec![Finding::new("a.rs", 3, "unwrap", "msg")];
        let first = c.get_or_compute("a.rs", "fn f() {}", compute);
        let second = c.get_or_compute("a.rs", "fn f() {}", || panic!("must not recompute"));
        assert_eq!(first, second);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn changed_content_misses() {
        let mut c = Cache::default();
        c.get_or_compute("a.rs", "v1", Vec::new);
        c.get_or_compute("a.rs", "v2", Vec::new);
        assert_eq!((c.hits(), c.misses()), (0, 2));
    }

    #[test]
    fn roundtrips_through_disk() {
        let path = temp_path("roundtrip");
        let mut c = Cache::load(&path);
        c.get_or_compute("a.rs", "text", || {
            vec![Finding::new("a.rs", 1, "unwrap", "tab\tand\nnewline")]
        });
        c.save().unwrap();
        let mut reloaded = Cache::load(&path);
        let got = reloaded.get_or_compute("a.rs", "text", || panic!("must hit"));
        assert_eq!(got[0].message, "tab\tand\nnewline");
        assert_eq!(reloaded.hits(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn untouched_entries_are_pruned_on_save() {
        let path = temp_path("prune");
        let mut c = Cache::load(&path);
        c.get_or_compute("keep.rs", "x", Vec::new);
        c.get_or_compute("gone.rs", "y", Vec::new);
        c.save().unwrap();
        let mut second = Cache::load(&path);
        second.get_or_compute("keep.rs", "x", || panic!("must hit"));
        second.save().unwrap();
        let third = Cache::load(&path);
        assert_eq!(third.entries.len(), 1);
        assert!(third.entries.contains_key("keep.rs"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_or_skewed_cache_is_discarded() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "vqoe-analyze-cache 1 other-version\njunk\n").unwrap();
        let c = Cache::load(&path);
        assert!(c.entries.is_empty());
        std::fs::write(&path, "not a cache at all").unwrap();
        let c = Cache::load(&path);
        assert!(c.entries.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
