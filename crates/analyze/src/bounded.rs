//! Pass 5 — bounded-collections lint.
//!
//! The online assessor keys long-lived state by subscriber id; on a
//! hostile tap (spoofed or colliding ids, mid-session cuts) any map
//! that only ever grows is a memory-exhaustion bug waiting for traffic.
//! This pass flags struct fields typed `BTreeMap`/`HashMap` in the
//! deterministic crates — the persistent session tables of streaming
//! code — unless the same file's non-test code also *evicts* from the
//! field (rule `unbounded-map`). A call to any of `remove`, `retain`,
//! `clear`, `pop_first`, `pop_last`, or a `mem::take`/`mem::replace` of
//! the field counts as eviction.
//!
//! Local `let` bindings and function parameters are deliberately out of
//! scope: a map that dies with its stack frame cannot leak across
//! entries. The heuristic is line-based like the other passes, so
//! genuinely bounded designs it cannot see (e.g. eviction hidden behind
//! a helper type) use `// analyze:allow(unbounded-map)` on the field.

use std::fs;
use std::path::Path;

use crate::lexer::{lex_file, Line};
use crate::walk::{rel, rust_sources};
use crate::{Finding, DETERMINISM_CRATES};

/// Method calls on a map that shrink or empty it.
const EVICT_METHODS: &[&str] = &[
    ".remove(",
    ".retain(",
    ".clear(",
    ".pop_first(",
    ".pop_last(",
];

/// Run the bounded-collections pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for name in DETERMINISM_CRATES {
        let src = root.join("crates").join(name).join("src");
        for file in rust_sources(&src) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = lex_file(&text);
            findings.extend(crate::filter_allows(
                raw_findings(&rel(root, &file), &lines),
                &lines,
            ));
        }
    }
    findings
}

/// Per-file findings *before* `analyze:allow` filtering.
pub(crate) fn raw_findings(file: &str, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some((name, kind)) = map_field(line) else {
            continue;
        };
        if has_eviction(lines, &name) {
            continue;
        }
        findings.push(Finding::new(
            file,
            idx + 1,
            "unbounded-map",
            format!(
                "struct field `{name}` is a {kind} with no eviction in this \
                 file (`remove`/`retain`/`clear`/`pop_first`/`mem::take`); a \
                 per-key table that only grows leaks on a hostile stream — \
                 bound it, or mark `// analyze:allow(unbounded-map)` if a \
                 helper owns the eviction"
            ),
        ));
    }
    findings
}

/// Is this line a struct-field map declaration? Returns the field name
/// and the map kind. Fields look like `name: HashMap<K, V>,`; `let`
/// bindings and `fn` signatures (parameters, return types) are skipped
/// because their maps do not outlive a call.
fn map_field(line: &Line) -> Option<(String, &'static str)> {
    if line.in_test {
        return None;
    }
    let code = &line.code;
    let kind = if code.contains(": BTreeMap<") {
        "BTreeMap"
    } else if code.contains(": HashMap<") {
        "HashMap"
    } else {
        return None;
    };
    if !code.trim_end().ends_with(',') {
        return None;
    }
    if contains_token(code, "let") || contains_token(code, "fn") {
        return None;
    }
    let pos = code.find(&format!(": {kind}<"))?;
    trailing_ident(&code[..pos]).map(|name| (name, kind))
}

/// Does any non-test line evict from `name`? Matches `name.remove(`,
/// `self.name.retain(` and friends, plus `mem::take`/`mem::replace`
/// lines that mention the field.
fn has_eviction(lines: &[Line], name: &str) -> bool {
    lines.iter().filter(|l| !l.in_test).any(|l| {
        let code = &l.code;
        EVICT_METHODS
            .iter()
            .any(|m| contains_token(code, &format!("{name}{m}")))
            || ((code.contains("mem::take") || code.contains("mem::replace"))
                && contains_token(code, name))
    })
}

/// Substring match with identifier boundaries on both sides.
fn contains_token(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1]);
        let end = at + pat.len();
        let after_ok = end >= code.len() || !is_ident_char(code.as_bytes()[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + pat.len();
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn trailing_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let start = trimmed
        .char_indices()
        .rev()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(0, |(i, c)| i + c.len_utf8());
    if start == trimmed.len() {
        None
    } else {
        Some(trimmed[start..].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        crate::filter_allows(raw_findings("x.rs", &lines), &lines)
    }

    #[test]
    fn growing_session_table_is_flagged() {
        let src = "struct S {\n    open: BTreeMap<u64, u32>,\n}\n\
                   impl S { fn push(&mut self) { self.open.insert(1, 2); } }\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unbounded-map");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("`open`"));
    }

    #[test]
    fn eviction_in_the_same_file_clears_the_field() {
        for evict in [
            "self.open.remove(&1);",
            "self.open.retain(|_, v| *v > 0);",
            "self.open.clear();",
            "self.open.pop_first();",
            "let m = std::mem::take(&mut self.open);",
        ] {
            let src = format!(
                "struct S {{\n    open: HashMap<u64, u32>,\n}}\n\
                 impl S {{ fn f(&mut self) {{ {evict} }} }}\n"
            );
            assert!(findings_in(&src).is_empty(), "{evict} should count");
        }
    }

    #[test]
    fn let_bindings_and_fn_params_are_out_of_scope() {
        let src = "fn f(by_id: HashMap<u64, u32>,\n     n: u32) {\n\
                   let local: BTreeMap<u64, u32> = BTreeMap::new();\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "struct S {\n    // analyze:allow(unbounded-map)\n\
                   open: BTreeMap<u64, u32>,\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn eviction_on_a_different_field_does_not_count() {
        let src = "struct S {\n    open: BTreeMap<u64, u32>,\n    done: BTreeMap<u64, u32>,\n}\n\
                   impl S { fn f(&mut self) { self.done.remove(&1); } }\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`open`"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    struct Fixture {\n        \
                   seen: HashMap<u64, u32>,\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }
}
