//! `vqoe-analyze` — run the six static-analysis gates over the
//! workspace and exit nonzero on any violation.
//!
//! ```text
//! vqoe-analyze [--root <dir>] [--format text|json]
//! ```
//!
//! Without `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` declaring `[workspace]`,
//! so the gate works from any crate directory.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vqoe_analyze::{report, run_all};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => return usage(&format!("--format expects text|json, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root expects a directory"),
            },
            "--help" | "-h" => {
                println!("usage: vqoe-analyze [--root <dir>] [--format text|json]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("vqoe-analyze: no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root");
        return ExitCode::from(2);
    };
    let findings = run_all(&root);
    match format {
        Format::Text => print!("{}", report::render_text(&findings)),
        Format::Json => print!("{}", report::render_json(&findings)),
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("vqoe-analyze: {problem}");
    eprintln!("usage: vqoe-analyze [--root <dir>] [--format text|json]");
    ExitCode::from(2)
}

/// Nearest ancestor of the current directory whose `Cargo.toml`
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|text| text.contains("[workspace]"))
}
