//! `vqoe-analyze` — run the ten static-analysis gates over the
//! workspace and exit nonzero on any fresh deny-severity violation.
//!
//! ```text
//! vqoe-analyze [--root <dir>] [--format text|json|sarif] [--sarif]
//!              [--baseline <file>] [--no-baseline] [--write-baseline]
//!              [--cache] [--cache-path <file>]
//! ```
//!
//! Without `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` declaring `[workspace]`,
//! so the gate works from any crate directory.
//!
//! A committed `analyze-baseline.toml` at the root (override with
//! `--baseline`, disable with `--no-baseline`) grandfathers known debt:
//! baseline-covered findings are reported on stderr but do not fail the
//! gate, new findings do. `--write-baseline` snapshots the current
//! findings into the baseline file and exits.
//!
//! `--cache` memoizes per-file findings by content hash (default
//! `<root>/target/vqoe-analyze.cache`, override with `--cache-path`) so
//! warm reruns only re-analyze files that changed. Hit/miss stats go to
//! stderr; stdout stays pure text/JSON/SARIF.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vqoe_analyze::baseline::Baseline;
use vqoe_analyze::cache::Cache;
use vqoe_analyze::{report, run_all_cached, sarif, severity_of, Severity};

enum Format {
    Text,
    Json,
    Sarif,
}

const USAGE: &str = "usage: vqoe-analyze [--root <dir>] [--format text|json|sarif] [--sarif] \
                     [--baseline <file>] [--no-baseline] [--write-baseline] \
                     [--cache] [--cache-path <file>]";

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut use_cache = false;
    let mut cache_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => return usage(&format!("--format expects text|json|sarif, got {other:?}")),
            },
            "--sarif" => format = Format::Sarif,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root expects a directory"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => return usage("--baseline expects a file"),
            },
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--cache" => use_cache = true,
            "--cache-path" => match args.next() {
                Some(path) => {
                    use_cache = true;
                    cache_path = Some(PathBuf::from(path));
                }
                None => return usage("--cache-path expects a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("vqoe-analyze: no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root");
        return ExitCode::from(2);
    };

    let findings = if use_cache {
        let cache_file = cache_path.unwrap_or_else(|| root.join("target/vqoe-analyze.cache"));
        let mut cache = Cache::load(&cache_file);
        let findings = run_all_cached(&root, Some(&mut cache));
        eprintln!(
            "vqoe-analyze: cache {} hit(s), {} miss(es)",
            cache.hits(),
            cache.misses()
        );
        if let Err(e) = cache.save() {
            eprintln!("vqoe-analyze: could not write cache: {e}");
        }
        findings
    } else {
        run_all_cached(&root, None)
    };

    let baseline_file = baseline_path.unwrap_or_else(|| root.join("analyze-baseline.toml"));
    if write_baseline {
        let rendered = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_file, rendered) {
            eprintln!("vqoe-analyze: could not write baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "vqoe-analyze: wrote {} finding(s) to {}",
            findings.len(),
            baseline_file.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = if no_baseline {
        Baseline::default()
    } else {
        match Baseline::load(&baseline_file) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("vqoe-analyze: bad baseline: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let applied = baseline.apply(findings);

    match format {
        Format::Text => print!("{}", report::render_text(&applied.fresh)),
        Format::Json => print!("{}", report::render_json(&applied.fresh)),
        Format::Sarif => print!("{}", sarif::render(&applied.fresh)),
    }
    if !applied.grandfathered.is_empty() {
        eprintln!(
            "vqoe-analyze: {} grandfathered finding(s) suppressed by the baseline",
            applied.grandfathered.len()
        );
    }
    for (file, rule, remaining) in &applied.stale_entries {
        eprintln!(
            "vqoe-analyze: stale baseline entry: {file} / {rule} over-budgets by {remaining}; \
             shrink or delete it"
        );
    }

    let fresh_deny = applied
        .fresh
        .iter()
        .any(|f| severity_of(&f.rule) == Severity::Deny);
    if fresh_deny || !applied.stale_entries.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("vqoe-analyze: {problem}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Nearest ancestor of the current directory whose `Cargo.toml`
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|text| text.contains("[workspace]"))
}
