//! A line-level Rust lexer: just enough token awareness to lint.
//!
//! Full parsing is neither needed nor wanted here (the analyzer must
//! stay dependency-free and robust to half-broken code). What the lint
//! passes actually require is:
//!
//! * **code vs. comment vs. string** — a rule must not fire on the word
//!   `unwrap` inside a doc comment or a string literal;
//! * **test regions** — `#[cfg(test)]` items are exempt from the
//!   panic-path rules;
//! * **escape hatches** — `// analyze:allow(<rule>)` on a line (or the
//!   line above) suppresses that rule there.
//!
//! [`lex_file`] delivers exactly that: per physical line, the code text
//! with comments and string *contents* blanked out (string delimiters
//! are kept so the shape of the line survives), the comment text, the
//! set of allowed rules, and whether the line sits in a test region.

/// One physical source line, classified.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments removed and string contents blanked.
    pub code: String,
    /// Concatenated comment text of the line.
    pub comment: String,
    /// Rules suppressed on this line via `analyze:allow(...)` markers
    /// (on this line or the previous one).
    pub allows: Vec<String>,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lex `source` into classified lines. Never fails: unterminated
/// constructs simply run to end of file, which is the forgiving
/// behaviour a linter wants on work-in-progress code.
pub fn lex_file(source: &str) -> Vec<Line> {
    let mut lines = lex_lines(source);
    mark_test_regions(&mut lines);
    attach_allows(&mut lines);
    lines
}

fn lex_lines(source: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            out.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                allows: Vec::new(),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    // r"..."  r#"..."#  br##"..."## — skip the prefix,
                    // remember the hash count.
                    let mut j = i;
                    while chars[j] != '#' && chars[j] != '"' {
                        code.push(chars[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    code.push('"');
                    state = State::RawStr(hashes);
                    i = j + 1;
                } else if c == '\'' && is_char_literal(&chars, i) {
                    // Skip the whole character literal; keep quotes.
                    code.push('\'');
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 2; // escape plus escaped char
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                    if chars.get(i) == Some(&'\'') {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && next == Some('\n') {
                    // String continuation: a `\` immediately before the
                    // line break. Consume only the backslash so the
                    // top-of-loop newline handling still emits the
                    // physical line — otherwise every later line number
                    // in the file would drift by one.
                    i += 1;
                } else if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push(Line {
            code,
            comment,
            allows: Vec::new(),
            in_test: false,
        });
    }
    out
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r" r#" br" b" is NOT raw; only r/br prefixes introduce raw strings.
    let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    if prev_is_ident {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn is_char_literal(chars: &[char], i: usize) -> bool {
    // 'a' or '\n' — but not the lifetime in `&'a str` or `<'a>`.
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Mark every line inside a `#[cfg(test)]` item as test code by brace
/// matching from the attribute forward.
fn mark_test_regions(lines: &mut [Line]) {
    let mut li = 0usize;
    while li < lines.len() {
        if let Some(attr_col) = lines[li].code.find("#[cfg(test)]") {
            let start_line = li;
            let mut depth = 0i64;
            let mut seen_brace = false;
            let mut col = attr_col;
            'outer: while li < lines.len() {
                let code: Vec<char> = lines[li].code.chars().collect();
                while col < code.len() {
                    match code[col] {
                        '{' => {
                            depth += 1;
                            seen_brace = true;
                        }
                        '}' => {
                            depth -= 1;
                            if seen_brace && depth == 0 {
                                break 'outer;
                            }
                        }
                        ';' if !seen_brace => break 'outer, // e.g. `#[cfg(test)] use ...;`
                        _ => {}
                    }
                    col += 1;
                }
                li += 1;
                col = 0;
            }
            let end_line = li.min(lines.len() - 1);
            for line in &mut lines[start_line..=end_line] {
                line.in_test = true;
            }
        }
        li += 1;
    }
}

/// Collect `analyze:allow(rule)` markers; a marker covers its own line
/// and the line directly below (so it can sit above the flagged code).
fn attach_allows(lines: &mut [Line]) {
    let markers: Vec<Vec<String>> = lines.iter().map(|l| parse_allows(&l.comment)).collect();
    for (i, line) in lines.iter_mut().enumerate() {
        let mut allows = markers[i].clone();
        if i > 0 {
            allows.extend(markers[i - 1].iter().cloned());
        }
        line.allows = allows;
    }
}

fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("analyze:allow(") {
        rest = &rest[pos + "analyze:allow(".len()..];
        if let Some(end) = rest.find(')') {
            out.push(rest[..end].trim().to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let src = "let x = \"unwrap()\"; // calls unwrap()\nlet y = 1; /* unwrap() */ let z = 2;\n";
        let lines = lex_file(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap"));
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_opaque() {
        let src =
            "let p = r#\"a \"quoted\" unwrap()\"#;\nlet c = '\\'';\nlet l: &'static str = \"x\";\n";
        let lines = lex_file(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[1].code.contains("let c"));
        assert!(lines[2].code.contains("'static"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines = lex_file(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allow_markers_cover_self_and_next_line() {
        let src = "// analyze:allow(wall-clock)\nlet t = now();\nlet u = now();\n";
        let lines = lex_file(src);
        assert!(lines[0].allows.iter().any(|a| a == "wall-clock"));
        assert!(lines[1].allows.iter().any(|a| a == "wall-clock"));
        assert!(lines[2].allows.is_empty());
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let lines = lex_file(src);
        assert!(lines[0].code.contains("let x"));
        assert!(!lines[0].code.contains("outer"));
    }
}
