//! Pass 3 — paper-constant consistency.
//!
//! The headline numbers of the paper appear in many places: the feature
//! builders, the labelling rules, the change detector, crate docs,
//! `DESIGN.md`. They drifted apart once during development ("70
//! features" in the doc, an 8-element stats array in the code), so this
//! pass re-derives each constant from every site that states it and
//! fails when any two disagree:
//!
//! * 70 stall features = `STALL_STATS` × `STALL_METRICS` (§4.1);
//! * 210 representation features = `REP_STATS` × `REP_METRICS` (§4.2);
//! * severe-stall Rebuffering-Ratio threshold 0.1 (§4.1);
//! * CUSUM change-detection threshold 500 (§7);
//! * the class-name lists (stall severity, LD/SD/HD).
//!
//! Rules: `const-missing` (a site's anchor text disappeared — the check
//! itself went stale) and `const-mismatch` (two sites disagree).

use std::fs;
use std::path::Path;

use crate::Finding;

/// How to pull a value out of one file.
enum Extract {
    /// Product of the lengths of two `[&str; N]` const arrays.
    ArrayProduct(&'static str, &'static str),
    /// Number directly after this anchor text.
    NumberAfter(&'static str),
    /// Number directly before this anchor text.
    NumberBefore(&'static str),
    /// Number of string literals in `impl <Enum> { fn names() }`.
    NamesLen(&'static str),
    /// Those literals joined with `" / "`.
    NamesJoined(&'static str),
    /// Slash-separated list between anchor and terminator, re-joined
    /// with `" / "`; `Count` variant reports only its length.
    SlashListAfter(&'static str, &'static str),
    /// Length of the slash-separated list between anchor and terminator.
    SlashCountAfter(&'static str, &'static str),
}

/// One place a constant is stated.
struct Site {
    file: &'static str,
    extract: Extract,
}

/// One constant with all the places that state it.
struct Group {
    what: &'static str,
    sites: &'static [Site],
}

const GROUPS: &[Group] = &[
    Group {
        what: "stall feature count (§4.1, 70)",
        sites: &[
            Site {
                file: "crates/features/src/stall.rs",
                extract: Extract::ArrayProduct("STALL_STATS", "STALL_METRICS"),
            },
            Site {
                file: "crates/features/src/stall.rs",
                extract: Extract::NumberAfter("statistics = "),
            },
            Site {
                file: "crates/features/src/lib.rs",
                extract: Extract::NumberAfter("Table-1 metrics = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberBefore("-feature stall"),
            },
            Site {
                file: "crates/core/src/encrypted.rs",
                extract: Extract::NumberBefore("-dim labelled stall"),
            },
        ],
    },
    Group {
        what: "representation feature count (§4.2, 210)",
        sites: &[
            Site {
                file: "crates/features/src/representation.rs",
                extract: Extract::ArrayProduct("REP_STATS", "REP_METRICS"),
            },
            Site {
                file: "crates/features/src/representation.rs",
                extract: Extract::NumberAfter("statistics = "),
            },
            Site {
                file: "crates/features/src/lib.rs",
                extract: Extract::NumberAfter("throughput*) = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberBefore("-feature representation"),
            },
            Site {
                file: "crates/core/src/encrypted.rs",
                extract: Extract::NumberBefore("-dim labelled representation"),
            },
        ],
    },
    Group {
        what: "severe-stall RR threshold (§4.1, 0.1)",
        sites: &[
            Site {
                file: "crates/features/src/labels.rs",
                extract: Extract::NumberAfter("SEVERE_RR_THRESHOLD: f64 = "),
            },
            Site {
                file: "crates/features/src/labels.rs",
                extract: Extract::NumberAfter("RR is over "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("threshold RR = "),
            },
        ],
    },
    Group {
        what: "CUSUM change threshold (§7, 500)",
        sites: &[
            Site {
                file: "crates/changedet/src/detector.rs",
                extract: Extract::NumberAfter("the paper's \""),
            },
            Site {
                file: "crates/changedet/src/lib.rs",
                extract: Extract::NumberBefore(" in its units"),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("paper threshold: "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("the paper's \""),
            },
        ],
    },
    Group {
        what: "stall class count (no/mild/severe, 3)",
        sites: &[
            Site {
                file: "crates/features/src/labels.rs",
                extract: Extract::NamesLen("StallClass"),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::SlashCountAfter("classes: *", "*"),
            },
        ],
    },
    Group {
        what: "representation class names (LD/SD/HD)",
        sites: &[
            Site {
                file: "crates/features/src/labels.rs",
                extract: Extract::NamesJoined("RqClass"),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::SlashListAfter("representation detection** (3 classes: ", " by"),
            },
        ],
    },
    Group {
        what: "binary weblog format version (§13, 1)",
        sites: &[
            Site {
                file: "crates/telemetry/src/binlog.rs",
                extract: Extract::NumberAfter("BINLOG_VERSION: u16 = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("binlog format version: "),
            },
        ],
    },
    Group {
        what: "binary record fixed preamble (§13, 105 bytes)",
        sites: &[
            Site {
                file: "crates/telemetry/src/binlog.rs",
                extract: Extract::NumberAfter("RECORD_FIXED_BYTES: usize = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("fixed preamble of "),
            },
        ],
    },
    Group {
        what: "tracked per-record overhead (§13, 192 bytes)",
        sites: &[
            Site {
                file: "crates/telemetry/src/weblog.rs",
                extract: Extract::NumberAfter("RECORD_OVERHEAD_BYTES: u64 = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("RECORD_OVERHEAD_BYTES ("),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("bookkeeping constant of\n  "),
            },
        ],
    },
    Group {
        what: "chrome trace-event format version (§14, 1)",
        sites: &[
            Site {
                file: "crates/obs/src/trace.rs",
                extract: Extract::NumberAfter("TRACE_FORMAT_VERSION: u32 = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("trace-event format version: "),
            },
        ],
    },
    Group {
        what: "histogram exemplars kept per bucket (§14, 1)",
        sites: &[
            Site {
                file: "crates/obs/src/registry.rs",
                extract: Extract::NumberAfter("EXEMPLARS_PER_BUCKET: usize = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("exemplar-per-bucket cap: "),
            },
        ],
    },
    Group {
        what: "streaming quantile-sketch compactor capacity (§15, 64)",
        sites: &[
            Site {
                file: "crates/stats/src/sketch.rs",
                extract: Extract::NumberAfter("SKETCH_CAPACITY: usize = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("sketch compactor capacity: "),
            },
        ],
    },
    Group {
        what: "per-session exact-entry cap before spilling (§15, 4096)",
        sites: &[
            Site {
                file: "crates/telemetry/src/reassembly.rs",
                extract: Extract::NumberAfter("EXACT_ENTRY_CAP: usize = "),
            },
            Site {
                file: "DESIGN.md",
                extract: Extract::NumberAfter("exact-entry cap: "),
            },
        ],
    },
];

/// Run the constant-consistency pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for group in GROUPS {
        check_group(root, group, &mut findings);
    }
    findings
}

fn check_group(root: &Path, group: &Group, findings: &mut Vec<Finding>) {
    // (file, line, value) per site that resolved.
    let mut resolved: Vec<(&'static str, usize, String)> = Vec::new();
    for site in group.sites {
        let Ok(text) = fs::read_to_string(root.join(site.file)) else {
            findings.push(Finding::new(
                site.file,
                1,
                "const-missing",
                format!("cannot read file while checking {}", group.what),
            ));
            continue;
        };
        match extract(&text, &site.extract) {
            Some((value, offset)) => {
                resolved.push((site.file, line_of(&text, offset), value));
            }
            None => findings.push(Finding::new(
                site.file,
                1,
                "const-missing",
                format!(
                    "anchor for {} not found ({}); the consistency check went stale",
                    group.what,
                    describe(&site.extract)
                ),
            )),
        }
    }
    let Some((ref_file, ref_line, ref_value)) = resolved.first().cloned() else {
        return;
    };
    for (file, line, value) in &resolved[1..] {
        if *value != ref_value {
            findings.push(Finding::new(
                file,
                *line,
                "const-mismatch",
                format!(
                    "{}: this site says {value}, but {ref_file}:{ref_line} says {ref_value}",
                    group.what
                ),
            ));
        }
    }
}

/// Apply one extraction; returns the value plus a byte offset for the
/// diagnostic's line number.
fn extract(text: &str, how: &Extract) -> Option<(String, usize)> {
    match how {
        Extract::ArrayProduct(a, b) => {
            let (la, off) = array_len(text, a)?;
            let (lb, _) = array_len(text, b)?;
            Some(((la * lb).to_string(), off))
        }
        Extract::NumberAfter(anchor) => {
            let pos = text.find(anchor)?;
            let start = pos + anchor.len();
            let value = leading_number(&text[start..])?;
            Some((value, pos))
        }
        Extract::NumberBefore(anchor) => {
            let pos = text.find(anchor)?;
            let value = trailing_number(&text[..pos])?;
            Some((value, pos))
        }
        Extract::NamesLen(enum_name) => {
            let (names, off) = names_literals(text, enum_name)?;
            Some((names.len().to_string(), off))
        }
        Extract::NamesJoined(enum_name) => {
            let (names, off) = names_literals(text, enum_name)?;
            Some((names.join(" / "), off))
        }
        Extract::SlashListAfter(anchor, term) => {
            let (list, off) = slash_list(text, anchor, term)?;
            Some((list.join(" / "), off))
        }
        Extract::SlashCountAfter(anchor, term) => {
            let (list, off) = slash_list(text, anchor, term)?;
            Some((list.len().to_string(), off))
        }
    }
}

fn describe(how: &Extract) -> String {
    match how {
        Extract::ArrayProduct(a, b) => format!("len({a}) × len({b})"),
        Extract::NumberAfter(anchor) => format!("number after {anchor:?}"),
        Extract::NumberBefore(anchor) => format!("number before {anchor:?}"),
        Extract::NamesLen(e) | Extract::NamesJoined(e) => format!("{e}::names() literals"),
        Extract::SlashListAfter(anchor, _) | Extract::SlashCountAfter(anchor, _) => {
            format!("slash-list after {anchor:?}")
        }
    }
}

/// Length of a `NAME: [&str; N]` const array, plus its byte offset.
fn array_len(text: &str, name: &str) -> Option<(u64, usize)> {
    let anchor = format!("{name}: [&str; ");
    let pos = text.find(&anchor)?;
    let n = leading_number(&text[pos + anchor.len()..])?;
    n.parse().ok().map(|n| (n, pos))
}

/// The string literals inside `impl <Enum> { ... fn names() ... }`.
fn names_literals(text: &str, enum_name: &str) -> Option<(Vec<String>, usize)> {
    let impl_pos = text.find(&format!("impl {enum_name} "))?;
    let fn_off = text[impl_pos..].find("fn names(")?;
    let body_start = impl_pos + fn_off;
    // The function closes at the first brace-only line at one indent level.
    let body_end = text[body_start..]
        .find("\n    }")
        .map_or(text.len(), |e| body_start + e);
    let mut names = Vec::new();
    let body = &text[body_start..body_end];
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let close = after.find('"')?;
        names.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    Some((names, body_start))
}

/// The ` / `-separated items between `anchor` and `term`.
fn slash_list(text: &str, anchor: &str, term: &str) -> Option<(Vec<String>, usize)> {
    let pos = text.find(anchor)?;
    let start = pos + anchor.len();
    let end = text[start..].find(term)?;
    let items: Vec<String> = text[start..start + end]
        .split('/')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        None
    } else {
        Some((items, pos))
    }
}

/// A number (`70`, `0.1`) at the start of `s`; a trailing sentence
/// period is not part of the value.
fn leading_number(s: &str) -> Option<String> {
    let end = s
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit() && *c != '.')
        .map_or(s.len(), |(i, _)| i);
    let value = s[..end].trim_end_matches('.');
    if value.is_empty() || !value.bytes().any(|b| b.is_ascii_digit()) {
        None
    } else {
        Some(value.to_string())
    }
}

/// A number at the end of `s`.
fn trailing_number(s: &str) -> Option<String> {
    let start = s
        .char_indices()
        .rev()
        .find(|(_, c)| !c.is_ascii_digit() && *c != '.')
        .map_or(0, |(i, c)| i + c.len_utf8());
    let value = s[start..].trim_start_matches('.');
    if value.is_empty() || !value.bytes().any(|b| b.is_ascii_digit()) {
        None
    } else {
        Some(value.to_string())
    }
}

/// 1-based line of a byte offset.
fn line_of(text: &str, offset: usize) -> usize {
    text[..offset.min(text.len())]
        .bytes()
        .filter(|b| *b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_extraction_handles_sentence_periods() {
        assert_eq!(leading_number("210. The rest"), Some("210".to_string()));
        assert_eq!(leading_number("0.1, the"), Some("0.1".to_string()));
        assert_eq!(leading_number("no digits"), None);
        assert_eq!(trailing_number("equal to 70"), Some("70".to_string()));
    }

    #[test]
    fn array_len_reads_the_declared_size() {
        let src = "pub const STALL_STATS: [&str; 7] = [\n";
        assert_eq!(array_len(src, "STALL_STATS").map(|x| x.0), Some(7));
    }

    #[test]
    fn names_literals_reads_the_vec() {
        let src = "impl RqClass {\n    pub fn names() -> Vec<String> {\n        vec![\"LD\".to_string(), \"SD\".to_string(), \"HD\".to_string()]\n    }\n}\n";
        let (names, _) = names_literals(src, "RqClass").expect("parses");
        assert_eq!(names, vec!["LD", "SD", "HD"]);
    }

    #[test]
    fn slash_lists_are_split_and_trimmed() {
        let (items, _) =
            slash_list("x (3 classes: LD / SD / HD by mean y", "classes: ", " by").expect("parses");
        assert_eq!(items, vec!["LD", "SD", "HD"]);
    }

    #[test]
    fn trace_format_anchors_resolve_on_fixture_text() {
        let src = "pub const TRACE_FORMAT_VERSION: u32 = 1;\n";
        let doc = "(Perfetto; trace-event format version: 1, stamped in otherData)";
        let from_src = extract(src, &Extract::NumberAfter("TRACE_FORMAT_VERSION: u32 = "));
        let from_doc = extract(doc, &Extract::NumberAfter("trace-event format version: "));
        assert_eq!(from_src.map(|x| x.0), Some("1".to_string()));
        assert_eq!(from_doc.map(|x| x.0), Some("1".to_string()));
    }

    #[test]
    fn exemplar_cap_anchors_resolve_on_fixture_text() {
        let src = "pub const EXEMPLARS_PER_BUCKET: usize = 1;\n";
        let doc = "it produced (exemplar-per-bucket cap: 1,\n`EXEMPLARS_PER_BUCKET`).";
        let from_src = extract(src, &Extract::NumberAfter("EXEMPLARS_PER_BUCKET: usize = "));
        let from_doc = extract(doc, &Extract::NumberAfter("exemplar-per-bucket cap: "));
        assert_eq!(from_src.map(|x| x.0), Some("1".to_string()));
        assert_eq!(from_doc.map(|x| x.0), Some("1".to_string()));
    }

    #[test]
    fn live_workspace_constants_are_consistent() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = check(&root);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
