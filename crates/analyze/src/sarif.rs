//! SARIF 2.1.0 output.
//!
//! SARIF (Static Analysis Results Interchange Format) is what code
//! hosts and IDEs ingest to annotate diffs with findings; emitting it
//! lets the ten-pass gate surface inline on review instead of only in a
//! CI log. The writer is hand-rolled on the same escaping helper as the
//! JSON renderer — one `run`, one `tool.driver` carrying the full rule
//! table (with default severity levels), one `result` per finding.

use crate::report::json_string;
use crate::{severity_of, Finding, Severity, RULES};

/// Render findings as a SARIF 2.1.0 log.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"vqoe-analyze\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/vqoe-analyze\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}",
            json_string(rule.id),
            json_string(rule.summary),
            json_string(level(rule.severity)),
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_string(&f.rule),
            json_string(level(severity_of(&f.rule))),
            json_string(&f.message),
            json_string(&f.file),
            f.line,
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_carries_schema_rules_and_results() {
        let findings = vec![Finding::new(
            "crates/x/src/lib.rs",
            7,
            "unwrap",
            "a \"quoted\" message",
        )];
        let s = render(&findings);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-schema-2.1.0.json"));
        assert!(s.contains("\"id\": \"lock-across-handoff\""));
        assert!(s.contains("\"ruleId\": \"unwrap\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("a \\\"quoted\\\" message"));
        // The warn-severity rule maps to SARIF's `warning` level.
        assert!(s.contains("\"level\": \"warning\""));
    }

    #[test]
    fn empty_findings_still_emit_a_valid_run() {
        let s = render(&[]);
        assert!(s.contains("\"results\": []"));
        assert!(s.contains("\"name\": \"vqoe-analyze\""));
    }
}
