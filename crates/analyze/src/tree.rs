//! A brace/scope-aware token tree on top of the line lexer.
//!
//! The concurrency passes need more than "which tokens are on this
//! line": they ask *is this `MutexGuard` binding still live when the
//! channel send three lines down runs?* and *is this `+=` inside the
//! `for` loop that iterates the `HashMap`?*. Answering that takes two
//! structures the lexer does not provide:
//!
//! * **scopes** — every `{ ... }` region, with the line span it covers
//!   and the *header* text (the code before the opening brace, which is
//!   where `for`, `scope.spawn(`, and `run_indexed(` live);
//! * **bindings** — every `let` statement, with its name, declared
//!   type, full initializer text (collected across lines until the
//!   statement's `;`), and the line range over which the binding is
//!   live (to the end of its scope, or to an explicit `drop(name)`).
//!
//! The representation is deliberately token-level, not a parse tree:
//! the lexer has already blanked strings and comments, so plain brace
//! counting is exact, and the passes stay robust on half-broken code —
//! an unmatched `}` simply closes back to the file scope.

use crate::lexer::Line;

/// One `{ ... }` region (scope 0 is the whole file).
#[derive(Debug, Clone)]
pub struct Scope {
    /// Index of the enclosing scope in [`TokenTree::scopes`]; `None`
    /// only for the file scope.
    pub parent: Option<usize>,
    /// 0-based line of the opening brace (for scope 0: line 0).
    pub start: usize,
    /// 0-based line of the closing brace (inclusive; runs to the last
    /// line for unterminated scopes).
    pub end: usize,
    /// Code text on the opening line *before* the brace — `for s in
    /// sessions`, `scope.spawn(|_|`, `fn assess(&self)` and the like.
    pub header: String,
}

/// One `let` binding.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound identifier (the first pattern identifier after `let`).
    pub name: String,
    /// 0-based declaration line.
    pub line: usize,
    /// Scope the binding lives in (index into [`TokenTree::scopes`]).
    pub scope: usize,
    /// Declared type text (between `:` and `=`), empty when inferred.
    pub ty: String,
    /// Initializer text after `=`, joined across lines up to the
    /// statement's terminating `;` (so multi-line closures and builder
    /// chains are captured whole). Empty for `let x;`.
    pub init: String,
    /// Last 0-based line on which the binding is live: the end of its
    /// scope, or the line of an explicit `drop(name)` if one appears
    /// earlier.
    pub live_to: usize,
}

/// Scopes and bindings of one lexed file.
#[derive(Debug, Clone, Default)]
pub struct TokenTree {
    /// All scopes; index 0 is the file scope.
    pub scopes: Vec<Scope>,
    /// All `let` bindings, in declaration order.
    pub bindings: Vec<Binding>,
}

/// How many lines a multi-line `let` initializer may span before the
/// collector gives up (guards against an unterminated statement eating
/// the rest of the file).
const MAX_INIT_LINES: usize = 200;

impl TokenTree {
    /// Build the tree for a lexed file.
    pub fn build(lines: &[Line]) -> TokenTree {
        let last = lines.len().saturating_sub(1);
        let mut scopes = vec![Scope {
            parent: None,
            start: 0,
            end: last,
            header: String::new(),
        }];
        let mut stack = vec![0usize];
        for (li, line) in lines.iter().enumerate() {
            for (ci, c) in line.code.char_indices() {
                match c {
                    '{' => {
                        let parent = stack.last().copied().unwrap_or(0);
                        scopes.push(Scope {
                            parent: Some(parent),
                            start: li,
                            end: last,
                            header: line.code[..ci].trim().to_string(),
                        });
                        stack.push(scopes.len() - 1);
                    }
                    // Never pop the file scope; stray braces close
                    // back to it and stay there.
                    '}' if stack.len() > 1 => {
                        if let Some(idx) = stack.pop() {
                            scopes[idx].end = li;
                        }
                    }
                    _ => {}
                }
            }
        }
        let bindings = collect_bindings(lines, &scopes);
        TokenTree { scopes, bindings }
    }

    /// The innermost scope whose span contains 0-based `line`.
    pub fn scope_at(&self, line: usize) -> usize {
        let mut best = 0usize;
        for (i, s) in self.scopes.iter().enumerate() {
            if s.start <= line && line <= s.end && s.start >= self.scopes[best].start {
                best = i;
            }
        }
        best
    }

    /// Bindings named `name` that are live on 0-based `line` (declared
    /// on or before it, not yet dropped).
    pub fn live_bindings<'a>(&'a self, name: &str, line: usize) -> Vec<&'a Binding> {
        self.bindings
            .iter()
            .filter(|b| b.name == name && b.line <= line && line <= b.live_to)
            .collect()
    }
}

fn collect_bindings(lines: &[Line], scopes: &[Scope]) -> Vec<Binding> {
    let mut out = Vec::new();
    for (li, line) in lines.iter().enumerate() {
        for pos in find_lets(&line.code) {
            let code = &line.code;
            let after_let = code[pos + 4..].trim_start();
            let after_let = after_let.strip_prefix("mut ").unwrap_or(after_let);
            let after_let = after_let.trim_start();
            // `let (a, b) = ...` patterns: take the first identifier
            // inside; good enough for liveness heuristics.
            let pat_start = after_let.trim_start_matches(|c: char| "(& ".contains(c));
            let Some(name) = leading_ident(pat_start) else {
                continue;
            };
            // `if let Some(x)` / `while let Ok(v)`: the leading token is
            // an enum variant, not a binding worth tracking.
            if name == "_" || name.starts_with(|c: char| c.is_uppercase()) {
                continue;
            }
            let (ty, init) = split_ty_init(lines, li, &code[pos..]);
            let scope = innermost_scope(scopes, li);
            let mut live_to = scopes[scope].end;
            for (di, dline) in lines.iter().enumerate().skip(li + 1) {
                if di > live_to {
                    break;
                }
                if dline.code.contains(&format!("drop({name})")) {
                    live_to = di;
                    break;
                }
            }
            out.push(Binding {
                name,
                line: li,
                scope,
                ty,
                init,
                live_to,
            });
        }
    }
    out
}

/// Positions of every `let ` keyword (identifier-bounded) in `code`.
fn find_lets(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = code[start..].find("let ") {
        let at = start + p;
        let before_ok = at == 0 || {
            let b = code.as_bytes()[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok {
            out.push(at);
        }
        start = at + 4;
    }
    out
}

/// Split the text of a `let` statement (starting at the `let` keyword
/// on line `li`) into declared-type and initializer text, joining
/// continuation lines until the terminating `;` at brace depth 0.
fn split_ty_init(lines: &[Line], li: usize, stmt_start: &str) -> (String, String) {
    let mut stmt = String::from(stmt_start);
    let mut depth = 0i64;
    if !stmt_terminated(stmt_start, &mut depth) {
        for cont in lines.iter().skip(li + 1).take(MAX_INIT_LINES) {
            stmt.push(' ');
            stmt.push_str(&cont.code);
            if stmt_terminated(&cont.code, &mut depth) {
                break;
            }
        }
    }
    let eq = find_plain_eq(&stmt);
    match eq {
        Some(e) => {
            let head = &stmt[..e];
            let ty = head
                .find(':')
                .map(|c| head[c + 1..].trim().to_string())
                .unwrap_or_default();
            let init = stmt[e + 1..]
                .trim()
                .trim_end_matches(';')
                .trim()
                .to_string();
            (ty, init)
        }
        None => {
            let head = stmt.trim_end().trim_end_matches(';');
            let ty = head
                .find(':')
                .map(|c| head[c + 1..].trim().to_string())
                .unwrap_or_default();
            (ty, String::new())
        }
    }
}

/// Does this chunk end the statement? Walks the chunk updating the
/// running brace `depth`, so a `;` *inside* a closure body does not
/// terminate the outer statement; reports a `;` seen at depth <= 0.
fn stmt_terminated(code: &str, depth: &mut i64) -> bool {
    let mut d = *depth;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            ';' if d <= 0 => {
                *depth = d;
                return true;
            }
            _ => {}
        }
    }
    *depth = d;
    false
}

/// The first `=` that is neither `==`, `!=`, `<=`, `>=` nor `=>`.
fn find_plain_eq(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'=' {
            continue;
        }
        let prev = if i > 0 { b[i - 1] } else { 0 };
        let next = b.get(i + 1).copied().unwrap_or(0);
        if next == b'=' || prev == b'=' || prev == b'!' || prev == b'<' || prev == b'>' {
            continue;
        }
        if next == b'>' {
            continue;
        }
        return Some(i);
    }
    None
}

fn innermost_scope(scopes: &[Scope], line: usize) -> usize {
    let mut best = 0usize;
    for (i, s) in scopes.iter().enumerate() {
        if s.start <= line && line <= s.end && s.start >= scopes[best].start {
            best = i;
        }
    }
    best
}

fn leading_ident(s: &str) -> Option<String> {
    let end = s
        .char_indices()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(s.len(), |(i, _)| i);
    if end == 0 {
        None
    } else {
        Some(s[..end].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    fn tree_of(src: &str) -> TokenTree {
        TokenTree::build(&lex_file(src))
    }

    #[test]
    fn scopes_nest_and_carry_headers() {
        let src = "fn f() {\n    for s in sessions {\n        g();\n    }\n}\n";
        let t = tree_of(src);
        // File scope + fn body + for body.
        assert_eq!(t.scopes.len(), 3);
        assert!(t.scopes[1].header.contains("fn f"));
        assert_eq!(t.scopes[1].start, 0);
        assert_eq!(t.scopes[1].end, 4);
        assert!(t.scopes[2].header.contains("for s in sessions"));
        assert_eq!((t.scopes[2].start, t.scopes[2].end), (1, 3));
        assert_eq!(t.scopes[2].parent, Some(1));
    }

    #[test]
    fn scope_at_returns_innermost() {
        let src = "fn f() {\n    {\n        x();\n    }\n}\n";
        let t = tree_of(src);
        assert_eq!(t.scope_at(2), 2);
        assert_eq!(t.scope_at(4), 1);
    }

    #[test]
    fn let_bindings_capture_type_and_init() {
        let src = "fn f() {\n    let guard: MutexGuard<u64> = m.lock();\n    let x = 1;\n}\n";
        let t = tree_of(src);
        assert_eq!(t.bindings.len(), 2);
        assert_eq!(t.bindings[0].name, "guard");
        assert!(t.bindings[0].ty.contains("MutexGuard"));
        assert!(t.bindings[0].init.contains("m.lock()"));
        assert_eq!(t.bindings[0].live_to, 3);
    }

    #[test]
    fn multiline_initializers_are_joined() {
        let src = "fn f() {\n    let h = run(\n        a,\n        |i| { i + 1 },\n    );\n    use_it(h);\n}\n";
        let t = tree_of(src);
        let h = &t.bindings[0];
        assert_eq!(h.name, "h");
        assert!(h.init.contains("run("));
        assert!(h.init.contains("|i| { i + 1 }"));
    }

    #[test]
    fn drop_ends_liveness_early() {
        let src = "fn f() {\n    let guard = m.lock();\n    use_it(&guard);\n    drop(guard);\n    send(x);\n}\n";
        let t = tree_of(src);
        assert_eq!(t.bindings[0].live_to, 3);
        assert!(t.live_bindings("guard", 2).len() == 1);
        assert!(t.live_bindings("guard", 4).is_empty());
    }

    #[test]
    fn single_line_scopes_do_not_leak_liveness() {
        let src = "fn f() {\n    let v = { let guard = m.lock(); *guard };\n    send(v);\n}\n";
        let t = tree_of(src);
        let guard = t
            .bindings
            .iter()
            .find(|b| b.name == "guard")
            .map(|b| b.live_to);
        // The inner scope opens and closes on line 1, so the guard is
        // dead by the send on line 2.
        assert_eq!(guard, Some(1));
    }

    #[test]
    fn stray_close_braces_do_not_underflow() {
        let t = tree_of("}\n}\nfn f() {}\n");
        assert_eq!(t.scopes[0].start, 0);
        assert!(t.scopes.len() >= 2);
    }
}
