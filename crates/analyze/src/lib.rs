//! # vqoe-analyze
//!
//! Zero-dependency static-analysis gates for the vqoe workspace,
//! reproducing the engineering discipline behind *Measuring Video QoE
//! from Encrypted Traffic* (IMC 2016): the whole evaluation is a pure
//! function of seeds, so the code must never read ambient entropy, and
//! the pipeline targets operator deployment, so library code must never
//! panic on hostile input.
//!
//! Six passes, each a module:
//!
//! 1. [`determinism`] — no `thread_rng`, no wall-clock reads, no
//!    `HashMap` iteration in the deterministic crates;
//! 2. [`panics`] — no `unwrap`/`expect`/`panic!` in non-test library
//!    code;
//! 3. [`constants`] — the paper's headline numbers (70 / 210 features,
//!    RR 0.1, CUSUM 500, class names) agree everywhere they are stated;
//! 4. [`hygiene`] — every member crate opts into the workspace lint
//!    policy, inherits workspace dependencies, and documents itself;
//! 5. [`bounded`] — every struct-field session table (`BTreeMap` /
//!    `HashMap`) in the deterministic crates evicts somewhere, so a
//!    hostile tap cannot grow resident state without bound;
//! 6. [`clock`] — no raw `std::time::Instant` / `SystemTime` outside
//!    the allowlisted non-deterministic crates: stage timing goes
//!    through the `vqoe_obs::Clock` trait.
//!
//! Violations carry `file:line`, a rule id, and a message; the binary
//! exits nonzero when any are found. A `// analyze:allow(<rule>)`
//! comment on (or directly above) a line is the escape hatch for the
//! line-level rules.
//!
//! The crate deliberately depends on nothing but `std` — it is the gate
//! for the rest of the workspace and must keep building when everything
//! else is broken.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod clock;
pub mod constants;
pub mod determinism;
pub mod hygiene;
pub mod lexer;
pub mod panics;
pub mod report;
pub mod walk;

use std::path::Path;

/// Crates whose library code must be a pure function of seeds.
/// `crates/bench` is exempt: timing wall-clock is its purpose.
pub const DETERMINISM_CRATES: &[&str] = &[
    "changedet",
    "core",
    "features",
    "ml",
    "obs",
    "player",
    "simnet",
    "stats",
    "telemetry",
];

/// Crates whose non-test code must be panic-free: the deterministic
/// nine plus this analyzer itself (it gates, so it is gated).
pub const PANIC_CRATES: &[&str] = &[
    "analyze",
    "changedet",
    "core",
    "features",
    "ml",
    "obs",
    "player",
    "simnet",
    "stats",
    "telemetry",
];

/// One diagnostic: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (the token accepted by `analyze:allow(...)`).
    pub rule: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(file: &str, line: usize, rule: &str, message: impl Into<String>) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.into(),
        }
    }
}

/// Run all six passes over the workspace at `root` and return the
/// findings sorted by `(file, line, rule)`.
pub fn run_all(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(determinism::check(root));
    findings.extend(panics::check(root));
    findings.extend(constants::check(root));
    findings.extend(hygiene::check(root));
    findings.extend(bounded::check(root));
    findings.extend(clock::check(root));
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings
}
