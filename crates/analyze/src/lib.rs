//! # vqoe-analyze
//!
//! Zero-dependency static-analysis gates for the vqoe workspace,
//! reproducing the engineering discipline behind *Measuring Video QoE
//! from Encrypted Traffic* (IMC 2016): the whole evaluation is a pure
//! function of seeds, so the code must never read ambient entropy, and
//! the pipeline targets operator deployment, so library code must never
//! panic on hostile input.
//!
//! Ten passes, each a module:
//!
//! 1. [`determinism`] — no `thread_rng`, no wall-clock reads, no
//!    `HashMap` iteration in the deterministic crates;
//! 2. [`panics`] — no `unwrap`/`expect`/`panic!` in non-test library
//!    code;
//! 3. [`constants`] — the paper's headline numbers (70 / 210 features,
//!    RR 0.1, CUSUM 500, class names) agree everywhere they are stated;
//! 4. [`hygiene`] — every member crate opts into the workspace lint
//!    policy, inherits workspace dependencies, and documents itself;
//! 5. [`bounded`] — every struct-field session table (`BTreeMap` /
//!    `HashMap`) in the deterministic crates evicts somewhere, so a
//!    hostile tap cannot grow resident state without bound;
//! 6. [`clock`] — no raw `std::time::Instant` / `SystemTime` outside
//!    the allowlisted non-deterministic crates: stage timing goes
//!    through the `vqoe_obs::Clock` trait;
//! 7. [`locks`] — no `Mutex`/`RwLock` guard live across a channel
//!    send / scope spawn / `run_indexed` handoff, and no locking inside
//!    a parallel fan-out job (the byte-identity contract's deadlock and
//!    convoy hazards);
//! 8. [`floatord`] — no order-sensitive `f64`/`f32` accumulation
//!    sourced from a `HashMap`/`HashSet` walk (the bits the
//!    byte-identity contract promises never change);
//! 9. [`clones`] — no `.clone()`/`.to_vec()` of heavy session data
//!    inside shard-handoff or per-job fan-out loops (severity `warn`:
//!    a cost, not a bug);
//! 10. [`staleallow`] — every `analyze:allow(rule)` marker still
//!     suppresses something; dead markers must be deleted.
//!
//! The scope-aware passes (7–9) run on the [`tree`] token-tree layer
//! built over the [`lexer`]. Violations carry `file:line`, a rule id,
//! a severity ([`Severity::Deny`] fails the gate, [`Severity::Warn`]
//! reports), and a message; known debt can be grandfathered in a
//! committed [`baseline`] file, and per-file results are memoized by
//! content hash in the [`cache`]. A `// analyze:allow(<rule>)` comment
//! on (or directly above) a line is the escape hatch for the
//! line-level rules — and pass 10 keeps the hatches honest.
//!
//! The crate deliberately depends on nothing but `std` — it is the gate
//! for the rest of the workspace and must keep building when everything
//! else is broken.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bounded;
pub mod cache;
pub mod clock;
pub mod clones;
pub mod constants;
pub mod determinism;
pub mod floatord;
pub mod hygiene;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod report;
pub mod sarif;
pub mod staleallow;
pub mod tree;
pub mod walk;

use std::path::Path;

use lexer::Line;

/// Crates whose library code must be a pure function of seeds.
/// `crates/bench` is exempt: timing wall-clock is its purpose.
pub const DETERMINISM_CRATES: &[&str] = &[
    "changedet",
    "core",
    "features",
    "ml",
    "obs",
    "player",
    "simnet",
    "stats",
    "telemetry",
];

/// Crates whose non-test code must be panic-free: the deterministic
/// nine plus this analyzer itself (it gates, so it is gated).
pub const PANIC_CRATES: &[&str] = &[
    "analyze",
    "changedet",
    "core",
    "features",
    "ml",
    "obs",
    "player",
    "simnet",
    "stats",
    "telemetry",
];

/// How a rule's findings affect the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fresh findings fail the gate (exit nonzero).
    Deny,
    /// Findings are reported but never fail the gate on their own.
    Warn,
}

/// Static metadata for one rule id.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule id (the token accepted by `analyze:allow(...)`).
    pub id: &'static str,
    /// Gate behaviour of fresh findings.
    pub severity: Severity,
    /// One-line description (used in SARIF rule metadata).
    pub summary: &'static str,
    /// True when the rule fires on specific lines, which is what makes
    /// its `analyze:allow` markers staleness-checkable.
    pub line_rule: bool,
}

/// Every rule the ten passes can emit, in stable order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "thread-rng",
        severity: Severity::Deny,
        summary: "OS-seeded thread_rng breaks seed-pure reproducibility",
        line_rule: true,
    },
    Rule {
        id: "wall-clock",
        severity: Severity::Deny,
        summary: "wall-clock read in deterministic code",
        line_rule: true,
    },
    Rule {
        id: "hashmap-iter",
        severity: Severity::Deny,
        summary: "HashMap iteration order is random per process",
        line_rule: true,
    },
    Rule {
        id: "unwrap",
        severity: Severity::Deny,
        summary: "unwrap() in library code can take the pipeline down",
        line_rule: true,
    },
    Rule {
        id: "expect",
        severity: Severity::Deny,
        summary: "expect() in library code can take the pipeline down",
        line_rule: true,
    },
    Rule {
        id: "panic",
        severity: Severity::Deny,
        summary: "panic!() in library code can take the pipeline down",
        line_rule: true,
    },
    Rule {
        id: "const-missing",
        severity: Severity::Deny,
        summary: "a paper constant is not stated where required",
        line_rule: false,
    },
    Rule {
        id: "const-mismatch",
        severity: Severity::Deny,
        summary: "a paper constant disagrees between crates",
        line_rule: false,
    },
    Rule {
        id: "workspace-lints",
        severity: Severity::Deny,
        summary: "crate does not inherit the workspace lint policy",
        line_rule: false,
    },
    Rule {
        id: "workspace-dep",
        severity: Severity::Deny,
        summary: "dependency bypasses the workspace dependency table",
        line_rule: false,
    },
    Rule {
        id: "lib-doc",
        severity: Severity::Deny,
        summary: "crate root is missing its library documentation",
        line_rule: false,
    },
    Rule {
        id: "missing-docs-attr",
        severity: Severity::Deny,
        summary: "crate does not warn on missing public docs",
        line_rule: false,
    },
    Rule {
        id: "forbid-unsafe",
        severity: Severity::Deny,
        summary: "crate does not forbid unsafe code",
        line_rule: false,
    },
    Rule {
        id: "unbounded-map",
        severity: Severity::Deny,
        summary: "struct-field session table never evicts",
        line_rule: true,
    },
    Rule {
        id: "raw-wall-clock",
        severity: Severity::Deny,
        summary: "raw OS clock outside the allowlisted crates",
        line_rule: true,
    },
    Rule {
        id: "lock-across-handoff",
        severity: Severity::Deny,
        summary: "lock guard live across a thread handoff, or locking inside a fan-out job",
        line_rule: true,
    },
    Rule {
        id: "float-reduce-order",
        severity: Severity::Deny,
        summary: "order-sensitive float reduction over an unordered collection",
        line_rule: true,
    },
    Rule {
        id: "clone-heavy-handoff",
        severity: Severity::Warn,
        summary: "heavy session data cloned inside a per-job/handoff loop",
        line_rule: true,
    },
    Rule {
        id: "stale-allow",
        severity: Severity::Deny,
        summary: "analyze:allow marker no longer suppresses anything",
        line_rule: false,
    },
];

/// The severity of `rule` (unknown rules gate as deny — fail safe).
pub fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.id == rule)
        .map_or(Severity::Deny, |r| r.severity)
}

/// Is `rule` one of the ids in [`RULES`]?
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule)
}

/// Does `rule` fire on specific lines (making its allow markers
/// staleness-checkable)?
pub fn is_line_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule && r.line_rule)
}

/// One diagnostic: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (the token accepted by `analyze:allow(...)`).
    pub rule: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(file: &str, line: usize, rule: &str, message: impl Into<String>) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.into(),
        }
    }
}

/// Drop findings suppressed by an `analyze:allow` marker on their line.
pub(crate) fn filter_allows(raw: Vec<Finding>, lines: &[Line]) -> Vec<Finding> {
    raw.into_iter()
        .filter(|f| match lines.get(f.line.wrapping_sub(1)) {
            Some(l) => !l.allows.iter().any(|a| a == &f.rule),
            None => true,
        })
        .collect()
}

/// The `crates/<name>/...` crate a workspace-relative path belongs to.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// Run every line-level pass on one file. This is the unit the
/// [`cache`] memoizes: a pure function of the relative path (crate
/// scoping) and content.
pub fn analyze_file(rel: &str, text: &str) -> Vec<Finding> {
    let lines = lexer::lex_file(text);
    let tree = tree::TokenTree::build(&lines);
    let krate = crate_of(rel);
    let mut raw: Vec<Finding> = Vec::new();
    if krate.is_some_and(|c| DETERMINISM_CRATES.contains(&c)) {
        raw.extend(determinism::raw_findings(rel, &lines));
        raw.extend(bounded::raw_findings(rel, &lines));
    }
    if krate.is_some_and(|c| PANIC_CRATES.contains(&c)) {
        raw.extend(panics::raw_findings(rel, &lines));
    }
    if !krate.is_some_and(|c| clock::EXEMPT_CRATES.contains(&c)) {
        raw.extend(clock::raw_findings(rel, &lines));
    }
    raw.extend(locks::raw_findings(rel, &lines, &tree));
    raw.extend(floatord::raw_findings(rel, &lines, &tree));
    raw.extend(clones::raw_findings(rel, &lines, &tree));

    let mut findings = filter_allows(raw.clone(), &lines);
    findings.extend(filter_allows(
        staleallow::raw_findings(rel, &lines, &raw),
        &lines,
    ));
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

/// Run all ten passes over the workspace at `root` and return the
/// findings sorted by `(file, line, rule)`.
pub fn run_all(root: &Path) -> Vec<Finding> {
    run_all_cached(root, None)
}

/// [`run_all`] with an optional per-file findings cache.
pub fn run_all_cached(root: &Path, mut cache: Option<&mut cache::Cache>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (_name, dir) in walk::crate_dirs(root) {
        for file in walk::rust_sources(&dir.join("src")) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = walk::rel(root, &file);
            let file_findings = match cache.as_deref_mut() {
                Some(c) => c.get_or_compute(&rel, &text, || analyze_file(&rel, &text)),
                None => analyze_file(&rel, &text),
            };
            findings.extend(file_findings);
        }
    }
    findings.extend(constants::check(root));
    findings.extend(hygiene::check(root));
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings
}
