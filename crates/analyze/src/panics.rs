//! Pass 2 — panic-path lint.
//!
//! Library code in this workspace is meant to run inside an operator's
//! monitoring pipeline (§8 of the paper): a malformed weblog entry must
//! surface as an `Err`, not take the process down. This pass forbids the
//! usual panic shortcuts in non-`#[cfg(test)]` code:
//!
//! * `.unwrap()` (rule `unwrap`) — including the float-comparison
//!   special case `partial_cmp(..).unwrap()`, where the fix is
//!   `f64::total_cmp`;
//! * `.expect(` (rule `expect`);
//! * `panic!(` (rule `panic`).
//!
//! Test modules are exempt (a failing test *should* panic), and truly
//! unreachable states can carry an `// analyze:allow(<rule>)` marker
//! with a justification.

use std::fs;
use std::path::Path;

use crate::lexer::{lex_file, Line};
use crate::walk::{rel, rust_sources};
use crate::{Finding, PANIC_CRATES};

/// Run the panic-path pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for name in PANIC_CRATES {
        let src = root.join("crates").join(name).join("src");
        for file in rust_sources(&src) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = lex_file(&text);
            findings.extend(crate::filter_allows(
                raw_findings(&rel(root, &file), &lines),
                &lines,
            ));
        }
    }
    findings
}

/// Per-file findings *before* `analyze:allow` filtering.
pub(crate) fn raw_findings(file: &str, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let mut push = |rule: &str, message: String| {
            findings.push(Finding::new(file, lineno, rule, message));
        };
        if line.code.contains(".unwrap()") {
            let message = if line.code.contains("partial_cmp") {
                "`partial_cmp(..).unwrap()` panics on NaN; sort floats with \
                 `f64::total_cmp` instead"
                    .to_string()
            } else {
                "`.unwrap()` in library code; return a Result or handle the None case".to_string()
            };
            push("unwrap", message);
        }
        if line.code.contains(".expect(") {
            push(
                "expect",
                "`.expect(...)` in library code; return a Result or handle the \
                 None case"
                    .to_string(),
            );
        }
        if line.code.contains("panic!(") {
            push(
                "panic",
                "`panic!` in library code; return an error instead".to_string(),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        crate::filter_allows(raw_findings("x.rs", &lines), &lines)
    }

    #[test]
    fn unwrap_expect_and_panic_fire_in_library_code() {
        let src = "fn f() {\n    a.unwrap();\n    b.expect(\"msg\");\n    panic!(\"boom\");\n}\n";
        let rules: Vec<_> = findings_in(src).iter().map(|f| f.rule.clone()).collect();
        assert_eq!(rules, vec!["unwrap", "expect", "panic"]);
    }

    #[test]
    fn partial_cmp_unwrap_gets_the_total_cmp_hint() {
        let f = findings_in("v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n");
        assert!(f[0].message.contains("total_cmp"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(|| 1);\nlet c = z.expect_err(\"e\");\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn allow_marker_with_justification_suppresses() {
        let src = "// len checked above. analyze:allow(unwrap)\nlet x = v.first().unwrap();\n";
        assert!(findings_in(src).is_empty());
    }
}
