//! Pass 9 — clone-heavy-handoff lint (severity `warn`).
//!
//! The ROADMAP names per-job clone overhead as the prime suspect for
//! the engine's compute-regime scaling tax: cloning a session's chunk
//! vector once per shard handoff or per fan-out job multiplies the
//! allocator traffic by the worker count without changing any output.
//! Rule `clone-heavy-handoff` flags `.clone()` / `.to_vec()` of the
//! workspace's heavy session/chunk types when the call sits inside
//!
//! * a loop whose body hands work to another thread (`.send(`,
//!   `.spawn(`, `run_indexed(`), or
//! * the body of a spawned worker / `run_indexed` job.
//!
//! A value is "heavy" when the line mentions one of the known heavy
//! type names, or when the cloned receiver's binding (or a same-file
//! field/param declaration) carries one. The pass warns rather than
//! denies: a clone is never *wrong*, it is a cost — the baseline
//! mechanism grandfathers the ones the code owns deliberately. Test
//! code is exempt.

use std::fs;
use std::path::Path;

use crate::lexer::{lex_file, Line};
use crate::tree::TokenTree;
use crate::walk::{crate_dirs, rel, rust_sources};
use crate::Finding;

/// Session/chunk-vector types whose clones dominate handoff cost.
const HEAVY_TYPES: &[&str] = &[
    "WeblogEntry",
    "ReassembledSession",
    "SessionObs",
    "SessionAssessment",
    "SessionTrace",
    "SessionGroundTruth",
    "Dataset",
    "ShardOutput",
];

/// Tokens that hand work to another thread.
const HANDOFF_TOKENS: &[&str] = &[".send(", ".spawn(", "thread::spawn", "run_indexed("];

/// Scope headers that make the scope body a parallel job.
const FANOUT_HEADERS: &[&str] = &["run_indexed(", ".spawn(", "thread::spawn"];

/// Run the clone-heavy-handoff pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (_name, dir) in crate_dirs(root) {
        for file in rust_sources(&dir.join("src")) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = lex_file(&text);
            let tree = TokenTree::build(&lines);
            findings.extend(crate::filter_allows(
                raw_findings(&rel(root, &file), &lines, &tree),
                &lines,
            ));
        }
    }
    findings
}

/// Per-file findings *before* `analyze:allow` filtering.
pub(crate) fn raw_findings(file: &str, lines: &[Line], tree: &TokenTree) -> Vec<Finding> {
    let mut findings = Vec::new();
    let heavy_names = heavy_idents(lines, tree);
    for (li, line) in lines.iter().enumerate() {
        if line.in_test || !in_handoff_region(tree, lines, li) {
            continue;
        }
        for call in [".clone()", ".to_vec()"] {
            let Some(pos) = line.code.find(call) else {
                continue;
            };
            let heavy_on_line = HEAVY_TYPES.iter().find(|t| line.code.contains(*t));
            let receiver = trailing_ident(&line.code[..pos]);
            let heavy_receiver = receiver
                .as_deref()
                .filter(|r| heavy_names.iter().any(|n| n == r));
            let what = match (heavy_on_line, heavy_receiver) {
                (Some(t), _) => t.to_string(),
                (None, Some(r)) => format!("`{r}`"),
                (None, None) => continue,
            };
            findings.push(Finding::new(
                file,
                li + 1,
                "clone-heavy-handoff",
                format!(
                    "{call} of heavy session data ({what}) inside a \
                     per-job/handoff loop multiplies allocator traffic by \
                     the worker count; move the clone out of the loop, hand \
                     off a borrow or an index, or wrap the data in Arc"
                ),
            ));
        }
    }
    findings
}

/// Identifiers declared with a heavy type anywhere in the file:
/// `let` bindings whose type or initializer mentions one, plus
/// `name: <Heavy>`-shaped fields and parameters.
fn heavy_idents(lines: &[Line], tree: &TokenTree) -> Vec<String> {
    let mut out = Vec::new();
    for b in &tree.bindings {
        if HEAVY_TYPES
            .iter()
            .any(|t| b.ty.contains(t) || b.init.contains(t))
        {
            out.push(b.name.clone());
        }
    }
    for line in lines {
        let code = &line.code;
        for t in HEAVY_TYPES {
            let mut start = 0;
            while let Some(p) = code[start..].find(t) {
                let at = start + p;
                let head = code[..at].trim_end();
                let head =
                    head.trim_end_matches(|c: char| "&mut <[(".contains(c) || c.is_whitespace());
                if let Some(h) = head.strip_suffix(':') {
                    if let Some(name) = trailing_ident(h) {
                        out.push(name);
                    }
                }
                start = at + t.len();
            }
        }
    }
    // Loop variables over a heavy collection are heavy themselves:
    // `for s in sessions` makes `s` heavy when `sessions` is.
    for line in lines {
        let code = line.code.trim_start();
        let Some(rest) = code.strip_prefix("for ") else {
            continue;
        };
        let Some(in_pos) = rest.find(" in ") else {
            continue;
        };
        let var = rest[..in_pos]
            .trim()
            .trim_start_matches(|c: char| "(&".contains(c));
        let Some(var) = leading_ident(var) else {
            continue;
        };
        let source = &rest[in_pos + 4..];
        let source_heavy = HEAVY_TYPES.iter().any(|t| source.contains(t))
            || source
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|tok| !tok.is_empty() && out.iter().any(|n| n == tok));
        if source_heavy {
            out.push(var);
        }
    }
    out.sort();
    out.dedup();
    out
}

fn leading_ident(s: &str) -> Option<String> {
    let end = s
        .char_indices()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(s.len(), |(i, _)| i);
    if end == 0 {
        None
    } else {
        Some(s[..end].to_string())
    }
}

/// Is 0-based `line` inside a loop that hands off work, or inside a
/// fan-out job body?
fn in_handoff_region(tree: &TokenTree, lines: &[Line], line: usize) -> bool {
    tree.scopes.iter().any(|s| {
        if !(s.start <= line && line <= s.end) {
            return false;
        }
        if FANOUT_HEADERS.iter().any(|h| s.header.contains(h)) {
            return true;
        }
        let header = s.header.trim_start();
        let is_loop = header.starts_with("for ")
            || header.starts_with("while ")
            || header.starts_with("loop");
        is_loop
            && lines[s.start..=s.end.min(lines.len() - 1)]
                .iter()
                .any(|l| HANDOFF_TOKENS.iter().any(|t| l.code.contains(t)))
    })
}

fn trailing_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let start = trimmed
        .char_indices()
        .rev()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(0, |(i, c)| i + c.len_utf8());
    if start == trimmed.len() {
        None
    } else {
        Some(trimmed[start..].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        let tree = TokenTree::build(&lines);
        crate::filter_allows(raw_findings("x.rs", &lines, &tree), &lines)
    }

    #[test]
    fn clone_in_send_loop_is_flagged() {
        let src = "fn f(sessions: &[ReassembledSession]) {\n    for s in sessions {\n        tx.send(s.clone());\n    }\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "clone-heavy-handoff");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn to_vec_in_fanout_is_flagged_via_binding_type() {
        let src = "fn f(entries: &[WeblogEntry]) {\n    run_indexed(4, cfg, |i| {\n        let mine = entries.to_vec();\n        work(i, mine)\n    });\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`entries`"), "{f:?}");
    }

    #[test]
    fn moved_value_is_fine() {
        let src = "fn f(sessions: Vec<ReassembledSession>) {\n    for s in sessions {\n        tx.send(s);\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn clone_outside_the_loop_is_fine() {
        let src = "fn f(template: &ReassembledSession) {\n    let copy = template.clone();\n    for i in 0..3 {\n        tx.send(i);\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn light_clone_in_loop_is_fine() {
        let src =
            "fn f(ids: &[u64]) {\n    for id in ids {\n        tx.send(id.clone());\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn loop_without_handoff_is_fine() {
        let src = "fn f(sessions: &[ReassembledSession]) {\n    for s in sessions {\n        out.push(s.clone());\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f(sessions: &[ReassembledSession]) {\n    for s in sessions {\n        // cold path, bounded by the retry cap. analyze:allow(clone-heavy-handoff)\n        tx.send(s.clone());\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(s: &[SessionTrace]) {\n        for x in s {\n            tx.send(x.clone());\n        }\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }
}
