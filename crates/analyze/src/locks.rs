//! Pass 7 — lock-across-handoff lint.
//!
//! The byte-identity contract (DESIGN.md §9/§10) keeps the sharded
//! engine and the training fan-out bit-identical at any worker count by
//! making every job self-contained. A `Mutex`/`RwLock` guard that is
//! still live when work is handed to another thread breaks that twice
//! over: it can deadlock (the receiver blocks on the lock the sender
//! still holds), and it serializes the hot path (every job queues on
//! one guard, so "parallel" becomes a convoy). Rule
//! `lock-across-handoff` flags two shapes:
//!
//! * **guard across handoff** — a binding initialized by `.lock()` /
//!   `.read()` / `.write()` that is still live (same scope, no `drop`)
//!   on a line performing a handoff: `.send(`, `.spawn(`,
//!   `thread::spawn`, or `par::run_indexed`;
//! * **lock inside a fan-out job** — a `.lock(` / `.read(` / `.write(`
//!   call (or a call to a closure that locks) *inside* the body of a
//!   spawned worker or `run_indexed` job, which is how the CFS merit
//!   cache serialized candidate scoring.
//!
//! `.read(`/`.write(` only count in files that mention `RwLock` at all
//! — `io::Read`/`Write` traits use the same method names. Test code is
//! exempt: tests synchronize however they like.

use std::fs;
use std::path::Path;

use crate::lexer::{lex_file, Line};
use crate::tree::TokenTree;
use crate::walk::{crate_dirs, rel, rust_sources};
use crate::Finding;

/// Tokens that hand work (and anything still borrowed) to another
/// thread.
const HANDOFF_TOKENS: &[&str] = &[".send(", ".spawn(", "thread::spawn", "run_indexed("];

/// Scope headers that make the scope body a parallel job.
const FANOUT_HEADERS: &[&str] = &["run_indexed(", ".spawn(", "thread::spawn"];

/// Run the lock-across-handoff pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (_name, dir) in crate_dirs(root) {
        for file in rust_sources(&dir.join("src")) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = lex_file(&text);
            let tree = TokenTree::build(&lines);
            findings.extend(crate::filter_allows(
                raw_findings(&rel(root, &file), &lines, &tree),
                &lines,
            ));
        }
    }
    findings
}

/// Per-file findings *before* `analyze:allow` filtering.
pub(crate) fn raw_findings(file: &str, lines: &[Line], tree: &TokenTree) -> Vec<Finding> {
    let mut findings = Vec::new();
    let has_rwlock = lines.iter().any(|l| l.code.contains("RwLock"));

    // Shape 1: a guard binding live across a handoff line.
    for b in &tree.bindings {
        let Some(how) = guard_kind(&b.init, has_rwlock) else {
            continue;
        };
        for (li, line) in lines
            .iter()
            .enumerate()
            .take(b.live_to + 1)
            .skip(b.line + 1)
        {
            if line.in_test {
                continue;
            }
            if let Some(tok) = HANDOFF_TOKENS.iter().find(|t| line.code.contains(*t)) {
                findings.push(Finding::new(
                    file,
                    li + 1,
                    "lock-across-handoff",
                    format!(
                        "`{}` (a {how} guard taken on line {}) is still live \
                         across `{}`; the receiving thread can block on the \
                         held lock — copy what the handoff needs out of the \
                         guard and drop it first",
                        b.name,
                        b.line + 1,
                        tok.trim_start_matches('.').trim_end_matches('('),
                    ),
                ));
            }
        }
    }

    // Shape 2: locking inside a fan-out job body.
    let locking_closures: Vec<&str> = tree
        .bindings
        .iter()
        .filter(|b| b.init.contains('|') && b.init.contains(".lock("))
        .map(|b| b.name.as_str())
        .collect();
    for (li, line) in lines.iter().enumerate() {
        if line.in_test || !in_fanout_body(tree, li) {
            continue;
        }
        if let Some(how) = lock_call(&line.code, has_rwlock) {
            findings.push(Finding::new(
                file,
                li + 1,
                "lock-across-handoff",
                format!(
                    "`{how}` inside a parallel fan-out job serializes the \
                     workers on one lock; precompute shared values before \
                     the fan-out, or give each worker its own slot and merge \
                     after the join"
                ),
            ));
        } else {
            for name in &locking_closures {
                if contains_ident(&line.code, name) {
                    findings.push(Finding::new(
                        file,
                        li + 1,
                        "lock-across-handoff",
                        format!(
                            "`{name}` locks internally and is used inside a \
                             parallel fan-out job; precompute its values \
                             before the fan-out so jobs stay lock-free"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Is `init` a lock-guard initializer? Returns a description of the
/// guard kind. Trailing `.unwrap()`/`.expect(...)` (poisoned-mutex
/// handling) is peeled first.
fn guard_kind(init: &str, has_rwlock: bool) -> Option<&'static str> {
    let mut t = init.trim_end();
    if let Some(p) = t.rfind(".unwrap()") {
        if p + ".unwrap()".len() == t.len() {
            t = t[..p].trim_end();
        }
    }
    if let Some(p) = t.rfind(".expect(") {
        if t.ends_with(')') {
            t = t[..p].trim_end();
        }
    }
    if t.ends_with(".lock()") {
        return Some("Mutex");
    }
    if has_rwlock && (t.ends_with(".read()") || t.ends_with(".write()")) {
        return Some("RwLock");
    }
    None
}

/// The lock call on this line, if any.
fn lock_call(code: &str, has_rwlock: bool) -> Option<&'static str> {
    if code.contains(".lock(") {
        return Some(".lock()");
    }
    if has_rwlock && code.contains(".read(") {
        return Some(".read()");
    }
    if has_rwlock && code.contains(".write(") {
        return Some(".write()");
    }
    None
}

/// Is 0-based `line` inside the body of a fan-out scope (worker closure
/// or `run_indexed` job)? The header line itself counts: a single-line
/// job body sits there.
fn in_fanout_body(tree: &TokenTree, line: usize) -> bool {
    tree.scopes.iter().any(|s| {
        s.start <= line && line <= s.end && FANOUT_HEADERS.iter().any(|h| s.header.contains(h))
    })
}

/// Identifier match with boundaries on both sides, so a closure named
/// `corr` is found in `merit(&corr)` but not in `class_corr`.
fn contains_ident(code: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(name) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = code.as_bytes()[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
        };
        let end = at + name.len();
        let after_ok = end >= code.len() || {
            let b = code.as_bytes()[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + name.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        let tree = TokenTree::build(&lines);
        crate::filter_allows(raw_findings("x.rs", &lines, &tree), &lines)
    }

    #[test]
    fn guard_live_across_send_is_flagged() {
        let src = "fn f() {\n    let guard = m.lock();\n    tx.send(*guard);\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-across-handoff");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`guard`"));
    }

    #[test]
    fn dropped_guard_is_fine() {
        let src =
            "fn f() {\n    let guard = m.lock();\n    let v = *guard;\n    drop(guard);\n    tx.send(v);\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn narrow_scope_guard_is_fine() {
        let src = "fn f() {\n    let v = { let guard = m.lock(); *guard };\n    tx.send(v);\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn rwlock_guard_across_spawn_is_flagged() {
        let src = "use std::sync::RwLock;\nfn f() {\n    let snap = state.read();\n    scope.spawn(|_| work(&snap));\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("RwLock"));
    }

    #[test]
    fn io_read_without_rwlock_in_file_is_fine() {
        let src = "fn f() {\n    let n = stream.read();\n    tx.send(n);\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn lock_inside_fanout_job_is_flagged() {
        let src = "fn f() {\n    run_indexed(4, cfg, |i| {\n        out.lock()[i] = Some(i);\n    });\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("fan-out"));
    }

    #[test]
    fn locking_closure_called_in_fanout_is_flagged() {
        let src = "fn f() {\n    let corr = |a: usize| -> f64 { cache.lock().get(a) };\n    run_indexed(4, cfg, |i| {\n        merit(corr(i))\n    });\n}\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("`corr`"));
    }

    #[test]
    fn lock_outside_fanout_is_fine() {
        let src = "fn f() {\n    let v = *m.lock();\n    use_it(v);\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f() {\n    let guard = m.lock();\n    // single consumer, bounded. analyze:allow(lock-across-handoff)\n    tx.send(*guard);\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let g = m.lock();\n        tx.send(*g);\n    }\n}\n";
        assert!(findings_in(src).is_empty());
    }
}
