//! Deterministic file discovery for the lint passes.
//!
//! Everything is sorted so diagnostics come out in the same order on
//! every run and every machine — an analyzer that lints the workspace
//! for determinism had better be deterministic itself.

use std::fs;
use std::path::{Path, PathBuf};

/// All `.rs` files under `dir`, recursively, in sorted path order.
/// `target/` subtrees are skipped; unreadable directories are treated
/// as empty (a linter reports on code, it does not crash on I/O).
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                collect(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace member crates: every `crates/<name>` directory holding a
/// `Cargo.toml`, as `(name, dir)` pairs in sorted name order.
pub fn member_crates(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return out;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if dir.is_dir() && dir.join("Cargo.toml").is_file() {
            if let Some(name) = dir.file_name().and_then(|n| n.to_str()) {
                out.push((name.to_string(), dir.clone()));
            }
        }
    }
    out.sort();
    out
}

/// Crate source directories: every `crates/<name>` directory, as
/// `(name, dir)` pairs in sorted name order. Unlike [`member_crates`]
/// this does not require a `Cargo.toml` — the line-level passes scan
/// fixture trees that carry bare `src/` layouts.
pub fn crate_dirs(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return out;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if dir.is_dir() {
            if let Some(name) = dir.file_name().and_then(|n| n.to_str()) {
                out.push((name.to_string(), dir.clone()));
            }
        }
    }
    out.sort();
    out
}

/// `path` relative to `root`, with forward slashes, for diagnostics.
pub fn rel(root: &Path, path: &Path) -> String {
    let s = path.strip_prefix(root).unwrap_or(path).to_string_lossy();
    s.replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_of_this_crate_are_found_sorted() {
        let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let files = rust_sources(&src);
        assert!(files.iter().any(|f| f.ends_with("lexer.rs")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn member_listing_includes_this_crate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let members = member_crates(&root);
        assert!(members.iter().any(|(n, _)| n == "analyze"));
        assert!(members.iter().any(|(n, _)| n == "telemetry"));
    }

    #[test]
    fn missing_directory_yields_no_sources() {
        assert!(rust_sources(Path::new("/nonexistent/nowhere")).is_empty());
    }
}
