//! Pass 1 — determinism lint.
//!
//! The paper's pipeline is evaluated end-to-end on *simulated* sessions,
//! so every number in the reproduction must be a pure function of the
//! configured seeds. Three things silently break that:
//!
//! * `rand::thread_rng` — an OS-seeded generator (rule `thread-rng`);
//! * wall-clock reads — `SystemTime::now` / `Instant::now` (rule
//!   `wall-clock`); simulated time lives in `vqoe_simnet::time`;
//! * iterating a `HashMap` — iteration order varies per process because
//!   of `RandomState` hashing (rule `hashmap-iter`); keyed access is
//!   fine, ordered walks need a `BTreeMap` or a sorted key vector. This
//!   rule skips `#[cfg(test)]` code: the map-name tracking is file-global
//!   and tests legitimately shadow library binding names.
//!
//! `crates/bench` is deliberately *not* in [`crate::DETERMINISM_CRATES`]:
//! measuring wall-clock time is its whole job.

use std::fs;
use std::path::Path;

use crate::lexer::{lex_file, Line};
use crate::walk::{rel, rust_sources};
use crate::{Finding, DETERMINISM_CRATES};

/// Methods that iterate a map in storage order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Run the determinism pass over the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for name in DETERMINISM_CRATES {
        let src = root.join("crates").join(name).join("src");
        for file in rust_sources(&src) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = lex_file(&text);
            findings.extend(crate::filter_allows(
                raw_findings(&rel(root, &file), &lines),
                &lines,
            ));
        }
    }
    findings
}

/// Per-file findings *before* `analyze:allow` filtering (the stale-allow
/// pass compares markers against these).
pub(crate) fn raw_findings(file: &str, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let maps = hashmap_names(lines);
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut push = |rule: &str, message: String| {
            findings.push(Finding::new(file, lineno, rule, message));
        };
        if contains_token(&line.code, "thread_rng") {
            push(
                "thread-rng",
                "OS-seeded `thread_rng` breaks reproducibility; take an explicit \
                 seeded Rng instead"
                    .to_string(),
            );
        }
        for clock in ["SystemTime::now", "Instant::now"] {
            if contains_token(&line.code, clock) {
                push(
                    "wall-clock",
                    format!(
                        "wall-clock read `{clock}` in deterministic code; use \
                         `vqoe_simnet::time` (bench code is exempt by crate)"
                    ),
                );
            }
        }
        // The map-name heuristic is file-global, so a test that reuses a
        // library binding's name for a Vec would false-positive; test
        // code is exempt (an order-dependent test fails loudly anyway).
        for map in maps.iter().filter(|_| !line.in_test) {
            if let Some(how) = iterates(&line.code, map) {
                push(
                    "hashmap-iter",
                    format!(
                        "`{map}` is a HashMap and `{how}` walks it in random \
                         RandomState order; use a BTreeMap or sort the keys first"
                    ),
                );
            }
        }
    }
    findings
}

/// Identifiers declared as `HashMap` in this file: `let`/`let mut`
/// bindings whose line mentions `HashMap`, and struct fields typed
/// `HashMap<...>`.
fn hashmap_names(lines: &[Line]) -> Vec<String> {
    let mut names = Vec::new();
    for line in lines {
        let code = &line.code;
        if !code.contains("HashMap") {
            continue;
        }
        if let Some(pos) = code.find("let ") {
            let rest = code[pos + 4..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            if let Some(name) = leading_ident(rest) {
                names.push(name);
                continue;
            }
        }
        // `field_name: HashMap<...>` — struct field or function parameter.
        if let Some(pos) = code.find(": HashMap<") {
            if let Some(name) = trailing_ident(&code[..pos]) {
                names.push(name);
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Does this line iterate `map`? Returns a short description of how.
fn iterates(code: &str, map: &str) -> Option<String> {
    for method in ITER_METHODS {
        let pat = format!("{map}{method}");
        if contains_token(code, &pat) {
            return Some(format!("{map}{method}"));
        }
    }
    // `for x in map`, `for x in &map`, `for x in &mut map`.
    if let Some(pos) = code.find(" in ") {
        let rest = code[pos + 4..].trim_start();
        let rest = rest.strip_prefix("&mut ").unwrap_or(rest);
        let rest = rest.strip_prefix('&').unwrap_or(rest);
        let rest = rest.strip_prefix("self.").unwrap_or(rest);
        if leading_ident(rest).as_deref() == Some(map)
            && !rest[map.len()..].starts_with('.')
            && code.trim_start().starts_with("for ")
        {
            return Some(format!("for _ in {map}"));
        }
    }
    None
}

/// Substring match with identifier boundaries on both sides, so
/// `thread_rng` does not fire on `my_thread_rng_like`.
fn contains_token(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1]);
        let end = at + pat.len();
        let after_ok = end >= code.len() || !is_ident_char(code.as_bytes()[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + pat.len();
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn leading_ident(s: &str) -> Option<String> {
    let end = s
        .char_indices()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(s.len(), |(i, _)| i);
    if end == 0 {
        None
    } else {
        Some(s[..end].to_string())
    }
}

fn trailing_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let start = trimmed
        .char_indices()
        .rev()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(0, |(i, c)| i + c.len_utf8());
    if start == trimmed.len() {
        None
    } else {
        Some(trimmed[start..].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str) -> Vec<Finding> {
        let lines = lex_file(src);
        crate::filter_allows(raw_findings("x.rs", &lines), &lines)
    }

    #[test]
    fn thread_rng_is_flagged_with_boundaries() {
        let f = findings_in("let mut rng = rand::thread_rng();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "thread-rng");
        assert!(findings_in("fn not_a_thread_rng_thing() {}\n").is_empty());
    }

    #[test]
    fn wall_clock_reads_are_flagged() {
        let f = findings_in("let t = std::time::Instant::now();\n");
        assert_eq!(f[0].rule, "wall-clock");
        let f = findings_in("let t = SystemTime::now();\n");
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn hashmap_iteration_is_flagged_but_keyed_access_is_not() {
        let src = "let mut m: HashMap<u64, u32> = HashMap::new();\n\
                   for (k, v) in &m {\n}\n\
                   let one = m.get(&3);\n\
                   let all: Vec<_> = m.values().collect();\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "hashmap-iter"));
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 5);
    }

    #[test]
    fn struct_field_hashmaps_are_tracked() {
        let src = "struct S {\n    per_id: HashMap<u64, u32>,\n}\n\
                   fn f(s: S) { for v in s.per_id.values() {} }\n";
        let f = findings_in(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("per_id.values()"));
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "// analyze:allow(wall-clock)\nlet t = Instant::now();\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// uses Instant::now() internally\nlet s = \"thread_rng\";\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn hashmap_rule_skips_test_code_with_shadowed_names() {
        let src = "fn lib() { let m: HashMap<u32, u32> = HashMap::new(); m.get(&1); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let m = vec![1]; for x in m.iter() {} }\n}\n";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "let m: BTreeMap<u64, u32> = BTreeMap::new();\nfor v in m.values() {}\n";
        assert!(findings_in(src).is_empty());
    }
}
