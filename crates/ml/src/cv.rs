//! Stratified k-fold cross-validation.
//!
//! §4: "we use ... the Random Forest algorithm and 10-fold
//! cross-validation". Folds are stratified (each fold preserves the
//! class mix) and, per §4.1's protocol, the *training* side of each fold
//! is class-balanced by downsampling while the *test* side keeps its
//! natural distribution — "the instances in the classes are then
//! restored to their original numbers for testing".
//!
//! Folds are mutually independent once assigned, so
//! [`cross_validate_with`] fans them out over [`run_indexed`] and merges
//! the per-fold prediction lists back in fold order: the aggregate
//! confusion matrix is byte-identical to the sequential path at any
//! worker count. Each fold derives its seeds through [`splitmix64`]
//! (DESIGN.md §10) so a fold's tree family cannot collide with another
//! fold's, or with the fold-assignment stream.

use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};
use crate::metrics::ConfusionMatrix;
use crate::par::{run_indexed, splitmix64, TrainConfig, SEED_STRIDE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Domain-separation tag mixed into a fold's seed before deriving its
/// balanced-downsample RNG, so the balance stream and the forest's tree
/// streams start from unrelated points.
const BALANCE_STREAM: u64 = 0xBA1A_4CED_0000_0001;

/// Stratified fold assignment: returns `k` disjoint row-index lists
/// whose union is `0..y.len()`, each approximating the global class mix.
///
/// # Panics
/// Panics if `k == 0`.
pub fn stratified_kfold(y: &[usize], k: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one fold");
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &label) in y.iter().enumerate() {
        per_class[label].push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for rows in per_class.iter_mut() {
        rows.shuffle(rng);
        for (j, &row) in rows.iter().enumerate() {
            folds[j % k].push(row);
        }
    }
    folds
}

/// Everything a cross-validation run produced, beyond the bare matrix:
/// how many folds contributed, how many were silently unusable, and how
/// much work was done — so callers (and `PipelineMetrics`) can tell a
/// 10-fold estimate from a "10-fold" run that really scored 3 folds.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// Aggregate confusion matrix over every scored fold.
    pub matrix: ConfusionMatrix,
    /// Folds that produced no predictions: empty test fold (`k` larger
    /// than a class's row count), empty training side (`k == 1`), or a
    /// balanced-training set that downsampled to nothing.
    pub skipped_folds: usize,
    /// Test-fold size per fold, in fold order (`0` for skipped folds —
    /// also the per-fold work measure `StageSpan` ticks record).
    pub fold_test_sizes: Vec<usize>,
    /// Total trees fitted across the scored folds.
    pub trees_fitted: usize,
}

impl CvReport {
    /// Number of folds that actually contributed predictions.
    pub fn scored_folds(&self) -> usize {
        self.fold_test_sizes.len() - self.skipped_folds
    }
}

/// Run k-fold cross-validation of a Random Forest over `data`,
/// aggregating one confusion matrix across folds.
///
/// `balance_training` applies the paper's balanced-train /
/// natural-test protocol. Sequential reference path; see
/// [`cross_validate_with`] for the parallel variant and the full
/// [`CvReport`].
pub fn cross_validate(
    data: &Dataset,
    k: usize,
    forest_config: ForestConfig,
    balance_training: bool,
    seed: u64,
) -> ConfusionMatrix {
    cross_validate_with(
        data,
        k,
        forest_config,
        balance_training,
        seed,
        TrainConfig::sequential(),
    )
    .matrix
}

/// [`cross_validate`] with an explicit worker policy, returning the full
/// [`CvReport`].
///
/// Fold assignment consumes the `seed` stream exactly as before; each
/// fold then derives `fs = splitmix64(seed + fold · SEED_STRIDE)` for
/// its forest (`cfg.seed = fs`) and
/// `splitmix64(fs ^ BALANCE_STREAM)` for its balanced-downsample RNG,
/// making folds self-contained jobs. The report is byte-identical for
/// every value of `train.workers`.
pub fn cross_validate_with(
    data: &Dataset,
    k: usize,
    forest_config: ForestConfig,
    balance_training: bool,
    seed: u64,
    train: TrainConfig,
) -> CvReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let folds = stratified_kfold(&data.y, k, &mut rng);
    // One fold = one job: predictions for its natural-distribution test
    // side, or None when the fold is unusable. Inner forest fits stay
    // sequential — the fold fan-out already saturates the workers.
    let per_fold: Vec<Option<Vec<(usize, usize)>>> = run_indexed(k, train, |test_fold| {
        let test_rows = &folds[test_fold];
        if test_rows.is_empty() {
            return None;
        }
        let train_rows: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != test_fold)
            .flat_map(|(_, rows)| rows.iter().copied())
            .collect();
        if train_rows.is_empty() {
            return None;
        }
        let fs = splitmix64(seed.wrapping_add((test_fold as u64).wrapping_mul(SEED_STRIDE)));
        let mut train_set = data.subset(&train_rows);
        if balance_training {
            let mut balance_rng = StdRng::seed_from_u64(splitmix64(fs ^ BALANCE_STREAM));
            train_set = train_set.balanced_downsample(&mut balance_rng);
        }
        if train_set.n_rows() == 0 {
            return None;
        }
        let mut cfg = forest_config;
        cfg.seed = fs;
        let forest = RandomForest::fit(&train_set, cfg);
        let test = data.subset(test_rows);
        let preds = forest.predict_all(&test);
        Some(test.y.iter().copied().zip(preds).collect())
    });
    // Merge in fold order — the order predictions enter the matrix is
    // part of the determinism contract.
    let mut matrix = ConfusionMatrix::new(data.class_names.clone());
    let mut skipped_folds = 0;
    let mut fold_test_sizes = Vec::with_capacity(k);
    let mut trees_fitted = 0;
    for pairs in &per_fold {
        match pairs {
            Some(pairs) => {
                fold_test_sizes.push(pairs.len());
                trees_fitted += forest_config.n_trees;
                for &(actual, pred) in pairs {
                    matrix.record(actual, pred);
                }
            }
            None => {
                fold_test_sizes.push(0);
                skipped_folds += 1;
            }
        }
    }
    CvReport {
        matrix,
        skipped_folds,
        fold_test_sizes,
        trees_fitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = if rng.gen_bool(0.7) { 0 } else { 1 };
            let base = c as f64 * 2.0;
            x.push(vec![base + rng.gen_range(-0.8..0.8)]);
            y.push(c);
        }
        Dataset::new(vec!["f".into()], vec!["common".into(), "rare".into()], x, y)
    }

    #[test]
    fn folds_partition_all_rows() {
        let d = dataset(103, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let folds = stratified_kfold(&d.y, 10, &mut rng);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn folds_preserve_class_mix() {
        let d = dataset(500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let folds = stratified_kfold(&d.y, 5, &mut rng);
        let global_frac = d.y.iter().filter(|&&c| c == 0).count() as f64 / d.n_rows() as f64;
        for fold in &folds {
            let frac = fold.iter().filter(|&&r| d.y[r] == 0).count() as f64 / fold.len() as f64;
            assert!(
                (frac - global_frac).abs() < 0.08,
                "fold mix {frac} vs global {global_frac}"
            );
        }
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let d = dataset(101, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let folds = stratified_kfold(&d.y, 10, &mut rng);
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 2, "sizes {sizes:?}");
    }

    #[test]
    fn cross_validation_covers_every_row_once() {
        let d = dataset(120, 7);
        let m = cross_validate(&d, 10, ForestConfig::default(), true, 42);
        assert_eq!(m.total() as usize, d.n_rows());
    }

    #[test]
    fn cross_validation_learns_a_separable_problem() {
        let d = dataset(300, 8);
        let m = cross_validate(&d, 10, ForestConfig::default(), true, 42);
        assert!(m.accuracy() > 0.85, "accuracy {}", m.accuracy());
    }

    #[test]
    fn cv_is_deterministic() {
        let d = dataset(150, 9);
        let a = cross_validate(&d, 5, ForestConfig::default(), true, 11);
        let b = cross_validate(&d, 5, ForestConfig::default(), true, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_cv_is_byte_identical_to_sequential() {
        let d = dataset(140, 13);
        let reference = cross_validate_with(
            &d,
            10,
            ForestConfig::default(),
            true,
            42,
            TrainConfig::sequential(),
        );
        for workers in [2usize, 7] {
            let got = cross_validate_with(
                &d,
                10,
                ForestConfig::default(),
                true,
                42,
                TrainConfig::with_workers(workers),
            );
            assert_eq!(reference, got, "workers {workers}");
        }
        assert_eq!(reference.skipped_folds, 0);
        assert_eq!(reference.scored_folds(), 10);
        assert_eq!(reference.trees_fitted, 10 * ForestConfig::default().n_trees);
    }

    #[test]
    fn single_fold_degenerates_without_panicking() {
        let d = dataset(20, 10);
        // k=1: the only fold is the test fold, training side is empty →
        // nothing is recorded, but the skip is now visible.
        let r = cross_validate_with(
            &d,
            1,
            ForestConfig::default(),
            true,
            12,
            TrainConfig::sequential(),
        );
        assert_eq!(r.matrix.total(), 0);
        assert_eq!(r.skipped_folds, 1);
        assert_eq!(r.scored_folds(), 0);
        assert_eq!(r.fold_test_sizes, vec![0]);
    }

    #[test]
    fn more_folds_than_rows_surfaces_the_skips() {
        // 6 rows, k=12: at least 6 folds are empty on the test side and
        // must be counted, while every row still gets scored once.
        let d = dataset(6, 14);
        let r = cross_validate_with(
            &d,
            12,
            ForestConfig::default(),
            true,
            15,
            TrainConfig::sequential(),
        );
        assert!(r.skipped_folds >= 6, "skipped {}", r.skipped_folds);
        assert_eq!(r.fold_test_sizes.len(), 12);
        assert_eq!(r.matrix.total() as usize, d.n_rows());
        assert_eq!(
            r.trees_fitted,
            r.scored_folds() * ForestConfig::default().n_trees
        );
    }

    #[test]
    fn single_class_folds_still_score_every_row() {
        // All rows share one class: the balanced training side is the
        // whole training fold, predictions are trivially that class, and
        // no fold is skipped.
        let n = 30;
        let d = Dataset::new(
            vec!["f".into()],
            vec!["only".into()],
            (0..n).map(|i| vec![i as f64]).collect(),
            vec![0; n],
        );
        let r = cross_validate_with(
            &d,
            5,
            ForestConfig::default(),
            true,
            16,
            TrainConfig::sequential(),
        );
        assert_eq!(r.skipped_folds, 0);
        assert_eq!(r.matrix.total() as usize, n);
        assert!((r.matrix.accuracy() - 1.0).abs() < 1e-12);
    }
}
