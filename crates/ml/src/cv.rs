//! Stratified k-fold cross-validation.
//!
//! §4: "we use ... the Random Forest algorithm and 10-fold
//! cross-validation". Folds are stratified (each fold preserves the
//! class mix) and, per §4.1's protocol, the *training* side of each fold
//! is class-balanced by downsampling while the *test* side keeps its
//! natural distribution — "the instances in the classes are then
//! restored to their original numbers for testing".

use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};
use crate::metrics::ConfusionMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Stratified fold assignment: returns `k` disjoint row-index lists
/// whose union is `0..y.len()`, each approximating the global class mix.
///
/// # Panics
/// Panics if `k == 0`.
pub fn stratified_kfold(y: &[usize], k: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one fold");
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &label) in y.iter().enumerate() {
        per_class[label].push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for rows in per_class.iter_mut() {
        rows.shuffle(rng);
        for (j, &row) in rows.iter().enumerate() {
            folds[j % k].push(row);
        }
    }
    folds
}

/// Run k-fold cross-validation of a Random Forest over `data`,
/// aggregating one confusion matrix across folds.
///
/// `balance_training` applies the paper's balanced-train /
/// natural-test protocol.
pub fn cross_validate(
    data: &Dataset,
    k: usize,
    forest_config: ForestConfig,
    balance_training: bool,
    seed: u64,
) -> ConfusionMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let folds = stratified_kfold(&data.y, k, &mut rng);
    let mut matrix = ConfusionMatrix::new(data.class_names.clone());
    for test_fold in 0..k {
        let test_rows = &folds[test_fold];
        if test_rows.is_empty() {
            continue;
        }
        let train_rows: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != test_fold)
            .flat_map(|(_, rows)| rows.iter().copied())
            .collect();
        if train_rows.is_empty() {
            continue;
        }
        let mut train = data.subset(&train_rows);
        if balance_training {
            train = train.balanced_downsample(&mut rng);
        }
        if train.n_rows() == 0 {
            continue;
        }
        let mut cfg = forest_config;
        cfg.seed = forest_config.seed.wrapping_add(test_fold as u64);
        let forest = RandomForest::fit(&train, cfg);
        let test = data.subset(test_rows);
        let preds = forest.predict_all(&test);
        for (&a, &p) in test.y.iter().zip(preds.iter()) {
            matrix.record(a, p);
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = if rng.gen_bool(0.7) { 0 } else { 1 };
            let base = c as f64 * 2.0;
            x.push(vec![base + rng.gen_range(-0.8..0.8)]);
            y.push(c);
        }
        Dataset::new(vec!["f".into()], vec!["common".into(), "rare".into()], x, y)
    }

    #[test]
    fn folds_partition_all_rows() {
        let d = dataset(103, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let folds = stratified_kfold(&d.y, 10, &mut rng);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn folds_preserve_class_mix() {
        let d = dataset(500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let folds = stratified_kfold(&d.y, 5, &mut rng);
        let global_frac = d.y.iter().filter(|&&c| c == 0).count() as f64 / d.n_rows() as f64;
        for fold in &folds {
            let frac = fold.iter().filter(|&&r| d.y[r] == 0).count() as f64 / fold.len() as f64;
            assert!(
                (frac - global_frac).abs() < 0.08,
                "fold mix {frac} vs global {global_frac}"
            );
        }
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let d = dataset(101, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let folds = stratified_kfold(&d.y, 10, &mut rng);
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 2, "sizes {sizes:?}");
    }

    #[test]
    fn cross_validation_covers_every_row_once() {
        let d = dataset(120, 7);
        let m = cross_validate(&d, 10, ForestConfig::default(), true, 42);
        assert_eq!(m.total() as usize, d.n_rows());
    }

    #[test]
    fn cross_validation_learns_a_separable_problem() {
        let d = dataset(300, 8);
        let m = cross_validate(&d, 10, ForestConfig::default(), true, 42);
        assert!(m.accuracy() > 0.85, "accuracy {}", m.accuracy());
    }

    #[test]
    fn cv_is_deterministic() {
        let d = dataset(150, 9);
        let a = cross_validate(&d, 5, ForestConfig::default(), true, 11);
        let b = cross_validate(&d, 5, ForestConfig::default(), true, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn single_fold_degenerates_without_panicking() {
        let d = dataset(20, 10);
        // k=1: the only fold is the test fold, training side is empty →
        // nothing is recorded, but nothing panics either.
        let m = cross_validate(&d, 1, ForestConfig::default(), true, 12);
        assert_eq!(m.total(), 0);
    }
}
