//! Feature ranking and subset selection.
//!
//! Two Weka-equivalent tools the paper uses:
//!
//! * **Information-gain ranking** (`InfoGainAttributeEval`): each
//!   continuous feature is discretized and scored by `IG(class;
//!   feature)`. This produces the gain columns of Tables 2 and 5.
//! * **Correlation-based Feature Subset Selection** (`CfsSubsetEval` +
//!   `BestFirst`): greedy best-first search over feature subsets scored
//!   by the CFS merit
//!   `k·r̄_cf / sqrt(k + k(k−1)·r̄_ff)`,
//!   where `r̄_cf` is the mean feature–class symmetrical uncertainty and
//!   `r̄_ff` the mean feature–feature symmetrical uncertainty — subsets
//!   of features individually predictive of the class yet mutually
//!   uncorrelated. This is the §4.1/§4.2 step that reduces 70 → 4 and
//!   210 → 15 features.

use crate::dataset::Dataset;
use crate::par::{run_indexed, TrainConfig};
use serde::{Deserialize, Serialize};
use vqoe_stats::binning::{BinningStrategy, Discretizer};
use vqoe_stats::info::{info_gain, symmetrical_uncertainty};

/// Bins used when discretizing continuous features for the
/// information-theoretic scores.
const DISCRETIZATION_BINS: usize = 10;

/// A feature with its information-gain score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedFeature {
    /// Column index in the source dataset.
    pub index: usize,
    /// Column name.
    pub name: String,
    /// Information gain (bits) of the discretized feature vs the class.
    pub gain: f64,
}

/// Discretize every feature column (equal-frequency bins) for the
/// information-theoretic machinery. Columns are independent, so this
/// fans out per feature.
fn discretize_all(data: &Dataset, train: TrainConfig) -> Vec<Vec<usize>> {
    run_indexed(data.n_features(), train, |f| {
        let col = data.column(f);
        let disc = Discretizer::fit(
            &col,
            BinningStrategy::EqualFrequency {
                bins: DISCRETIZATION_BINS,
            },
        );
        disc.transform(&col)
    })
}

/// Rank all features by information gain, descending (ties broken by
/// column order for determinism). Sequential reference path; see
/// [`info_gain_ranking_with`].
pub fn info_gain_ranking(data: &Dataset) -> Vec<RankedFeature> {
    info_gain_ranking_with(data, TrainConfig::sequential())
}

/// [`info_gain_ranking`] with an explicit worker policy; per-feature
/// scores fan out, output is byte-identical at any worker count.
pub fn info_gain_ranking_with(data: &Dataset, train: TrainConfig) -> Vec<RankedFeature> {
    let discretized = discretize_all(data, train);
    let gains = run_indexed(discretized.len(), train, |i| {
        info_gain(&data.y, &discretized[i])
    });
    let mut ranked: Vec<RankedFeature> = gains
        .into_iter()
        .enumerate()
        .map(|(i, gain)| RankedFeature {
            index: i,
            name: data.feature_names[i].clone(),
            gain,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.gain
            .partial_cmp(&a.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    ranked
}

/// CFS merit of a feature subset given precomputed correlations. Every
/// feature pair of `subset` must already be present in `pair_su`
/// (normalized `(min, max)` keys); the caller precomputes them before
/// fanning merits out, so merit jobs stay lock-free.
fn merit(
    subset: &[usize],
    class_corr: &[f64],
    pair_su: &std::collections::BTreeMap<(usize, usize), f64>,
) -> f64 {
    let k = subset.len() as f64;
    if subset.is_empty() {
        return 0.0;
    }
    let mean_cf: f64 = subset.iter().map(|&f| class_corr[f]).sum::<f64>() / k;
    let mut sum_ff = 0.0;
    let mut pairs = 0.0;
    for (i, &a) in subset.iter().enumerate() {
        for &b in subset.iter().skip(i + 1) {
            let key = if a < b { (a, b) } else { (b, a) };
            sum_ff += pair_su.get(&key).copied().unwrap_or(0.0);
            pairs += 1.0;
        }
    }
    let mean_ff = if pairs > 0.0 { sum_ff / pairs } else { 0.0 };
    let denom = (k + k * (k - 1.0) * mean_ff).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    k * mean_cf / denom
}

/// CfsSubsetEval with best-first forward search.
///
/// `max_stale` is the Weka stopping criterion: abandon the search after
/// this many consecutive expansions without improvement (Weka default 5).
/// Returns the selected column indices, sorted by their class
/// correlation (strongest first).
pub fn cfs_best_first(data: &Dataset, max_stale: usize) -> Vec<usize> {
    cfs_best_first_with(data, max_stale, TrainConfig::sequential())
}

/// [`cfs_best_first`] with an explicit worker policy.
///
/// The best-first walk itself is inherently sequential (each expansion
/// depends on the frontier the last one produced), but the expensive
/// part of one expansion — scoring every candidate subset — is not:
/// candidates are generated in feature order, their merits fan out over
/// [`run_indexed`], and the results are folded back in the same feature
/// order, so the search trajectory (and therefore the selected subset)
/// is byte-identical at any worker count.
pub fn cfs_best_first_with(data: &Dataset, max_stale: usize, train: TrainConfig) -> Vec<usize> {
    let n = data.n_features();
    if n == 0 {
        return Vec::new();
    }
    let discretized = discretize_all(data, train);
    let class_corr: Vec<f64> = run_indexed(n, train, |f| {
        symmetrical_uncertainty(&discretized[f], &data.y)
    });

    // Feature–feature SU is computed on demand and memoized: the search
    // touches only a small corner of the O(n²) matrix. Each expansion
    // first collects the pairs its candidates need but the memo lacks,
    // computes those in their own deterministic fan-out (SU is a pure
    // function of the pair), and inserts them sequentially — so the
    // merit fan-out below reads a plain `&BTreeMap` without ever taking
    // a lock inside a job.
    let mut pair_su = std::collections::BTreeMap::<(usize, usize), f64>::new();

    // Best-first: frontier ordered by merit; expand the best open node by
    // adding each unused feature.
    let mut best_subset: Vec<usize> = Vec::new();
    let mut best_merit = 0.0f64;
    let mut frontier: Vec<(f64, Vec<usize>)> = vec![(0.0, Vec::new())];
    let mut visited = std::collections::HashSet::<Vec<usize>>::new();
    let mut stale = 0usize;

    while let Some(pos) = frontier
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1 .0
                .partial_cmp(&b.1 .0)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
    {
        let (_, subset) = frontier.swap_remove(pos);
        // Generate the expansion's candidate subsets in feature order
        // (dedup against `visited` sequentially), then score them in a
        // single fan-out.
        let mut candidates: Vec<Vec<usize>> = Vec::new();
        for f in 0..n {
            if subset.contains(&f) {
                continue;
            }
            let mut candidate = subset.clone();
            candidate.push(f);
            candidate.sort_unstable();
            if visited.insert(candidate.clone()) {
                candidates.push(candidate);
            }
        }
        let mut missing: Vec<(usize, usize)> = Vec::new();
        for candidate in &candidates {
            for (i, &a) in candidate.iter().enumerate() {
                for &b in candidate.iter().skip(i + 1) {
                    // Candidates are sorted, so (a, b) is normalized.
                    if !pair_su.contains_key(&(a, b)) {
                        missing.push((a, b));
                    }
                }
            }
        }
        missing.sort_unstable();
        missing.dedup();
        let su_vals = run_indexed(missing.len(), train, |i| {
            let (a, b) = missing[i];
            symmetrical_uncertainty(&discretized[a], &discretized[b])
        });
        for (&key, v) in missing.iter().zip(su_vals) {
            pair_su.insert(key, v);
        }
        let merits = run_indexed(candidates.len(), train, |i| {
            merit(&candidates[i], &class_corr, &pair_su)
        });
        let mut improved = false;
        for (candidate, m) in candidates.into_iter().zip(merits) {
            if m > best_merit + 1e-9 {
                best_merit = m;
                best_subset = candidate.clone();
                improved = true;
            }
            frontier.push((m, candidate));
        }
        if improved {
            stale = 0;
        } else {
            stale += 1;
            if stale >= max_stale {
                break;
            }
        }
        // Safety valve on pathological frontiers.
        if frontier.len() > 20_000 {
            frontier.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            frontier.truncate(5_000);
        }
    }

    best_subset.sort_by(|&a, &b| {
        class_corr[b]
            .partial_cmp(&class_corr[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    best_subset
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dataset where feature 0 determines the class, feature 1 is a
    /// noisy copy of feature 0, and feature 2 is pure noise.
    fn redundant_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let c: usize = rng.gen_range(0..2);
            let signal = c as f64 * 4.0 + rng.gen_range(-1.0..1.0);
            x.push(vec![
                signal,
                signal + rng.gen_range(-0.5..0.5),
                rng.gen_range(-10.0..10.0),
            ]);
            y.push(c);
        }
        Dataset::new(
            vec!["signal".into(), "echo".into(), "noise".into()],
            vec!["a".into(), "b".into()],
            x,
            y,
        )
    }

    #[test]
    fn info_gain_ranks_signal_above_noise() {
        let d = redundant_dataset(1);
        let ranked = info_gain_ranking(&d);
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].name == "signal" || ranked[0].name == "echo");
        assert_eq!(ranked[2].name, "noise");
        assert!(ranked[0].gain > 0.5, "gain {}", ranked[0].gain);
        assert!(ranked[2].gain < 0.1, "noise gain {}", ranked[2].gain);
        // Descending order.
        for w in ranked.windows(2) {
            assert!(w[0].gain >= w[1].gain);
        }
    }

    #[test]
    fn cfs_keeps_signal_drops_noise_and_redundancy() {
        let d = redundant_dataset(2);
        let selected = cfs_best_first(&d, 5);
        assert!(!selected.is_empty());
        // The noise feature must not be selected.
        assert!(
            !selected.iter().any(|&f| d.feature_names[f] == "noise"),
            "noise selected: {selected:?}"
        );
        // Redundancy penalty: the echo adds almost no merit beyond the
        // signal, so CFS keeps at most the pair — never the noise, and
        // never a bloated subset.
        assert!(
            selected.len() <= 2,
            "subset bloated: {:?}",
            selected
                .iter()
                .map(|&f| &d.feature_names[f])
                .collect::<Vec<_>>()
        );
        assert!(selected
            .iter()
            .any(|&f| d.feature_names[f] == "signal" || d.feature_names[f] == "echo"));
    }

    #[test]
    fn cfs_selects_complementary_features() {
        // Class = quadrant: needs BOTH features; neither alone suffices
        // fully, and they are mutually uncorrelated.
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..600 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            let c = match (a > 0.0, b > 0.0) {
                (false, false) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (true, true) => 3,
            };
            x.push(vec![a, b, rng.gen_range(-1.0..1.0)]);
            y.push(c);
        }
        let d = Dataset::new(
            vec!["fa".into(), "fb".into(), "junk".into()],
            vec!["q0".into(), "q1".into(), "q2".into(), "q3".into()],
            x,
            y,
        );
        let selected = cfs_best_first(&d, 5);
        let names: Vec<&str> = selected
            .iter()
            .map(|&f| d.feature_names[f].as_str())
            .collect();
        assert!(names.contains(&"fa"), "{names:?}");
        assert!(names.contains(&"fb"), "{names:?}");
        assert!(!names.contains(&"junk"), "{names:?}");
    }

    #[test]
    fn empty_dataset_yields_empty_selection() {
        let d = Dataset::new(vec![], vec!["a".into()], vec![vec![]; 3], vec![0, 0, 0]);
        assert!(cfs_best_first(&d, 5).is_empty());
        assert!(info_gain_ranking(&d).is_empty());
    }

    #[test]
    fn selection_is_deterministic() {
        let d = redundant_dataset(4);
        assert_eq!(cfs_best_first(&d, 5), cfs_best_first(&d, 5));
        let r1 = info_gain_ranking(&d);
        let r2 = info_gain_ranking(&d);
        assert_eq!(r1, r2);
    }

    #[test]
    fn parallel_selection_matches_sequential_at_any_worker_count() {
        let d = redundant_dataset(6);
        let seq_sel = cfs_best_first_with(&d, 5, TrainConfig::sequential());
        let seq_rank = info_gain_ranking_with(&d, TrainConfig::sequential());
        for workers in [2usize, 7] {
            let cfg = TrainConfig::with_workers(workers);
            assert_eq!(
                cfs_best_first_with(&d, 5, cfg),
                seq_sel,
                "workers {workers}"
            );
            assert_eq!(
                info_gain_ranking_with(&d, cfg),
                seq_rank,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn constant_feature_has_zero_gain() {
        let d = Dataset::new(
            vec!["const".into(), "useful".into()],
            vec!["a".into(), "b".into()],
            (0..40)
                .map(|i| vec![7.0, if i < 20 { 0.0 } else { 1.0 }])
                .collect(),
            (0..40).map(|i| usize::from(i >= 20)).collect(),
        );
        let ranked = info_gain_ranking(&d);
        let const_rank = ranked.iter().find(|r| r.name == "const").unwrap();
        assert_eq!(const_rank.gain, 0.0);
        assert_eq!(ranked[0].name, "useful");
        assert!((ranked[0].gain - 1.0).abs() < 1e-9);
    }
}
