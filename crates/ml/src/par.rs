//! Deterministic parallel fan-out for the training pipeline.
//!
//! Everything the training stack parallelizes — trees within a forest,
//! folds within a cross-validation, candidate features within a CFS
//! sweep — is an *indexed* job list whose jobs are mutually independent
//! once each derives its own RNG stream. [`run_indexed`] fans such a
//! list out over a `crossbeam` scope and returns the results **in job
//! index order**, so every reduction downstream (OOB vote accumulation,
//! confusion-matrix merges, merit comparisons) happens in exactly the
//! order the sequential path used. Float addition is not associative;
//! fixing the reduction order is what makes the parallel output
//! *byte-identical* to the sequential one at any worker count — the
//! same discipline `vqoe_core::engine` established for assessment.
//!
//! Seed streams are laid out so they cannot overlap (DESIGN.md §10):
//! trees within one forest use the affine family
//! `seed + t · 0x9E37_79B9_7F4A_7C15`, while cross-validation folds
//! pass the same affine walk through the [`splitmix64`] finalizer
//! first, scattering fold seeds across the full 64-bit space so a
//! fold's tree family cannot rejoin another fold's.

use serde::{Deserialize, Serialize};

/// Weyl-sequence increment (2⁶⁴ / φ) used by every affine seed stream
/// in the training stack.
pub const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Worker policy for the deterministic training fan-out.
///
/// The output of every training entry point is byte-identical for every
/// value of `workers`; the knob only trades wall-clock for threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Worker threads for tree / fold / candidate fan-out. `0` means
    /// auto (`available_parallelism`, capped at 16 — the same policy as
    /// the assessment engine); `1` runs the plain sequential loop.
    pub workers: usize,
    /// Simulated per-job input latency in microseconds, for throughput
    /// harnesses that model an I/O-paced trainer (each worker sleeps
    /// this long before starting a job, as if paging the job's slice of
    /// the feature store). Production paths leave this at 0; it never
    /// affects output, only timing.
    pub job_pacing_micros: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            workers: 1,
            job_pacing_micros: 0,
        }
    }
}

impl TrainConfig {
    /// Sequential training (the reference path).
    pub fn sequential() -> Self {
        TrainConfig::default()
    }

    /// Auto-sized worker pool (`available_parallelism`, capped at 16).
    pub fn auto() -> Self {
        TrainConfig {
            workers: 0,
            ..TrainConfig::default()
        }
    }

    /// A fixed worker count.
    pub fn with_workers(workers: usize) -> Self {
        TrainConfig {
            workers,
            ..TrainConfig::default()
        }
    }

    /// The worker count actually used for a list of `jobs`: `workers`
    /// with `0` resolved to the machine's available parallelism (capped
    /// at 16), and never more than the job count.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(16);
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.max(1).min(jobs.max(1))
    }
}

/// The splitmix64 finalizer (Steele, Lea & Flood's SplitMix): a 64-bit
/// bijection with full avalanche. Used to scatter derived seeds (e.g.
/// per-fold streams) across the whole seed space so that affine tree
/// families rooted at different derived seeds cannot overlap by a small
/// integer offset.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(SEED_STRIDE);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f(0), f(1), …, f(jobs - 1)` and return the results in index
/// order, fanning out over `config.effective_workers(jobs)` threads.
///
/// Each job must be self-contained (derive its own RNG stream from its
/// index); under that contract the result vector is byte-identical to
/// the sequential loop at any worker count. Jobs are claimed one at a
/// time from a shared atomic cursor — training jobs are coarse (a whole
/// tree, fold or candidate subset), so per-job claim overhead is noise.
pub fn run_indexed<T, F>(jobs: usize, config: TrainConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let pace = || {
        if config.job_pacing_micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(config.job_pacing_micros));
        }
    };
    let workers = config.effective_workers(jobs);
    if workers <= 1 || jobs <= 1 {
        return (0..jobs)
            .map(|i| {
                pace();
                f(i)
            })
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let result = crossbeam::thread::scope(|scope| {
        // Workers deposit into private `(index, value)` vectors — no
        // shared lock on the hot path — and hand them back through
        // their join handles; the scatter below restores index order.
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        pace();
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        let mut pairs: Vec<(usize, T)> = Vec::with_capacity(jobs);
        for h in handles {
            match h.join() {
                Ok(local) => pairs.extend(local),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        pairs.sort_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, v)| v).collect()
    });
    match result {
        Ok(v) => v,
        // A worker panic is a bug in the training job itself;
        // re-raising it is the only sane response.
        Err(p) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1usize, 2, 3, 8] {
            let cfg = TrainConfig::with_workers(workers);
            let got = run_indexed(17, cfg, |i| i * i);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "workers {workers}");
        }
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        let cfg = TrainConfig::with_workers(4);
        assert_eq!(run_indexed(0, cfg, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, cfg, |i| i + 5), vec![5]);
    }

    #[test]
    fn effective_workers_resolves_auto_and_clamps() {
        assert_eq!(TrainConfig::sequential().effective_workers(100), 1);
        assert_eq!(TrainConfig::with_workers(8).effective_workers(3), 3);
        let auto = TrainConfig::auto().effective_workers(1000);
        assert!((1..=16).contains(&auto), "auto resolved to {auto}");
        // Zero jobs still yields a sane (non-zero) worker count.
        assert_eq!(TrainConfig::with_workers(8).effective_workers(0), 1);
    }

    #[test]
    fn splitmix64_is_a_bijection_on_a_sample_and_scatters_neighbors() {
        let outs: Vec<u64> = (0..64u64).map(splitmix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64, "collision in splitmix64 sample");
        // Consecutive inputs land far apart (no small-offset structure
        // for an affine tree family to rejoin).
        for w in outs.windows(2) {
            assert!(w[0].abs_diff(w[1]) > 1 << 32, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn pacing_does_not_affect_results() {
        let plain = run_indexed(6, TrainConfig::with_workers(3), |i| i as u64 * 7);
        let paced = TrainConfig {
            workers: 3,
            job_pacing_micros: 100,
        };
        assert_eq!(run_indexed(6, paced, |i| i as u64 * 7), plain);
    }
}
