//! Random Forest: bagged, feature-subsampled CART trees.
//!
//! The paper's classifier of choice for both the stall model (§4.1) and
//! the average-representation model (§4.2). Standard Breiman recipe:
//! each tree trains on a bootstrap resample of the training rows with
//! √(n_features) candidate features per split; prediction averages the
//! trees' class-probability votes.

use crate::dataset::Dataset;
use crate::par::{run_indexed, TrainConfig, SEED_STRIDE};
use crate::tree::{argmax, DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One tree-fit job's output: the fitted tree plus its out-of-bag
/// probability votes as `(row, class probabilities)` pairs.
type FittedTree = (DecisionTree, Vec<(usize, Vec<f64>)>);

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits. `tree.mtry == 0` selects √(n_features)
    /// automatically at fit time.
    pub tree: TreeConfig,
    /// Seed for bootstrap resampling and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 60,
            tree: TreeConfig {
                max_depth: 30,
                min_samples_split: 4,
                mtry: 0,
            },
            seed: 0xF0_4E57,
        }
    }
}

/// A trained Random Forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    /// Feature names the forest was trained on — kept so a caller can
    /// verify it is scoring a matrix with the same schema.
    pub feature_names: Vec<String>,
    /// Out-of-bag accuracy estimate over the rows that received at
    /// least one OOB vote, or `None` when no row did (e.g. a single
    /// bootstrap that happened to cover every row). The free
    /// generalization estimate bagging gives you — no held-out set
    /// needed; check [`RandomForest::oob_coverage`] for how much of the
    /// corpus backs it.
    pub oob_accuracy: Option<f64>,
    /// Fraction of training rows with at least one out-of-bag vote.
    /// 1.0 at the paper's 60 trees; drops toward 0 as `n_trees`
    /// shrinks (a row is in-bag per tree with probability ≈ 1 − e⁻¹).
    pub oob_coverage: f64,
}

impl RandomForest {
    /// Fit a forest to `data` on the sequential reference path.
    ///
    /// # Panics
    /// Panics if `data` is empty or `n_trees == 0`.
    pub fn fit(data: &Dataset, config: ForestConfig) -> Self {
        Self::fit_with(data, config, TrainConfig::sequential())
    }

    /// Fit a forest to `data`, fanning trees out over
    /// `train.effective_workers` threads.
    ///
    /// Byte-identical to [`RandomForest::fit`] at any worker count:
    /// each tree derives its own RNG stream from its index
    /// (`seed + t ·` [`SEED_STRIDE`]), and OOB votes are accumulated
    /// strictly in tree-index order so every float addition happens in
    /// the sequential order.
    ///
    /// # Panics
    /// Panics if `data` is empty or `n_trees == 0`.
    pub fn fit_with(data: &Dataset, config: ForestConfig, train: TrainConfig) -> Self {
        assert!(data.n_rows() > 0, "cannot fit an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let mut tree_config = config.tree;
        if tree_config.mtry == 0 {
            tree_config.mtry = (data.n_features() as f64).sqrt().round().max(1.0) as usize;
        }
        let n = data.n_rows();
        // Per-tree job: bootstrap, fit, and this tree's OOB probability
        // votes. Trees are mutually independent once each owns its RNG
        // stream, so the fan-out is embarrassingly parallel.
        let fitted: Vec<FittedTree> = run_indexed(config.n_trees, train, |t| {
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((t as u64).wrapping_mul(SEED_STRIDE)),
            );
            // Bootstrap resample (with replacement).
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut in_bag = vec![false; n];
            for &r in &rows {
                in_bag[r] = true;
            }
            let tree = DecisionTree::fit(data, &rows, tree_config, &mut rng);
            let votes: Vec<(usize, Vec<f64>)> = (0..n)
                .filter(|&r| !in_bag[r])
                .map(|r| (r, tree.predict_proba(&data.x[r]).to_vec()))
                .collect();
            (tree, votes)
        });
        // Reduce in tree-index order: float addition is not associative,
        // so the accumulation order below IS the determinism contract.
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut oob_votes = vec![vec![0.0f64; data.n_classes()]; n];
        let mut oob_counted = vec![false; n];
        for (tree, votes) in fitted {
            for (r, probs) in votes {
                for (acc, p) in oob_votes[r].iter_mut().zip(probs) {
                    *acc += p;
                }
                oob_counted[r] = true;
            }
            trees.push(tree);
        }
        // OOB accuracy over the rows that actually received a vote:
        // scoring only covered rows keeps the estimate meaningful at
        // small n_trees instead of vanishing the moment one row stays
        // in-bag everywhere.
        let covered = oob_counted.iter().filter(|&&c| c).count();
        let oob_coverage = covered as f64 / n as f64;
        let oob_accuracy = if covered > 0 {
            let correct = (0..n)
                .filter(|&r| oob_counted[r] && argmax(&oob_votes[r]) == data.y[r])
                .count();
            Some(correct as f64 / covered as f64)
        } else {
            None
        };
        RandomForest {
            trees,
            n_classes: data.n_classes(),
            feature_names: data.feature_names.clone(),
            oob_accuracy,
            oob_coverage,
        }
    }

    /// Mean-decrease-in-impurity feature importance, normalized to sum
    /// to 1 (all-zero when the forest made no splits). Complements the
    /// information-gain ranking of `selection`: this is what the trained
    /// model *actually used*, rather than a model-free univariate score.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut totals = vec![0.0f64; self.feature_names.len()];
        for tree in &self.trees {
            for (feature, weight) in tree.split_weights() {
                totals[feature] += weight;
            }
        }
        let sum: f64 = totals.iter().sum();
        if sum > 0.0 {
            for t in totals.iter_mut() {
                *t /= sum;
            }
        }
        totals
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Averaged class-probability vector for one row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            for (a, &p) in acc.iter_mut().zip(tree.predict_proba(row)) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in acc.iter_mut() {
            *a /= k;
        }
        acc
    }

    /// Hard prediction for one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba(row))
    }

    /// Predictions for a whole dataset (labels ignored).
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        assert_eq!(
            data.feature_names, self.feature_names,
            "scoring schema differs from training schema"
        );
        data.x.iter().map(|row| self.predict(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two interleaved noisy blobs: separable but not trivially.
    fn blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..2usize {
            let cx = if c == 0 { 0.0 } else { 2.0 };
            for _ in 0..n_per_class {
                x.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cx + rng.gen_range(-1.0..1.0),
                ]);
                y.push(c);
            }
        }
        Dataset::new(
            vec!["x1".into(), "x2".into()],
            vec!["a".into(), "b".into()],
            x,
            y,
        )
    }

    #[test]
    fn forest_beats_chance_clearly() {
        let train = blobs(150, 1);
        let test = blobs(100, 2);
        let forest = RandomForest::fit(&train, ForestConfig::default());
        let preds = forest.predict_all(&test);
        let correct = preds
            .iter()
            .zip(test.y.iter())
            .filter(|(p, y)| p == y)
            .count();
        let acc = correct as f64 / test.n_rows() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = blobs(50, 3);
        let forest = RandomForest::fit(&d, ForestConfig::default());
        let p = forest.predict_proba(&[1.0, 1.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_is_deterministic_under_seed() {
        let d = blobs(60, 4);
        let f1 = RandomForest::fit(&d, ForestConfig::default());
        let f2 = RandomForest::fit(&d, ForestConfig::default());
        assert_eq!(f1, f2);
    }

    #[test]
    fn different_seeds_give_different_forests() {
        let d = blobs(60, 5);
        let cfg2 = ForestConfig {
            seed: 123,
            ..ForestConfig::default()
        };
        let f1 = RandomForest::fit(&d, ForestConfig::default());
        let f2 = RandomForest::fit(&d, cfg2);
        assert_ne!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "schema differs")]
    fn schema_mismatch_is_rejected() {
        let d = blobs(30, 6);
        let forest = RandomForest::fit(&d, ForestConfig::default());
        let other = Dataset::new(
            vec!["wrong".into(), "names".into()],
            vec!["a".into(), "b".into()],
            vec![vec![0.0, 0.0]],
            vec![0],
        );
        let _ = forest.predict_all(&other);
    }

    #[test]
    fn single_tree_forest_works() {
        let d = blobs(50, 7);
        let cfg = ForestConfig {
            n_trees: 1,
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&d, cfg);
        assert_eq!(f.n_trees(), 1);
        let _ = f.predict(&[0.0, 0.0]);
    }

    #[test]
    fn oob_accuracy_tracks_generalization() {
        let d = blobs(150, 9);
        let forest = RandomForest::fit(&d, ForestConfig::default());
        let oob = forest.oob_accuracy.expect("60 trees cover every row OOB");
        // The blobs are ~90%+ separable; OOB should land near the
        // cross-seed test accuracy, far from both chance and 1.0.
        assert!(oob > 0.8, "oob {oob}");
        let test = blobs(100, 10);
        let preds = forest.predict_all(&test);
        let test_acc = preds
            .iter()
            .zip(test.y.iter())
            .filter(|(p, y)| p == y)
            .count() as f64
            / test.n_rows() as f64;
        assert!((oob - test_acc).abs() < 0.1, "oob {oob} vs test {test_acc}");
    }

    #[test]
    fn oob_is_none_only_when_no_row_is_ever_out_of_bag() {
        // With 2 rows and 1 tree the bootstrap covers both rows with
        // probability 1/2 — pick a seed where it does: zero OOB votes
        // exist, so there is nothing to score (None, coverage 0).
        let d = Dataset::new(
            vec!["f".into()],
            vec!["a".into(), "b".into()],
            vec![vec![0.0], vec![1.0]],
            vec![0, 1],
        );
        let mut found_none = false;
        for seed in 0..50 {
            let cfg = ForestConfig {
                n_trees: 1,
                seed,
                ..ForestConfig::default()
            };
            let f = RandomForest::fit(&d, cfg);
            if f.oob_accuracy.is_none() {
                assert_eq!(f.oob_coverage, 0.0, "None must mean zero coverage");
                found_none = true;
                break;
            }
        }
        assert!(found_none, "some bootstrap must cover all rows");
    }

    #[test]
    fn single_tree_oob_scores_the_covered_rows() {
        // Regression for the old behavior, where one never-OOB row
        // silently nulled the whole estimate: a single tree on a real
        // corpus leaves ~e⁻¹ of the rows out of bag — the estimate must
        // exist and be scored over exactly those rows.
        let d = blobs(100, 12);
        let cfg = ForestConfig {
            n_trees: 1,
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&d, cfg);
        assert!(
            f.oob_accuracy.is_some(),
            "partial coverage must still yield an estimate"
        );
        assert!(
            f.oob_coverage > 0.0 && f.oob_coverage < 1.0,
            "one bootstrap neither covers nothing nor everything: {}",
            f.oob_coverage
        );
        // ≈ e⁻¹ of rows are out of bag for a single bootstrap.
        assert!(
            (f.oob_coverage - (-1.0f64).exp()).abs() < 0.15,
            "coverage {} far from e^-1",
            f.oob_coverage
        );
    }

    #[test]
    fn full_forest_reaches_full_oob_coverage() {
        let d = blobs(150, 9);
        let f = RandomForest::fit(&d, ForestConfig::default());
        assert_eq!(f.oob_coverage, 1.0, "60 trees must cover every row");
    }

    #[test]
    fn parallel_fit_is_byte_identical_to_sequential() {
        use crate::par::TrainConfig;
        let d = blobs(80, 13);
        let reference =
            RandomForest::fit_with(&d, ForestConfig::default(), TrainConfig::sequential());
        for workers in [2usize, 7] {
            let parallel = RandomForest::fit_with(
                &d,
                ForestConfig::default(),
                TrainConfig::with_workers(workers),
            );
            assert_eq!(reference, parallel, "workers {workers}");
            // Bit-level equality of the float surfaces, not just
            // structural: OOB accuracy and importances are float sums
            // whose order the reducer pins down.
            assert_eq!(
                reference.oob_accuracy.map(f64::to_bits),
                parallel.oob_accuracy.map(f64::to_bits)
            );
            let (a, b) = (
                reference.feature_importance(),
                parallel.feature_importance(),
            );
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        // Feature 0 carries the class; feature 1 is noise.
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..2usize {
            for _ in 0..100 {
                x.push(vec![
                    c as f64 * 4.0 + rng.gen_range(-1.0..1.0),
                    rng.gen_range(-10.0..10.0),
                ]);
                y.push(c);
            }
        }
        let d = Dataset::new(
            vec!["signal".into(), "noise".into()],
            vec!["a".into(), "b".into()],
            x,
            y,
        );
        let forest = RandomForest::fit(&d, ForestConfig::default());
        let imp = forest.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1] * 2.0, "importance {imp:?}");
    }

    #[test]
    fn three_class_problem() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for _ in 0..80 {
                x.push(vec![c as f64 * 3.0 + rng.gen_range(-1.0..1.0)]);
                y.push(c);
            }
        }
        let d = Dataset::new(
            vec!["f".into()],
            vec!["l".into(), "m".into(), "h".into()],
            x,
            y,
        );
        let f = RandomForest::fit(&d, ForestConfig::default());
        assert_eq!(f.predict(&[0.0]), 0);
        assert_eq!(f.predict(&[3.0]), 1);
        assert_eq!(f.predict(&[6.0]), 2);
    }
}
