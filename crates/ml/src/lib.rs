//! # vqoe-ml
//!
//! Machine-learning substrate for the reproduction of *Measuring Video
//! QoE from Encrypted Traffic* (IMC 2016), built from scratch (the Rust
//! ML ecosystem offers no equivalent of the Weka stack the paper used).
//!
//! The paper's §4 pipeline, component by component:
//!
//! * "we use Machine Learning and in particular the **Random Forest**
//!   algorithm and **10-fold cross-validation**" → [`forest::RandomForest`]
//!   over CART trees ([`tree::DecisionTree`]), [`cv::stratified_kfold`] /
//!   [`cv::cross_validate`].
//! * "we balance the number of instances among the three classes before
//!   training the classifier. The instances ... are then restored to
//!   their original numbers for testing" → [`dataset::Dataset::balanced_downsample`].
//! * "Feature Selection using the **Correlation-based Feature Subset
//!   Selection (CfsSubsetEval)** with the **Best First** search
//!   algorithm" → [`selection::cfs_best_first`].
//! * "Table 2 shows the gain of each of the features ... the
//!   **information gain** represents the contribution of each feature" →
//!   [`selection::info_gain_ranking`].
//! * The per-class TP rate / FP rate / Precision / Recall tables and
//!   confusion matrices (Tables 3–4, 6–11) → [`metrics::ConfusionMatrix`]
//!   and [`metrics::ClassReport`].
//!
//! Every training entry point has a `*_with` variant taking a
//! [`par::TrainConfig`] worker policy; output is byte-identical to the
//! sequential path at any worker count (see [`par`] and DESIGN.md §10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod par;
pub mod selection;
pub mod tree;

pub use cv::{cross_validate, cross_validate_with, stratified_kfold, CvReport};
pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use metrics::{ClassReport, ConfusionMatrix};
pub use par::TrainConfig;
pub use selection::{
    cfs_best_first, cfs_best_first_with, info_gain_ranking, info_gain_ranking_with, RankedFeature,
};
pub use tree::{DecisionTree, TreeConfig};
