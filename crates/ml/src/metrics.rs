//! Evaluation metrics in the paper's reporting format.
//!
//! Tables 3, 6, 8 and 10 report, per class: TP Rate, FP Rate, Precision
//! and Recall, plus a support-weighted average row; Tables 4, 7, 9 and
//! 11 show row-normalized confusion matrices. [`ConfusionMatrix`]
//! produces exactly those numbers (the paper's definitions, §4.1:
//! "Precision is calculated as the ratio of TP over TP and FP ...
//! Recall is equal to the ratio of TP divided by the total instances in
//! this class").

use serde::{Deserialize, Serialize};

/// A confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Class names, indexing both axes.
    pub class_names: Vec<String>,
    counts: Vec<Vec<u64>>,
}

/// One row of the paper's classifier-output tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class name.
    pub class: String,
    /// TP rate (== recall).
    pub tp_rate: f64,
    /// FP rate: false positives over all negatives of this class.
    pub fp_rate: f64,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Number of actual instances of the class.
    pub support: u64,
}

impl ConfusionMatrix {
    /// Empty matrix over the given classes.
    pub fn new(class_names: Vec<String>) -> Self {
        let k = class_names.len();
        ConfusionMatrix {
            class_names,
            counts: vec![vec![0; k]; k],
        }
    }

    /// Build from parallel actual/predicted label sequences.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range labels.
    pub fn from_predictions(
        class_names: Vec<String>,
        actual: &[usize],
        predicted: &[usize],
    ) -> Self {
        assert_eq!(actual.len(), predicted.len(), "length mismatch");
        let mut m = ConfusionMatrix::new(class_names);
        for (&a, &p) in actual.iter().zip(predicted.iter()) {
            m.record(a, p);
        }
        m
    }

    /// Record one (actual, predicted) observation.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Merge another matrix (e.g. across CV folds).
    ///
    /// # Panics
    /// Panics if class sets differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.class_names, other.class_names, "class mismatch");
        for (row, orow) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (c, &oc) in row.iter_mut().zip(orow.iter()) {
                *c += oc;
            }
        }
    }

    /// Raw count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual][predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Number of actual instances of `class`.
    pub fn support(&self, class: usize) -> u64 {
        self.counts[class].iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// TP rate (recall) of `class`.
    pub fn tp_rate(&self, class: usize) -> f64 {
        let support = self.support(class);
        if support == 0 {
            return 0.0;
        }
        self.counts[class][class] as f64 / support as f64
    }

    /// FP rate of `class`: instances of *other* classes predicted as
    /// `class`, over all instances of other classes.
    pub fn fp_rate(&self, class: usize) -> f64 {
        let mut fp = 0u64;
        let mut negatives = 0u64;
        for (actual, row) in self.counts.iter().enumerate() {
            if actual == class {
                continue;
            }
            fp += row[class];
            negatives += row.iter().sum::<u64>();
        }
        if negatives == 0 {
            return 0.0;
        }
        fp as f64 / negatives as f64
    }

    /// Precision of `class`: TP / (TP + FP).
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.counts[class][class];
        let predicted: u64 = self.counts.iter().map(|row| row[class]).sum();
        if predicted == 0 {
            return 0.0;
        }
        tp as f64 / predicted as f64
    }

    /// Recall of `class` (alias of TP rate, per the paper's definitions).
    pub fn recall(&self, class: usize) -> f64 {
        self.tp_rate(class)
    }

    /// Per-class report rows, in class order.
    pub fn class_reports(&self) -> Vec<ClassReport> {
        (0..self.class_names.len())
            .map(|c| ClassReport {
                class: self.class_names[c].clone(),
                tp_rate: self.tp_rate(c),
                fp_rate: self.fp_rate(c),
                precision: self.precision(c),
                recall: self.recall(c),
                support: self.support(c),
            })
            .collect()
    }

    /// Support-weighted average report (the paper's "weighted avg." row).
    pub fn weighted_average(&self) -> ClassReport {
        let total = self.total() as f64;
        let mut avg = ClassReport {
            class: "weighted avg.".to_string(),
            tp_rate: 0.0,
            fp_rate: 0.0,
            precision: 0.0,
            recall: 0.0,
            support: self.total(),
        };
        if total == 0.0 {
            return avg;
        }
        for c in 0..self.class_names.len() {
            let w = self.support(c) as f64 / total;
            avg.tp_rate += w * self.tp_rate(c);
            avg.fp_rate += w * self.fp_rate(c);
            avg.precision += w * self.precision(c);
            avg.recall += w * self.recall(c);
        }
        avg
    }

    /// Row-normalized percentages, `out[actual][predicted]` in `[0,100]`
    /// — the shape of the paper's confusion-matrix tables.
    pub fn row_percentages(&self) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .map(|row| {
                let sum: u64 = row.iter().sum();
                row.iter()
                    .map(|&c| {
                        if sum == 0 {
                            0.0
                        } else {
                            100.0 * c as f64 / sum as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .class_names
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(8)
            .max(8);
        write!(f, "{:width$} |", "actual\\pred")?;
        for name in &self.class_names {
            write!(f, " {name:>width$}")?;
        }
        writeln!(f)?;
        let pcts = self.row_percentages();
        for (i, name) in self.class_names.iter().enumerate() {
            write!(f, "{name:width$} |")?;
            for p in &pcts[i] {
                write!(f, " {:>width$}", format!("{p:.1}%"))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 4 reconstructed as counts (per 1000 instances
    /// of each class) to validate our metric formulas against its
    /// Table 3 values.
    fn paper_like() -> ConfusionMatrix {
        let names = vec![
            "no stalls".to_string(),
            "mild stalls".to_string(),
            "severe stalls".to_string(),
        ];
        let mut m = ConfusionMatrix::new(names);
        // no stalls: 97.76% / 2.06% / 0.18% of, say, 10000
        m.counts[0] = vec![9776, 206, 18];
        // mild: 14.7 / 80.9 / 4.4 of 1000
        m.counts[1] = vec![147, 809, 44];
        // severe: 4.2 / 16.5 / 79.3 of 1000
        m.counts[2] = vec![42, 165, 793];
        m
    }

    #[test]
    fn tp_rates_match_confusion_rows() {
        let m = paper_like();
        assert!((m.tp_rate(0) - 0.9776).abs() < 1e-4);
        assert!((m.tp_rate(1) - 0.809).abs() < 1e-4);
        assert!((m.tp_rate(2) - 0.793).abs() < 1e-4);
    }

    #[test]
    fn precision_and_recall_formulas() {
        let m = paper_like();
        // precision(no stalls) = 9776 / (9776+147+42)
        let p0 = 9776.0 / (9776.0 + 147.0 + 42.0);
        assert!((m.precision(0) - p0).abs() < 1e-9);
        assert_eq!(m.recall(1), m.tp_rate(1));
    }

    #[test]
    fn fp_rate_counts_other_class_leakage() {
        let m = paper_like();
        // fp_rate(mild) = (206 + 165) / (10000 + 1000)
        let expected = (206.0 + 165.0) / 11_000.0;
        assert!((m.fp_rate(1) - expected).abs() < 1e-9);
    }

    #[test]
    fn accuracy_is_diagonal_over_total() {
        let m = paper_like();
        let acc = (9776.0 + 809.0 + 793.0) / 12_000.0;
        assert!((m.accuracy() - acc).abs() < 1e-9);
    }

    #[test]
    fn weighted_average_uses_support() {
        let m = paper_like();
        let avg = m.weighted_average();
        let expected =
            (10_000.0 * m.tp_rate(0) + 1_000.0 * m.tp_rate(1) + 1_000.0 * m.tp_rate(2)) / 12_000.0;
        assert!((avg.tp_rate - expected).abs() < 1e-9);
        assert_eq!(avg.support, 12_000);
    }

    #[test]
    fn row_percentages_sum_to_100() {
        let m = paper_like();
        for row in m.row_percentages() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn from_predictions_and_merge() {
        let names = vec!["a".to_string(), "b".to_string()];
        let m1 = ConfusionMatrix::from_predictions(names.clone(), &[0, 1, 1], &[0, 1, 0]);
        let mut m2 = ConfusionMatrix::from_predictions(names, &[0, 0], &[1, 0]);
        m2.merge(&m1);
        assert_eq!(m2.total(), 5);
        assert_eq!(m2.count(1, 0), 1);
        assert_eq!(m2.count(0, 1), 1);
        assert_eq!(m2.count(0, 0), 2);
    }

    #[test]
    fn empty_matrix_degenerates_gracefully() {
        let m = ConfusionMatrix::new(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.tp_rate(0), 0.0);
        assert_eq!(m.fp_rate(0), 0.0);
        assert_eq!(m.precision(0), 0.0);
        let avg = m.weighted_average();
        assert_eq!(avg.tp_rate, 0.0);
    }

    #[test]
    fn display_renders_all_classes() {
        let m = paper_like();
        let s = m.to_string();
        assert!(s.contains("no stalls"));
        assert!(s.contains("severe stalls"));
        assert!(s.contains("97.8%"));
    }
}
