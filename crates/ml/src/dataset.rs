//! Labelled feature matrices.
//!
//! A [`Dataset`] is the interchange format between feature construction
//! (`vqoe-features`), selection, training and evaluation: a dense
//! row-major `f64` matrix with named columns and integer class labels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// A labelled dataset: `x[row][feature]`, `y[row]` in `0..n_classes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Column names, aligned with the inner axis of `x`.
    pub feature_names: Vec<String>,
    /// Class names, indexed by label value.
    pub class_names: Vec<String>,
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Labels.
    pub y: Vec<usize>,
}

impl Dataset {
    /// Build a dataset, validating shape invariants.
    ///
    /// # Panics
    /// Panics if row lengths disagree with `feature_names`, if `x` and
    /// `y` differ in length, or if any label is out of range.
    pub fn new(
        feature_names: Vec<String>,
        class_names: Vec<String>,
        x: Vec<Vec<f64>>,
        y: Vec<usize>,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        for row in &x {
            assert_eq!(row.len(), feature_names.len(), "row width mismatch");
        }
        for &label in &y {
            assert!(label < class_names.len(), "label {label} out of range");
        }
        Dataset {
            feature_names,
            class_names,
            x,
            y,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.x.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &label in &self.y {
            counts[label] += 1;
        }
        counts
    }

    /// One feature column as a vector.
    pub fn column(&self, feature: usize) -> Vec<f64> {
        self.x.iter().map(|row| row[feature]).collect()
    }

    /// A new dataset keeping only the given feature columns (in the
    /// given order) — how a selected feature subset is materialized.
    pub fn select_features(&self, features: &[usize]) -> Dataset {
        let feature_names = features
            .iter()
            .map(|&f| self.feature_names[f].clone())
            .collect();
        let x = self
            .x
            .iter()
            .map(|row| features.iter().map(|&f| row[f]).collect())
            .collect();
        Dataset {
            feature_names,
            class_names: self.class_names.clone(),
            x,
            y: self.y.clone(),
        }
    }

    /// A new dataset keeping only the given rows (in the given order).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            class_names: self.class_names.clone(),
            x: rows.iter().map(|&r| self.x[r].clone()).collect(),
            y: rows.iter().map(|&r| self.y[r]).collect(),
        }
    }

    /// Class-balance by downsampling every class to the size of the
    /// rarest **non-empty** class (§4.1: "we balance the number of
    /// instances among the three classes before training"). Rows are
    /// chosen uniformly without replacement; the output is shuffled.
    pub fn balanced_downsample(&self, rng: &mut StdRng) -> Dataset {
        let counts = self.class_counts();
        let target = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(0);
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &label) in self.y.iter().enumerate() {
            per_class[label].push(i);
        }
        let mut keep: Vec<usize> = Vec::new();
        for rows in per_class.iter_mut() {
            rows.shuffle(rng);
            keep.extend(rows.iter().copied().take(target));
        }
        keep.shuffle(rng);
        self.subset(&keep)
    }

    /// Append the rows of `other` (schemas must match).
    ///
    /// # Panics
    /// Panics on schema mismatch.
    pub fn extend(&mut self, other: &Dataset) {
        assert_eq!(self.feature_names, other.feature_names, "schema mismatch");
        assert_eq!(self.class_names, other.class_names, "class mismatch");
        self.x.extend(other.x.iter().cloned());
        self.y.extend(other.y.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            vec!["a".into(), "b".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 10.0],
                vec![2.0, 20.0],
                vec![3.0, 30.0],
                vec![4.0, 40.0],
                vec![5.0, 50.0],
            ],
            vec![0, 0, 0, 1, 1],
        )
    }

    #[test]
    fn shape_accessors() {
        let d = toy();
        assert_eq!(d.n_rows(), 5);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![3, 2]);
        assert_eq!(d.column(1), vec![10.0, 20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "row/label count mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::new(
            vec!["a".into()],
            vec!["c".into()],
            vec![vec![1.0]],
            vec![0, 0],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        Dataset::new(vec!["a".into()], vec!["c".into()], vec![vec![1.0]], vec![3]);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = toy().select_features(&[1]);
        assert_eq!(d.feature_names, vec!["b".to_string()]);
        assert_eq!(d.x[0], vec![10.0]);
        assert_eq!(d.y, toy().y);
    }

    #[test]
    fn subset_picks_rows_in_order() {
        let d = toy().subset(&[4, 0]);
        assert_eq!(d.x, vec![vec![5.0, 50.0], vec![1.0, 10.0]]);
        assert_eq!(d.y, vec![1, 0]);
    }

    #[test]
    fn balanced_downsample_equalizes_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = toy().balanced_downsample(&mut rng);
        assert_eq!(b.class_counts(), vec![2, 2]);
        assert_eq!(b.n_rows(), 4);
    }

    #[test]
    fn balanced_downsample_with_empty_class() {
        let d = Dataset::new(
            vec!["a".into()],
            vec!["x".into(), "y".into(), "z".into()],
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 0, 1], // class z empty
        );
        let mut rng = StdRng::seed_from_u64(2);
        let b = d.balanced_downsample(&mut rng);
        // Rarest non-empty class has 1 row.
        assert_eq!(b.class_counts(), vec![1, 1, 0]);
    }

    #[test]
    fn extend_appends_rows() {
        let mut d = toy();
        let e = toy();
        d.extend(&e);
        assert_eq!(d.n_rows(), 10);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn extend_rejects_mismatched_schema() {
        let mut d = toy();
        let other = Dataset::new(
            vec!["z".into(), "b".into()],
            vec!["neg".into(), "pos".into()],
            vec![vec![0.0, 0.0]],
            vec![0],
        );
        d.extend(&other);
    }
}
