//! CART decision trees with entropy splits.
//!
//! The base learner under the paper's Random Forest. Continuous features
//! are split on thresholds found by a sorted sweep with incremental
//! class counts (O(n log n) per feature per node); split quality is
//! information gain. Per-split feature subsampling (`mtry`) turns the
//! same code into a forest-ready randomized tree.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows a node must hold to be split further.
    pub min_samples_split: usize,
    /// Number of candidate features per split; `0` means all
    /// (deterministic CART), forests use √(n_features).
    pub mtry: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 30,
            min_samples_split: 4,
            mtry: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class-probability vector at the leaf.
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Impurity decrease weighted by the fraction of training rows
        /// reaching this node — the per-split term of mean-decrease-in-
        /// impurity feature importance.
        weight: f64,
        /// Arena index of the `<= threshold` child.
        left: usize,
        /// Arena index of the `> threshold` child.
        right: usize,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Fit a tree to `data`, optionally restricted to `rows` (bootstrap
    /// sample indices; duplicates allowed). `rng` drives feature
    /// subsampling and is unused when `mtry == 0`.
    pub fn fit(data: &Dataset, rows: &[usize], config: TreeConfig, rng: &mut StdRng) -> Self {
        assert!(data.n_rows() > 0, "cannot fit an empty dataset");
        assert!(!rows.is_empty(), "cannot fit on an empty row sample");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: data.n_classes(),
        };
        let mut row_buf: Vec<usize> = rows.to_vec();
        let root_total = rows.len() as f64;
        tree.grow(data, &mut row_buf, 0, config, rng, root_total);
        tree
    }

    /// Number of nodes in the tree (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (diagnostic; leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Grow the subtree over `rows`; returns the arena index.
    fn grow(
        &mut self,
        data: &Dataset,
        rows: &mut [usize],
        depth: usize,
        config: TreeConfig,
        rng: &mut StdRng,
        root_total: f64,
    ) -> usize {
        let counts = class_counts(data, rows, self.n_classes);
        let total = rows.len() as f64;
        let node_entropy = entropy(&counts, total);

        let stop = depth >= config.max_depth
            || rows.len() < config.min_samples_split
            || node_entropy <= 0.0;
        if !stop {
            if let Some((feature, threshold, gain)) =
                self.best_split(data, rows, &counts, config, rng)
            {
                let (mut left_rows, mut right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| data.x[r][feature] <= threshold);
                if !left_rows.is_empty() && !right_rows.is_empty() {
                    let idx = self.nodes.len();
                    let weight = gain * rows.len() as f64 / root_total.max(1.0);
                    // Placeholder; children filled in below.
                    self.nodes.push(Node::Split {
                        feature,
                        threshold,
                        weight,
                        left: 0,
                        right: 0,
                    });
                    let left = self.grow(data, &mut left_rows, depth + 1, config, rng, root_total);
                    let right =
                        self.grow(data, &mut right_rows, depth + 1, config, rng, root_total);
                    self.nodes[idx] = Node::Split {
                        feature,
                        threshold,
                        weight,
                        left,
                        right,
                    };
                    return idx;
                }
            }
        }

        let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { probs });
        idx
    }

    /// Best (feature, threshold) by information gain over the candidate
    /// feature set.
    fn best_split(
        &self,
        data: &Dataset,
        rows: &[usize],
        parent_counts: &[u64],
        config: TreeConfig,
        rng: &mut StdRng,
    ) -> Option<(usize, f64, f64)> {
        let n_features = data.n_features();
        let mut features: Vec<usize> = (0..n_features).collect();
        if config.mtry > 0 && config.mtry < n_features {
            features.shuffle(rng);
            features.truncate(config.mtry);
        }

        let total = rows.len() as f64;
        let parent_entropy = entropy(parent_counts, total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

        for &feature in &features {
            // Sort row indices by this feature's value.
            let mut order: Vec<usize> = rows.to_vec();
            order.sort_by(|&a, &b| {
                data.x[a][feature]
                    .partial_cmp(&data.x[b][feature])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0u64; self.n_classes];
            let mut right_counts = parent_counts.to_vec();
            for i in 0..order.len() - 1 {
                let r = order[i];
                left_counts[data.y[r]] += 1;
                right_counts[data.y[r]] -= 1;
                let v = data.x[r][feature];
                let v_next = data.x[order[i + 1]][feature];
                if v_next <= v {
                    continue; // not a boundary between distinct values
                }
                let n_left = (i + 1) as f64;
                let n_right = total - n_left;
                let child_entropy = (n_left / total) * entropy(&left_counts, n_left)
                    + (n_right / total) * entropy(&right_counts, n_right);
                let gain = parent_entropy - child_entropy;
                // Zero-gain splits are allowed on impure nodes: greedy
                // gain is blind to XOR-like interactions whose value only
                // appears one level deeper (the node is only expanded at
                // all when its entropy is positive, and every split
                // strictly shrinks both children, so growth terminates).
                if gain >= 0.0 && best.map_or(true, |(_, _, g)| gain > g) {
                    best = Some((feature, (v + v_next) / 2.0, gain));
                }
            }
        }
        best
    }

    /// Iterate over the tree's split nodes as `(feature, weight)` pairs,
    /// where the weight is the split's impurity decrease scaled by the
    /// fraction of training rows that reached it — the per-tree terms of
    /// mean-decrease-in-impurity feature importance.
    pub fn split_weights(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.nodes.iter().filter_map(|n| match n {
            Node::Split {
                feature, weight, ..
            } => Some((*feature, *weight)),
            Node::Leaf { .. } => None,
        })
    }

    /// Class-probability vector for one feature row.
    pub fn predict_proba(&self, row: &[f64]) -> &[f64] {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { probs } => return probs,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Hard class prediction (argmax of probabilities; ties go to the
    /// lower class index, deterministically).
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(self.predict_proba(row))
    }
}

pub(crate) fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &p) in v.iter().enumerate() {
        if p > v[best] {
            best = i;
        }
    }
    best
}

fn class_counts(data: &Dataset, rows: &[usize], n_classes: usize) -> Vec<u64> {
    let mut counts = vec![0u64; n_classes];
    for &r in rows {
        counts[data.y[r]] += 1;
    }
    counts
}

fn entropy(counts: &[u64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn xor_dataset() -> Dataset {
        // XOR needs depth 2 — a classic sanity check that splits compose.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..5 {
                x.push(vec![a, b]);
                y.push(((a as i32) ^ (b as i32)) as usize);
            }
        }
        Dataset::new(
            vec!["a".into(), "b".into()],
            vec!["zero".into(), "one".into()],
            x,
            y,
        )
    }

    fn all_rows(d: &Dataset) -> Vec<usize> {
        (0..d.n_rows()).collect()
    }

    #[test]
    fn learns_a_single_threshold() {
        let d = Dataset::new(
            vec!["f".into()],
            vec!["lo".into(), "hi".into()],
            (0..20).map(|i| vec![i as f64]).collect(),
            (0..20).map(|i| usize::from(i >= 10)).collect(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let t = DecisionTree::fit(&d, &all_rows(&d), TreeConfig::default(), &mut rng);
        assert_eq!(t.predict(&[3.0]), 0);
        assert_eq!(t.predict(&[15.0]), 1);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn learns_xor() {
        let d = xor_dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let t = DecisionTree::fit(&d, &all_rows(&d), TreeConfig::default(), &mut rng);
        assert_eq!(t.predict(&[0.0, 0.0]), 0);
        assert_eq!(t.predict(&[1.0, 0.0]), 1);
        assert_eq!(t.predict(&[0.0, 1.0]), 1);
        assert_eq!(t.predict(&[1.0, 1.0]), 0);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = Dataset::new(
            vec!["f".into()],
            vec!["only".into()],
            vec![vec![1.0], vec![2.0]],
            vec![0, 0],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let t = DecisionTree::fit(&d, &all_rows(&d), TreeConfig::default(), &mut rng);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[99.0]), 0);
    }

    #[test]
    fn max_depth_zero_yields_majority_leaf() {
        let d = Dataset::new(
            vec!["f".into()],
            vec!["a".into(), "b".into()],
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![0, 0, 1],
        );
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let t = DecisionTree::fit(&d, &all_rows(&d), cfg, &mut rng);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[2.0]), 0, "majority class wins");
        let p = t.predict_proba(&[2.0]);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_features_produce_a_leaf() {
        let d = Dataset::new(
            vec!["f".into()],
            vec!["a".into(), "b".into()],
            vec![vec![5.0], vec![5.0], vec![5.0]],
            vec![0, 1, 0],
        );
        let mut rng = StdRng::seed_from_u64(5);
        let t = DecisionTree::fit(&d, &all_rows(&d), TreeConfig::default(), &mut rng);
        assert_eq!(t.node_count(), 1, "no valid split exists");
    }

    #[test]
    fn fits_on_bootstrap_subset_only() {
        let d = xor_dataset();
        // Train only on rows where a == 0: the tree never sees a=1.
        let rows: Vec<usize> = (0..d.n_rows()).filter(|&r| d.x[r][0] == 0.0).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let t = DecisionTree::fit(&d, &rows, TreeConfig::default(), &mut rng);
        assert_eq!(t.predict(&[0.0, 0.0]), 0);
        assert_eq!(t.predict(&[0.0, 1.0]), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = xor_dataset();
        let mut rng = StdRng::seed_from_u64(7);
        let t = DecisionTree::fit(&d, &all_rows(&d), TreeConfig::default(), &mut rng);
        let p = t.predict_proba(&[0.5, 0.5]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_without_mtry() {
        let d = xor_dataset();
        let mut r1 = StdRng::seed_from_u64(8);
        let mut r2 = StdRng::seed_from_u64(99); // different rng must not matter
        let t1 = DecisionTree::fit(&d, &all_rows(&d), TreeConfig::default(), &mut r1);
        let t2 = DecisionTree::fit(&d, &all_rows(&d), TreeConfig::default(), &mut r2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn mtry_randomizes_structure() {
        // With mtry=1 on a 2-feature problem, different seeds can pick
        // different first splits. We only require both to stay accurate.
        let d = xor_dataset();
        let cfg = TreeConfig {
            mtry: 1,
            ..TreeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(10);
        let t = DecisionTree::fit(&d, &all_rows(&d), cfg, &mut rng);
        // XOR is still learnable because both features end up used deeper.
        let acc = [
            t.predict(&[0.0, 0.0]) == 0,
            t.predict(&[1.0, 1.0]) == 0,
            t.predict(&[1.0, 0.0]) == 1,
            t.predict(&[0.0, 1.0]) == 1,
        ]
        .iter()
        .filter(|&&ok| ok)
        .count();
        assert!(acc >= 3, "accuracy collapsed under mtry: {acc}/4");
    }
}
