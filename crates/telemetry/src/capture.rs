//! Rendering simulated sessions into proxy weblog streams.
//!
//! A real video session does not hit the proxy as bare media chunks: the
//! player first loads the watch page and thumbnails ("requests to
//! m.youtube.com and i.ytimg.com which are responsible for downloading
//! multiple web objects such as HTML, scripts and images", §5.2), then
//! streams chunks from a `googlevideo.com` cache, and periodically pings
//! the stats endpoint with playback reports (§3.2). The reassembly step
//! for encrypted traffic leans on exactly this structure, so the capture
//! stage reproduces all three transaction populations.

use crate::error::TelemetryError;
use crate::uri;
use crate::weblog::{EntryKind, WeblogEntry};
use rand::rngs::StdRng;
use rand::Rng;
use vqoe_player::{ContentType, SessionTrace, TransportSummary, AUDIO_BITRATE_BPS};
use vqoe_simnet::time::{Duration, Instant};

/// How a session is rendered into weblog entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Strip URIs (TLS view) when true.
    pub encrypted: bool,
    /// Anonymized subscriber the entries belong to.
    pub subscriber_id: u64,
}

/// Interval between playback statistics reports.
const STATS_INTERVAL: Duration = Duration(30_000_000);

/// Render one simulated session into its weblog entries, in timestamp
/// order.
///
/// # Errors
///
/// Returns [`TelemetryError::MissingItag`] if a video chunk of `trace`
/// lacks its itag annotation — possible only for traces deserialized
/// from a corrupt or hand-edited file, never for simulator output.
pub fn capture_session(
    trace: &SessionTrace,
    cfg: &CaptureConfig,
    rng: &mut StdRng,
) -> Result<Vec<WeblogEntry>, TelemetryError> {
    let mut entries = Vec::new();
    let cache_host = media_host(rng);

    // --- 1. Watch-page burst, just before playback begins ---
    let page_objects = rng.gen_range(4..=9);
    let page_start = Instant(
        trace
            .config
            .start_time
            .as_micros()
            .saturating_sub(rng.gen_range(800_000..1_600_000)),
    );
    let mut t = page_start;
    for i in 0..page_objects {
        let (host, bytes, path): (&str, u64, String) = if i == 0 {
            (
                "m.youtube.com",
                rng.gen_range(30_000..90_000),
                "/watch?v=dQw4w9WgXcQ".to_string(),
            )
        } else if rng.gen_bool(0.5) {
            (
                "m.youtube.com",
                rng.gen_range(15_000..150_000),
                format!("/s/player/{i}/base.js"),
            )
        } else {
            (
                "i.ytimg.com",
                rng.gen_range(4_000..40_000),
                format!("/vi/thumb{i}/hqdefault.jpg"),
            )
        };
        let dur = Duration::from_millis(rng.gen_range(40..350));
        entries.push(WeblogEntry {
            timestamp: t,
            subscriber_id: cfg.subscriber_id,
            host: host.to_string(),
            uri: (!cfg.encrypted).then_some(path),
            bytes,
            duration: dur,
            transport: synthetic_small_transport(rng),
            encrypted: cfg.encrypted,
            kind: EntryKind::PageLoad,
        });
        t += Duration::from_millis(rng.gen_range(20..150));
    }

    // --- 2. Media chunks ---
    for chunk in &trace.chunks {
        let (mime, itag_code) = match chunk.content_type {
            ContentType::Video => {
                let itag = chunk.itag.ok_or_else(|| TelemetryError::MissingItag {
                    session_id: trace.session_id.clone(),
                    chunk_index: u64::from(chunk.index),
                })?;
                ("video", itag.itag_code())
            }
            ContentType::Audio => ("audio", vqoe_player::catalog::AUDIO_ITAG_CODE),
        };
        let path = uri::encode_videoplayback(&uri::VideoPlaybackParams {
            session_id: trace.session_id.clone(),
            itag_code,
            mime: mime.to_string(),
            clen: chunk.bytes,
            dur_ms: (chunk.media_secs * 1000.0).round() as u64,
            sq: chunk.index,
        });
        entries.push(WeblogEntry {
            timestamp: chunk.request_time,
            subscriber_id: cfg.subscriber_id,
            host: cache_host.clone(),
            uri: (!cfg.encrypted).then_some(path),
            bytes: chunk.bytes,
            duration: chunk.arrival_time.duration_since(chunk.request_time),
            transport: chunk.transport,
            encrypted: cfg.encrypted,
            kind: EntryKind::MediaChunk,
        });
    }

    // --- 3. Playback statistics reports ---
    let gt = &trace.ground_truth;
    let mut report_t = trace.config.start_time + STATS_INTERVAL;
    while report_t < gt.session_end {
        entries.push(stats_entry(trace, cfg, report_t, "playing", rng));
        report_t += STATS_INTERVAL;
    }
    let final_state = if gt.abandoned { "paused" } else { "ended" };
    entries.push(stats_entry(trace, cfg, gt.session_end, final_state, rng));

    entries.sort_by_key(|e| e.timestamp);
    Ok(entries)
}

fn stats_entry(
    trace: &SessionTrace,
    cfg: &CaptureConfig,
    at: Instant,
    state: &str,
    rng: &mut StdRng,
) -> WeblogEntry {
    let gt = &trace.ground_truth;
    // Cumulative stall accounting as of `at`.
    let mut count = 0u32;
    let mut secs = 0.0f64;
    for s in &gt.stalls {
        if s.start < at {
            count += 1;
            let end = s.start + s.duration;
            let visible = if end <= at {
                s.duration
            } else {
                at.duration_since(s.start)
            };
            secs += visible.as_secs_f64();
        }
    }
    let playhead = (at.duration_since(trace.config.start_time).as_secs_f64()
        - secs
        - gt.startup_delay.as_secs_f64())
    .clamp(0.0, trace.video.duration.as_secs_f64());
    let report = uri::PlaybackReport {
        session_id: trace.session_id.clone(),
        playhead_secs: playhead,
        stall_count: count,
        stall_secs: secs,
        state: state.to_string(),
    };
    WeblogEntry {
        timestamp: at,
        subscriber_id: cfg.subscriber_id,
        host: "s.youtube.com".to_string(),
        uri: (!cfg.encrypted).then(|| uri::encode_stats_report(&report)),
        bytes: rng.gen_range(600..2_000),
        duration: Duration::from_millis(rng.gen_range(40..250)),
        transport: synthetic_small_transport(rng),
        encrypted: cfg.encrypted,
        kind: EntryKind::StatsReport,
    }
}

/// A plausible `googlevideo.com` edge-cache hostname.
pub fn media_host(rng: &mut StdRng) -> String {
    const HEX: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let shard: u8 = rng.gen_range(1..9);
    let tag: String = (0..8)
        .map(|_| HEX[rng.gen_range(0..HEX.len())] as char)
        .collect();
    format!("r{shard}---sn-{tag}.googlevideo.com")
}

/// Background (non-service) traffic from the same subscriber, uniformly
/// spread over `[from, to)` — the clutter the §5.2 domain filter must
/// remove.
pub fn generate_noise(
    subscriber_id: u64,
    from: Instant,
    to: Instant,
    count: usize,
    rng: &mut StdRng,
) -> Vec<WeblogEntry> {
    const HOSTS: [&str; 6] = [
        "graph.facebook.com",
        "api.whatsapp.com",
        "cdn.adnetwork.example",
        "www.google.com",
        "mail.provider.example",
        "news.site.example",
    ];
    let span = to.duration_since(from).as_micros().max(1);
    let mut out: Vec<WeblogEntry> = (0..count)
        .map(|_| {
            let offset = rng.gen_range(0..span);
            WeblogEntry {
                timestamp: from + Duration(offset),
                subscriber_id,
                host: HOSTS[rng.gen_range(0..HOSTS.len())].to_string(),
                uri: None,
                bytes: rng.gen_range(300..200_000),
                duration: Duration::from_millis(rng.gen_range(20..2_000)),
                transport: synthetic_small_transport(rng),
                encrypted: true,
                kind: EntryKind::Noise,
            }
        })
        .collect();
    out.sort_by_key(|e| e.timestamp);
    out
}

/// Transport annotations for small, non-media transactions (page loads,
/// stat pings, noise). These never feed the detectors; they only need to
/// be structurally valid.
fn synthetic_small_transport(rng: &mut StdRng) -> TransportSummary {
    let rtt = rng.gen_range(0.04..0.25);
    TransportSummary {
        rtt_min: rtt,
        rtt_mean: rtt * rng.gen_range(1.0..1.3),
        rtt_max: rtt * rng.gen_range(1.3..2.0),
        bdp_mean: rng.gen_range(20_000.0..200_000.0),
        bif_mean: rng.gen_range(3_000.0..30_000.0),
        bif_max: rng.gen_range(30_000.0..90_000.0),
        loss_frac: 0.0,
        retx_frac: 0.0,
    }
}

/// Rough audio-chunk size ceiling used by tests (nominal 5 s segment).
pub fn nominal_audio_chunk_bytes(media_secs: f64) -> f64 {
    AUDIO_BITRATE_BPS / 8.0 * media_secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vqoe_player::{simulate_session, AbrKind, Delivery, SessionConfig};
    use vqoe_simnet::channel::Scenario;
    use vqoe_simnet::rng::SeedSequence;

    fn trace(idx: u64, delivery: Delivery) -> SessionTrace {
        let seeds = SeedSequence::new(99);
        simulate_session(
            &SessionConfig {
                session_index: idx,
                scenario: Scenario::StaticHome,
                delivery,
                start_time: Instant::from_secs(10),
                profile: Default::default(),
            },
            &seeds,
        )
    }

    fn capture(encrypted: bool) -> (SessionTrace, Vec<WeblogEntry>) {
        let t = trace(0, Delivery::Dash(AbrKind::Hybrid));
        let mut rng = StdRng::seed_from_u64(5);
        let entries = capture_session(
            &t,
            &CaptureConfig {
                encrypted,
                subscriber_id: 42,
            },
            &mut rng,
        )
        .expect("simulated traces always capture");
        (t, entries)
    }

    #[test]
    fn missing_itag_is_an_error_not_a_panic() {
        let mut t = trace(0, Delivery::Dash(AbrKind::Hybrid));
        let stripped = t
            .chunks
            .iter_mut()
            .find(|c| c.content_type == ContentType::Video)
            .map(|c| c.itag = None)
            .is_some();
        assert!(stripped, "trace has no video chunks to corrupt");
        let mut rng = StdRng::seed_from_u64(5);
        let res = capture_session(
            &t,
            &CaptureConfig {
                encrypted: false,
                subscriber_id: 1,
            },
            &mut rng,
        );
        assert!(matches!(res, Err(TelemetryError::MissingItag { .. })));
    }

    #[test]
    fn cleartext_entries_carry_uris_encrypted_do_not() {
        let (_, clear) = capture(false);
        let (_, enc) = capture(true);
        assert!(clear.iter().all(|e| e.uri.is_some()));
        assert!(enc.iter().all(|e| e.uri.is_none()));
        assert!(enc.iter().all(|e| e.encrypted));
    }

    #[test]
    fn entries_are_time_ordered_and_start_with_page_load() {
        let (_, entries) = capture(false);
        for w in entries.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert_eq!(entries[0].kind, EntryKind::PageLoad);
        assert!(entries[0].is_page_host());
    }

    #[test]
    fn every_chunk_becomes_one_media_entry() {
        let (t, entries) = capture(false);
        let media: Vec<&WeblogEntry> = entries
            .iter()
            .filter(|e| e.kind == EntryKind::MediaChunk)
            .collect();
        assert_eq!(media.len(), t.chunks.len());
        for (e, c) in media.iter().zip(t.chunks.iter()) {
            assert_eq!(e.bytes, c.bytes);
            assert_eq!(e.timestamp, c.request_time);
            assert!(e.is_media_host());
        }
    }

    #[test]
    fn chunk_uris_parse_back_to_ground_truth() {
        let (t, entries) = capture(false);
        let mut parsed = 0;
        for e in entries.iter().filter(|e| e.kind == EntryKind::MediaChunk) {
            let p = uri::parse_videoplayback(e.uri.as_ref().unwrap()).unwrap();
            assert_eq!(p.session_id, t.session_id);
            assert_eq!(p.clen, e.bytes);
            parsed += 1;
        }
        assert!(parsed > 0);
    }

    #[test]
    fn final_stats_report_matches_session_ground_truth() {
        let (t, entries) = capture(false);
        let last_report = entries
            .iter()
            .rfind(|e| e.kind == EntryKind::StatsReport)
            .unwrap();
        let r = uri::parse_stats_report(last_report.uri.as_ref().unwrap()).unwrap();
        assert_eq!(r.stall_count as usize, t.ground_truth.stall_count());
        assert!((r.stall_secs - t.ground_truth.total_stall_time().as_secs_f64()).abs() < 1e-3);
        assert_eq!(
            r.state,
            if t.ground_truth.abandoned {
                "paused"
            } else {
                "ended"
            }
        );
    }

    #[test]
    fn stats_reports_are_cumulative_and_monotone() {
        let (_, entries) = capture(false);
        let mut prev_count = 0u32;
        let mut prev_secs = 0.0f64;
        for e in entries.iter().filter(|e| e.kind == EntryKind::StatsReport) {
            let r = uri::parse_stats_report(e.uri.as_ref().unwrap()).unwrap();
            assert!(r.stall_count >= prev_count);
            assert!(r.stall_secs >= prev_secs - 1e-9);
            prev_count = r.stall_count;
            prev_secs = r.stall_secs;
        }
    }

    #[test]
    fn media_hosts_look_like_edge_caches() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let h = media_host(&mut rng);
            assert!(h.ends_with(".googlevideo.com"), "{h}");
            assert!(h.starts_with('r'));
        }
    }

    #[test]
    fn noise_is_outside_the_service_domain_filter() {
        let mut rng = StdRng::seed_from_u64(9);
        let noise = generate_noise(1, Instant::ZERO, Instant::from_secs(600), 50, &mut rng);
        assert_eq!(noise.len(), 50);
        assert!(noise.iter().all(|e| !e.is_service_host()));
        for w in noise.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}
