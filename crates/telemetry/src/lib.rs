//! # vqoe-telemetry
//!
//! The measurement plane of the reproduction: everything between the
//! simulated video players and the feature pipeline.
//!
//! The paper's vantage point is "a web proxy that is deployed on the
//! cellular network of a large European provider" (§3.1), which registers
//! every HTTP transaction with transport-layer annotations. For encrypted
//! traffic the same proxy sees only timings, sizes and TCP statistics —
//! no URIs (§5.2). This crate models both views:
//!
//! * [`weblog`] — the proxy's record type ([`weblog::WeblogEntry`]) and
//!   entry kinds (page loads, media chunks, playback stat reports).
//! * [`uri`] — a YouTube-shaped URI codec: `videoplayback` chunk URIs
//!   carrying `id` (session), `itag` (representation), `mime`, `clen`
//!   (content length) and `dur`; and the periodic playback statistics
//!   reports whose flags the paper mines for stall ground truth (§3.2).
//! * [`capture`] — renders a simulated [`SessionTrace`] into the weblog
//!   stream the proxy would record, in cleartext or encrypted form
//!   (encryption strips the URI but keeps host, timing, size and TCP
//!   annotations).
//! * [`reassembly`] — the §5.2 procedure for encrypted traffic: filter to
//!   service-related domains, find the page-fetch markers that bracket a
//!   session, split on idle gaps, and group chunk transactions into
//!   reassembled sessions.
//! * [`chaos`] — a deterministic fault injector ([`chaos::ChaosTap`])
//!   that degrades a weblog stream the way a hostile operator tap does:
//!   reordering, duplication, drops, timestamp skew, field corruption,
//!   subscriber-ID collisions and mid-session cuts, all from one seed.
//! * [`ingest`] — the graceful-degradation layer: a hardened
//!   [`ingest::RobustReassembler`] that re-sorts bounded reordering,
//!   suppresses duplicates and quarantines malformed entries into a
//!   typed [`ingest::AnomalyLog`], reporting [`ingest::StreamHealth`]
//!   counters throughout.
//! * [`groundtruth`] — the §3.2 reverse-engineering step: parse the
//!   cleartext URIs back into per-session ground truth (session IDs,
//!   itag sequences, stall totals from playback reports).
//! * [`dataset`] — joins reassembled sessions back to ground truth (by
//!   time overlap and chunk counts, as the paper joins its instrumented-
//!   handset logs to proxy records) and persists datasets as JSONL.
//! * [`binlog`] — the compact length-prefixed binary weblog format
//!   ([`binlog::BinaryCorpus`]): versioned header, zero-copy record
//!   iteration, typed decode errors. The replay hot path skips serde
//!   entirely; JSONL stays the archival interchange format.
//!
//! [`SessionTrace`]: vqoe_player::SessionTrace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binlog;
pub mod capture;
pub mod chaos;
pub mod dataset;
pub mod error;
pub mod groundtruth;
pub mod ingest;
pub mod reassembly;
pub mod uri;
pub mod weblog;

pub use binlog::{BinaryCorpus, BinlogError, RecordRef, BINLOG_MAGIC, BINLOG_VERSION};
pub use capture::{capture_session, CaptureConfig};
pub use chaos::{
    apply_chaos, generate_burst_storm, generate_pathological_session, generate_subscriber_flood,
    merge_streams, ChaosConfig, ChaosProfile, ChaosStats, ChaosTap, FloodSpec,
};
pub use dataset::{join_sessions, read_jsonl, write_jsonl, JoinedSession};
pub use error::TelemetryError;
pub use groundtruth::{extract_sessions, ExtractedChunk, ExtractedSession};
pub use ingest::{
    robust_reassemble_subscriber, validate_entry, AnomalyKind, AnomalyKindCounts, AnomalyLog,
    IngestAnomaly, IngestConfig, ReassemblerState, RobustReassembler, StreamHealth,
};
pub use reassembly::{
    reassemble_subscriber, ReassembledSession, ReassemblyConfig, SpillSink, StreamReassembler,
    StreamReassemblerState, EXACT_ENTRY_CAP, SPILL_STATE_COST_BYTES,
};
pub use uri::{PlaybackReport, VideoPlaybackParams};
pub use weblog::{EntryKind, WeblogEntry, RECORD_OVERHEAD_BYTES};
