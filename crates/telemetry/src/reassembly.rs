//! Encrypted-session reassembly (§5.2).
//!
//! With TLS the proxy loses the session ID that groups chunk downloads,
//! so sessions must be recovered from traffic shape alone. The paper's
//! procedure, implemented verbatim:
//!
//! 1. "Identify the traffic that corresponds to a single subscriber and
//!    remove all requests that do not belong to YouTube by filtering out
//!    those that have domain names not related to the service."
//! 2. "Look for the unique HTTP traffic patterns that take place at the
//!    beginning of a new video session ... requests to m.youtube.com and
//!    i.ytimg.com which are responsible for downloading multiple web
//!    objects."
//! 3. "Longer periods without traffic that correspond to the time
//!    between consecutive sessions are identified in order to clearly
//!    define the beginning and ending of each session."
//!
//! The paper notes the method "can be limited in scenarios were the same
//! subscriber launches multiple videos in parallel" — ours inherits the
//! same limitation by construction, and the evaluation schedules
//! sessions sequentially as the instrumented handset did.

use crate::weblog::WeblogEntry;
use serde::{Deserialize, Serialize};
use vqoe_simnet::time::{Duration, Instant};

/// Reassembly tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReassemblyConfig {
    /// Idle gap that separates consecutive sessions.
    pub idle_gap: Duration,
    /// A watch-page fetch at least this long after the last media chunk
    /// marks a new session even without a full idle gap.
    pub page_marker_gap: Duration,
    /// Discard fragments with fewer media chunks than this.
    pub min_chunks: usize,
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        ReassemblyConfig {
            idle_gap: Duration::from_secs(30),
            page_marker_gap: Duration::from_secs(8),
            min_chunks: 3,
        }
    }
}

/// One session recovered from encrypted traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReassembledSession {
    /// First service transaction of the session.
    pub start: Instant,
    /// Last byte of the last transaction.
    pub end: Instant,
    /// The media-chunk transactions, in time order.
    pub chunks: Vec<WeblogEntry>,
    /// Page/stats transactions bracketing the chunks (kept for
    /// diagnostics; the detectors only use `chunks`).
    pub other: Vec<WeblogEntry>,
}

impl ReassembledSession {
    /// Number of recovered media chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Duration spanned by the recovered session.
    pub fn span(&self) -> Duration {
        self.end.duration_since(self.start)
    }
}

/// Incremental (streaming) reassembler: feed weblog entries in time
/// order and receive a [`ReassembledSession`] the moment a boundary
/// proves the previous session complete — the "report issues in real
/// time" deployment mode of §8. The batch function
/// [`reassemble_subscriber`] is a thin wrapper over this state machine,
/// so the two can never disagree.
#[derive(Debug, Clone)]
pub struct StreamReassembler {
    config: ReassemblyConfig,
    current: Vec<WeblogEntry>,
    last_seen: Option<Instant>,
    last_media: Option<Instant>,
    /// Deterministic cost of `current` (sum of
    /// [`WeblogEntry::tracked_cost`]), maintained incrementally so the
    /// memory-budget check stays O(1) per entry.
    buffered_cost: u64,
}

/// Serializable snapshot of a [`StreamReassembler`] — the open session
/// group and the boundary clocks. `Vec`-shaped on purpose: it feeds the
/// checkpoint/restore path, which serializes through the workspace's
/// hand-rolled JSON layer. The derived cost counter is *not* stored; it
/// is recomputed on restore, so a snapshot can never disagree with its
/// own records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReassemblerState {
    /// Reassembly tunables in effect.
    pub config: ReassemblyConfig,
    /// The currently open session group, in push order.
    pub current: Vec<WeblogEntry>,
    /// Arrival time of the newest service entry.
    pub last_seen: Option<Instant>,
    /// Arrival time of the newest media chunk.
    pub last_media: Option<Instant>,
}

impl StreamReassembler {
    /// Fresh state machine for one subscriber.
    pub fn new(config: ReassemblyConfig) -> Self {
        StreamReassembler {
            config,
            current: Vec::new(),
            last_seen: None,
            last_media: None,
            buffered_cost: 0,
        }
    }

    /// Snapshot the machine for checkpointing.
    pub fn to_state(&self) -> StreamReassemblerState {
        StreamReassemblerState {
            config: self.config,
            current: self.current.clone(),
            last_seen: self.last_seen,
            last_media: self.last_media,
        }
    }

    /// Rebuild a machine from a snapshot, recomputing the cost counter.
    pub fn from_state(state: StreamReassemblerState) -> Self {
        let buffered_cost = state.current.iter().map(|e| e.tracked_cost()).sum();
        StreamReassembler {
            config: state.config,
            current: state.current,
            last_seen: state.last_seen,
            last_media: state.last_media,
            buffered_cost,
        }
    }

    /// Deterministic memory cost of the open session group (sum of
    /// [`WeblogEntry::tracked_cost`] over buffered entries).
    pub fn buffered_cost(&self) -> u64 {
        self.buffered_cost
    }

    /// Feed one entry (must arrive in timestamp order). Returns the
    /// completed previous session when this entry proves a boundary.
    /// Non-service entries are ignored (the paper's step-1 filter).
    pub fn push(&mut self, e: &WeblogEntry) -> Option<ReassembledSession> {
        if !e.is_service_host() {
            return None;
        }
        let mut boundary = false;
        if let Some(last) = self.last_seen {
            // Step 3: idle-gap split.
            if e.timestamp.duration_since(last) > self.config.idle_gap {
                boundary = true;
            }
        }
        // Step 2: watch-page marker after media activity ⇒ new session.
        if !boundary && e.is_page_host() {
            if let Some(lm) = self.last_media {
                if e.timestamp.duration_since(lm) > self.config.page_marker_gap {
                    boundary = true;
                }
            }
        }
        let mut emitted = None;
        if boundary && !self.current.is_empty() {
            emitted = self.take_session();
            self.last_media = None;
        }
        if e.is_media_host() {
            self.last_media = Some(e.arrival_time());
        }
        self.last_seen = Some(e.arrival_time());
        self.buffered_cost += e.tracked_cost();
        self.current.push(e.clone());
        emitted
    }

    /// Close the stream, emitting any final open session.
    pub fn finish(mut self) -> Option<ReassembledSession> {
        self.take_session()
    }

    /// Number of service entries in the currently open group.
    pub fn open_entries(&self) -> usize {
        self.current.len()
    }

    fn take_session(&mut self) -> Option<ReassembledSession> {
        let batch = std::mem::take(&mut self.current);
        self.buffered_cost = 0;
        let start = batch.first()?.timestamp;
        let chunks: Vec<WeblogEntry> = batch
            .iter()
            .filter(|e| e.is_media_host())
            .cloned()
            .collect();
        if chunks.len() < self.config.min_chunks {
            return None;
        }
        let end = batch.iter().map(|e| e.arrival_time()).max()?;
        let other: Vec<WeblogEntry> = batch
            .iter()
            .filter(|e| !e.is_media_host())
            .cloned()
            .collect();
        Some(ReassembledSession {
            start,
            end,
            chunks,
            other,
        })
    }
}

/// Reassemble one subscriber's weblog stream into sessions.
///
/// `entries` may be unsorted and may contain non-service noise; both are
/// handled (the paper's step 1 is the domain filter). This is the batch
/// form of [`StreamReassembler`].
pub fn reassemble_subscriber(
    entries: &[WeblogEntry],
    config: &ReassemblyConfig,
) -> Vec<ReassembledSession> {
    let mut service: Vec<&WeblogEntry> = entries.iter().filter(|e| e.is_service_host()).collect();
    service.sort_by_key(|e| e.timestamp);
    let mut machine = StreamReassembler::new(*config);
    let mut sessions = Vec::new();
    for e in service {
        if let Some(done) = machine.push(e) {
            sessions.push(done);
        }
    }
    if let Some(done) = machine.finish() {
        sessions.push(done);
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_session, generate_noise, CaptureConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vqoe_player::{simulate_session, AbrKind, Delivery, SessionConfig, SessionTrace};
    use vqoe_simnet::channel::Scenario;
    use vqoe_simnet::rng::SeedSequence;

    /// Simulate `n` sequential sessions of one subscriber, capture them
    /// encrypted with inter-session gaps, and mix in noise.
    fn subscriber_stream(n: usize, gap_secs: u64) -> (Vec<SessionTrace>, Vec<WeblogEntry>) {
        let seeds = SeedSequence::new(314);
        let mut rng = StdRng::seed_from_u64(1);
        let mut traces = Vec::new();
        let mut entries = Vec::new();
        let mut t0 = Instant::from_secs(100);
        for i in 0..n {
            let trace = simulate_session(
                &SessionConfig {
                    session_index: i as u64,
                    scenario: Scenario::StaticHome,
                    delivery: Delivery::Dash(AbrKind::Hybrid),
                    start_time: t0,
                    profile: Default::default(),
                },
                &seeds,
            );
            entries.extend(
                capture_session(
                    &trace,
                    &CaptureConfig {
                        encrypted: true,
                        subscriber_id: 7,
                    },
                    &mut rng,
                )
                .expect("simulated traces always capture"),
            );
            t0 = trace.ground_truth.session_end + Duration::from_secs(gap_secs);
            traces.push(trace);
        }
        let span_end = t0 + Duration::from_secs(60);
        entries.extend(generate_noise(7, Instant::ZERO, span_end, 120, &mut rng));
        entries.sort_by_key(|e| e.timestamp);
        (traces, entries)
    }

    #[test]
    fn sequential_sessions_are_recovered() {
        let (traces, entries) = subscriber_stream(5, 120);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        assert_eq!(sessions.len(), traces.len());
        for (s, t) in sessions.iter().zip(traces.iter()) {
            // Chunk counts must match exactly: nothing leaked, nothing lost.
            assert_eq!(s.chunk_count(), t.chunks.len());
        }
    }

    #[test]
    fn noise_never_enters_sessions() {
        let (_, entries) = subscriber_stream(3, 90);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        for s in &sessions {
            assert!(s.chunks.iter().all(|e| e.is_media_host()));
            assert!(s.other.iter().all(|e| e.is_service_host()));
        }
    }

    #[test]
    fn sessions_are_ordered_and_disjoint() {
        let (_, entries) = subscriber_stream(4, 100);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        for w in sessions.windows(2) {
            assert!(w[0].end <= w[1].start, "sessions overlap");
        }
    }

    #[test]
    fn tiny_fragments_are_discarded() {
        // Three lone media chunks below min_chunks=5 must be dropped.
        let (_, entries) = subscriber_stream(1, 60);
        let cfg = ReassemblyConfig {
            min_chunks: 100_000, // absurd threshold: nothing survives
            ..ReassemblyConfig::default()
        };
        assert!(reassemble_subscriber(&entries, &cfg).is_empty());
    }

    #[test]
    fn empty_input_yields_no_sessions() {
        assert!(reassemble_subscriber(&[], &ReassemblyConfig::default()).is_empty());
    }

    #[test]
    fn page_marker_splits_back_to_back_sessions() {
        // Gap shorter than idle_gap (30 s): only the page-burst marker can
        // separate the two sessions.
        let (traces, entries) = subscriber_stream(2, 12);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        assert_eq!(sessions.len(), 2, "page marker failed to split");
        assert_eq!(sessions[0].chunk_count(), traces[0].chunks.len());
        assert_eq!(sessions[1].chunk_count(), traces[1].chunks.len());
    }

    #[test]
    fn reassembled_span_covers_the_download() {
        let (traces, entries) = subscriber_stream(1, 60);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        let first_chunk = traces[0].chunks.first().unwrap().request_time;
        let last_chunk = traces[0].chunks.last().unwrap().arrival_time;
        assert!(s.start <= first_chunk);
        assert!(s.end >= last_chunk);
    }
}
