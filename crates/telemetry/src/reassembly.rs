//! Encrypted-session reassembly (§5.2).
//!
//! With TLS the proxy loses the session ID that groups chunk downloads,
//! so sessions must be recovered from traffic shape alone. The paper's
//! procedure, implemented verbatim:
//!
//! 1. "Identify the traffic that corresponds to a single subscriber and
//!    remove all requests that do not belong to YouTube by filtering out
//!    those that have domain names not related to the service."
//! 2. "Look for the unique HTTP traffic patterns that take place at the
//!    beginning of a new video session ... requests to m.youtube.com and
//!    i.ytimg.com which are responsible for downloading multiple web
//!    objects."
//! 3. "Longer periods without traffic that correspond to the time
//!    between consecutive sessions are identified in order to clearly
//!    define the beginning and ending of each session."
//!
//! The paper notes the method "can be limited in scenarios were the same
//! subscriber launches multiple videos in parallel" — ours inherits the
//! same limitation by construction, and the evaluation schedules
//! sessions sequentially as the instrumented handset did.

use crate::weblog::WeblogEntry;
use serde::{Deserialize, Serialize};
use vqoe_simnet::time::{Duration, Instant};

/// Entries buffered verbatim per open session before the reassembler
/// switches to streaming spill (see [`SpillSink`]); pinned
/// workspace-wide (the `vqoe-analyze` constants pass checks it against
/// DESIGN.md §15). Sessions that stay under the cap are assessed
/// bit-identically to the historical fully-buffered path; only sessions
/// that exceed it degrade to the sketched tier.
pub const EXACT_ENTRY_CAP: usize = 4096;

/// Deterministic cost charged to a subscriber's budget the moment its
/// open session spills past [`EXACT_ENTRY_CAP`]: a fixed stand-in for
/// the O(1) streaming digest (moments + quantile sketches), in the same
/// [`WeblogEntry::tracked_cost`] units as buffered entries. Spilling
/// stops per-entry cost growth, so this constant is the per-subscriber
/// memory bound the budgets see for arbitrarily long sessions.
pub const SPILL_STATE_COST_BYTES: u64 = 65_536;

/// Reassembly tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ReassemblyConfig {
    /// Idle gap that separates consecutive sessions.
    pub idle_gap: Duration,
    /// A watch-page fetch at least this long after the last media chunk
    /// marks a new session even without a full idle gap.
    pub page_marker_gap: Duration,
    /// Discard fragments with fewer media chunks than this.
    pub min_chunks: usize,
    /// Per-session exact-buffer cap: entries beyond this stream into
    /// the attached [`SpillSink`] (or are counted and dropped when none
    /// is attached) instead of buffering. `0` disables spilling
    /// (unbounded buffering, the pre-ISSUE-10 behaviour). Deserializes
    /// to [`EXACT_ENTRY_CAP`] when absent, so older model files keep
    /// working.
    pub exact_entry_cap: usize,
}

// Hand-written (the vendored serde stub's derive has no `#[serde(default)]`):
// `exact_entry_cap` is absent from pre-ISSUE-10 snapshots and defaults
// to [`EXACT_ENTRY_CAP`].
impl Deserialize for ReassemblyConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let req = |f: &str| {
            value
                .get(f)
                .ok_or_else(|| serde::DeError::missing_field("ReassemblyConfig", f))
        };
        Ok(ReassemblyConfig {
            idle_gap: Deserialize::from_value(req("idle_gap")?)?,
            page_marker_gap: Deserialize::from_value(req("page_marker_gap")?)?,
            min_chunks: Deserialize::from_value(req("min_chunks")?)?,
            exact_entry_cap: match value.get("exact_entry_cap") {
                Some(v) => Deserialize::from_value(v)?,
                None => EXACT_ENTRY_CAP,
            },
        })
    }
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        ReassemblyConfig {
            idle_gap: Duration::from_secs(30),
            page_marker_gap: Duration::from_secs(8),
            min_chunks: 3,
            exact_entry_cap: EXACT_ENTRY_CAP,
        }
    }
}

/// Receiver for media-chunk entries past the exactness cap.
///
/// The streaming digest itself (running moments + quantile sketches
/// over the §4 metric series) lives in `vqoe-features`, which this
/// crate cannot depend on; the trait inverts the dependency. Contract,
/// relied on by `vqoe-core`'s sketched assessment path:
///
/// * at the first spill of a session, the reassembler **replays the
///   exact prefix** (every buffered media entry, in order) into
///   [`SpillSink::fold_chunk`] before folding the overflow entry, so
///   the digest always covers the whole session;
/// * [`SpillSink::seal`] archives the current digest as one finished
///   session (FIFO) and resets for the next — called exactly when the
///   reassembler emits a session with `spilled_chunks > 0`;
/// * [`SpillSink::discard`] drops the current digest without archiving
///   (the spilled fragment failed `min_chunks`).
pub trait SpillSink: std::fmt::Debug + Send {
    /// Fold one media-chunk entry into the current session's digest.
    fn fold_chunk(&mut self, e: &WeblogEntry);
    /// Archive the current digest as a finished session and reset.
    fn seal(&mut self);
    /// Drop the current digest without archiving and reset.
    fn discard(&mut self);
    /// Deterministic JSON snapshot of the sink (current digest plus any
    /// sealed-but-unclaimed ones), for checkpointing; `None` when the
    /// sink holds no state.
    fn state_json(&self) -> Option<String>;
    /// Clone behind the object (keeps the reassembler `Clone`).
    fn clone_box(&self) -> Box<dyn SpillSink>;
    /// Downcast hook so `vqoe-core` can claim sealed digests by
    /// concrete type.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl Clone for Box<dyn SpillSink> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One session recovered from encrypted traffic.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReassembledSession {
    /// First service transaction of the session.
    pub start: Instant,
    /// Last byte of the last transaction.
    pub end: Instant,
    /// The media-chunk transactions, in time order. When the session
    /// spilled, this is only the exact prefix (the first
    /// [`ReassemblyConfig::exact_entry_cap`] entries' media chunks).
    pub chunks: Vec<WeblogEntry>,
    /// Page/stats transactions bracketing the chunks (kept for
    /// diagnostics; the detectors only use `chunks`).
    pub other: Vec<WeblogEntry>,
    /// Media chunks folded into the [`SpillSink`] past the exactness
    /// cap (zero for the historical fully-buffered path).
    pub spilled_chunks: u64,
    /// Non-media service entries seen past the exactness cap (counted
    /// only; they never contribute to features).
    pub spilled_other: u64,
}

// Hand-written: the `spilled_*` counters are absent from pre-ISSUE-10
// snapshots and default to zero (exact session).
impl Deserialize for ReassembledSession {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let req = |f: &str| {
            value
                .get(f)
                .ok_or_else(|| serde::DeError::missing_field("ReassembledSession", f))
        };
        let opt_u64 = |f: &str| match value.get(f) {
            Some(v) => Deserialize::from_value(v),
            None => Ok(0u64),
        };
        Ok(ReassembledSession {
            start: Deserialize::from_value(req("start")?)?,
            end: Deserialize::from_value(req("end")?)?,
            chunks: Deserialize::from_value(req("chunks")?)?,
            other: Deserialize::from_value(req("other")?)?,
            spilled_chunks: opt_u64("spilled_chunks")?,
            spilled_other: opt_u64("spilled_other")?,
        })
    }
}

impl ReassembledSession {
    /// Number of exactly buffered media chunks (the spilled tail is
    /// *not* included; see [`ReassembledSession::total_chunks`]).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total media chunks observed, buffered plus spilled.
    pub fn total_chunks(&self) -> u64 {
        self.chunks.len() as u64 + self.spilled_chunks
    }

    /// True when every chunk was buffered verbatim — the session is
    /// eligible for the bit-identical exact assessment path.
    pub fn is_exact(&self) -> bool {
        self.spilled_chunks == 0
    }

    /// Duration spanned by the recovered session.
    pub fn span(&self) -> Duration {
        self.end.duration_since(self.start)
    }
}

/// Incremental (streaming) reassembler: feed weblog entries in time
/// order and receive a [`ReassembledSession`] the moment a boundary
/// proves the previous session complete — the "report issues in real
/// time" deployment mode of §8. The batch function
/// [`reassemble_subscriber`] is a thin wrapper over this state machine,
/// so the two can never disagree.
#[derive(Debug, Clone)]
pub struct StreamReassembler {
    config: ReassemblyConfig,
    current: Vec<WeblogEntry>,
    last_seen: Option<Instant>,
    last_media: Option<Instant>,
    /// Deterministic cost of `current` (sum of
    /// [`WeblogEntry::tracked_cost`]), maintained incrementally so the
    /// memory-budget check stays O(1) per entry. While a spill is
    /// active, also carries the fixed [`SPILL_STATE_COST_BYTES`].
    buffered_cost: u64,
    /// Streaming receiver for entries past the exactness cap.
    spill: Option<Box<dyn SpillSink>>,
    /// True once the open session crossed the cap (prefix already
    /// replayed into the sink).
    spill_active: bool,
    /// Media chunks folded past the cap for the open session.
    spilled_chunks: u64,
    /// Non-media entries counted past the cap for the open session.
    spilled_other: u64,
    /// Latest arrival time among spilled entries (extends the session
    /// end past the buffered prefix).
    spilled_end: Option<Instant>,
}

/// Serializable snapshot of a [`StreamReassembler`] — the open session
/// group and the boundary clocks. `Vec`-shaped on purpose: it feeds the
/// checkpoint/restore path, which serializes through the workspace's
/// hand-rolled JSON layer. The derived cost counter is *not* stored; it
/// is recomputed on restore, so a snapshot can never disagree with its
/// own records.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamReassemblerState {
    /// Reassembly tunables in effect.
    pub config: ReassemblyConfig,
    /// The currently open session group, in push order.
    pub current: Vec<WeblogEntry>,
    /// Arrival time of the newest service entry.
    pub last_seen: Option<Instant>,
    /// Arrival time of the newest media chunk.
    pub last_media: Option<Instant>,
    /// True once the open session crossed the exactness cap.
    pub spill_active: bool,
    /// Media chunks folded past the cap for the open session.
    pub spilled_chunks: u64,
    /// Non-media entries counted past the cap for the open session.
    pub spilled_other: u64,
    /// Latest arrival time among spilled entries.
    pub spilled_end: Option<Instant>,
    /// Deterministic snapshot of the attached [`SpillSink`] (the
    /// caller that restores the machine rehydrates the concrete sink
    /// from this and re-attaches it via
    /// [`StreamReassembler::with_spill`]).
    pub spill_json: Option<String>,
}

// Hand-written: every spill field is absent from pre-ISSUE-10
// checkpoints and defaults to "never spilled".
impl Deserialize for StreamReassemblerState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let req = |f: &str| {
            value
                .get(f)
                .ok_or_else(|| serde::DeError::missing_field("StreamReassemblerState", f))
        };
        Ok(StreamReassemblerState {
            config: Deserialize::from_value(req("config")?)?,
            current: Deserialize::from_value(req("current")?)?,
            last_seen: Deserialize::from_value(req("last_seen")?)?,
            last_media: Deserialize::from_value(req("last_media")?)?,
            spill_active: match value.get("spill_active") {
                Some(v) => Deserialize::from_value(v)?,
                None => false,
            },
            spilled_chunks: match value.get("spilled_chunks") {
                Some(v) => Deserialize::from_value(v)?,
                None => 0,
            },
            spilled_other: match value.get("spilled_other") {
                Some(v) => Deserialize::from_value(v)?,
                None => 0,
            },
            spilled_end: match value.get("spilled_end") {
                Some(v) => Deserialize::from_value(v)?,
                None => None,
            },
            spill_json: match value.get("spill_json") {
                Some(v) => Deserialize::from_value(v)?,
                None => None,
            },
        })
    }
}

impl StreamReassembler {
    /// Fresh state machine for one subscriber.
    pub fn new(config: ReassemblyConfig) -> Self {
        StreamReassembler {
            config,
            current: Vec::new(),
            last_seen: None,
            last_media: None,
            buffered_cost: 0,
            spill: None,
            spill_active: false,
            spilled_chunks: 0,
            spilled_other: 0,
            spilled_end: None,
        }
    }

    /// Attach a streaming receiver for entries past the exactness cap.
    /// Without one, over-cap entries are counted and dropped (sessions
    /// still finalize with correct boundaries and `spilled_*` counts,
    /// but no digest exists to assess them from).
    pub fn with_spill(mut self, sink: Box<dyn SpillSink>) -> Self {
        self.attach_spill(sink);
        self
    }

    /// In-place form of [`StreamReassembler::with_spill`].
    pub fn attach_spill(&mut self, sink: Box<dyn SpillSink>) {
        self.spill = Some(sink);
    }

    /// Mutable access to the attached spill sink (the sketched
    /// assessment path downcasts it to claim sealed digests).
    pub fn spill_sink_mut(&mut self) -> Option<&mut (dyn SpillSink + '_)> {
        match &mut self.spill {
            Some(b) => {
                let sink: &mut (dyn SpillSink + '_) = &mut **b;
                Some(sink)
            }
            None => None,
        }
    }

    /// Snapshot the machine for checkpointing.
    pub fn to_state(&self) -> StreamReassemblerState {
        StreamReassemblerState {
            config: self.config,
            current: self.current.clone(),
            last_seen: self.last_seen,
            last_media: self.last_media,
            spill_active: self.spill_active,
            spilled_chunks: self.spilled_chunks,
            spilled_other: self.spilled_other,
            spilled_end: self.spilled_end,
            spill_json: self.spill.as_ref().and_then(|s| s.state_json()),
        }
    }

    /// Rebuild a machine from a snapshot, recomputing the cost counter.
    /// The spill sink is *not* rebuilt here (this crate does not know
    /// the concrete digest type); the caller rehydrates it from
    /// [`StreamReassemblerState::spill_json`] and re-attaches via
    /// [`StreamReassembler::with_spill`].
    pub fn from_state(state: StreamReassemblerState) -> Self {
        let mut buffered_cost: u64 = state.current.iter().map(|e| e.tracked_cost()).sum();
        if state.spill_active {
            buffered_cost += SPILL_STATE_COST_BYTES;
        }
        StreamReassembler {
            config: state.config,
            current: state.current,
            last_seen: state.last_seen,
            last_media: state.last_media,
            buffered_cost,
            spill: None,
            spill_active: state.spill_active,
            spilled_chunks: state.spilled_chunks,
            spilled_other: state.spilled_other,
            spilled_end: state.spilled_end,
        }
    }

    /// Deterministic memory cost of the open session group (sum of
    /// [`WeblogEntry::tracked_cost`] over buffered entries).
    pub fn buffered_cost(&self) -> u64 {
        self.buffered_cost
    }

    /// Feed one entry (must arrive in timestamp order). Returns the
    /// completed previous session when this entry proves a boundary.
    /// Non-service entries are ignored (the paper's step-1 filter).
    pub fn push(&mut self, e: &WeblogEntry) -> Option<ReassembledSession> {
        if !e.is_service_host() {
            return None;
        }
        let mut boundary = false;
        if let Some(last) = self.last_seen {
            // Step 3: idle-gap split.
            if e.timestamp.duration_since(last) > self.config.idle_gap {
                boundary = true;
            }
        }
        // Step 2: watch-page marker after media activity ⇒ new session.
        if !boundary && e.is_page_host() {
            if let Some(lm) = self.last_media {
                if e.timestamp.duration_since(lm) > self.config.page_marker_gap {
                    boundary = true;
                }
            }
        }
        let mut emitted = None;
        if boundary && !self.current.is_empty() {
            emitted = self.take_session();
            self.last_media = None;
        }
        if e.is_media_host() {
            self.last_media = Some(e.arrival_time());
        }
        self.last_seen = Some(e.arrival_time());
        let cap = self.config.exact_entry_cap;
        if cap == 0 || self.current.len() < cap {
            self.buffered_cost += e.tracked_cost();
            self.current.push(e.clone());
        } else {
            self.spill_entry(e);
        }
        emitted
    }

    /// Route one over-cap entry into the streaming digest. On the first
    /// spill of a session the exact prefix is replayed into the sink
    /// (see the [`SpillSink`] contract) and the fixed digest cost is
    /// charged in place of further per-entry growth.
    fn spill_entry(&mut self, e: &WeblogEntry) {
        if !self.spill_active {
            self.spill_active = true;
            self.buffered_cost += SPILL_STATE_COST_BYTES;
            if let Some(sink) = self.spill.as_deref_mut() {
                for prior in &self.current {
                    if prior.is_media_host() {
                        sink.fold_chunk(prior);
                    }
                }
            }
        }
        if e.is_media_host() {
            self.spilled_chunks += 1;
            if let Some(sink) = self.spill.as_deref_mut() {
                sink.fold_chunk(e);
            }
        } else {
            self.spilled_other += 1;
        }
        let arrival = e.arrival_time();
        self.spilled_end = Some(self.spilled_end.map_or(arrival, |t| t.max(arrival)));
    }

    /// Close the stream, emitting any final open session.
    pub fn finish(mut self) -> Option<ReassembledSession> {
        self.finish_in_place()
    }

    /// Close the open session group without consuming the machine: the
    /// final session (if any) is emitted and the machine resets to
    /// fresh, keeping its attached [`SpillSink`] (with any sealed
    /// digests still unclaimed) installed for reuse.
    pub fn finish_in_place(&mut self) -> Option<ReassembledSession> {
        let done = self.take_session();
        self.last_seen = None;
        self.last_media = None;
        done
    }

    /// Number of service entries in the currently open group.
    pub fn open_entries(&self) -> usize {
        self.current.len()
    }

    fn take_session(&mut self) -> Option<ReassembledSession> {
        let batch = std::mem::take(&mut self.current);
        self.buffered_cost = 0;
        let spilled_chunks = std::mem::take(&mut self.spilled_chunks);
        let spilled_other = std::mem::take(&mut self.spilled_other);
        let spilled_end = self.spilled_end.take();
        let was_spilled = std::mem::take(&mut self.spill_active);
        let min_chunks = self.config.min_chunks;
        let session = (|| {
            let start = batch.first()?.timestamp;
            let chunks: Vec<WeblogEntry> = batch
                .iter()
                .filter(|e| e.is_media_host())
                .cloned()
                .collect();
            if (chunks.len() as u64 + spilled_chunks) < min_chunks as u64 {
                return None;
            }
            let end = batch.iter().map(|e| e.arrival_time()).max()?;
            let end = spilled_end.map_or(end, |t| t.max(end));
            let other: Vec<WeblogEntry> = batch
                .iter()
                .filter(|e| !e.is_media_host())
                .cloned()
                .collect();
            Some(ReassembledSession {
                start,
                end,
                chunks,
                other,
                spilled_chunks,
                spilled_other,
            })
        })();
        if was_spilled {
            if let Some(sink) = self.spill.as_deref_mut() {
                if session.is_some() {
                    sink.seal();
                } else {
                    sink.discard();
                }
            }
        }
        session
    }
}

/// Reassemble one subscriber's weblog stream into sessions.
///
/// `entries` may be unsorted and may contain non-service noise; both are
/// handled (the paper's step 1 is the domain filter). This is the batch
/// form of [`StreamReassembler`].
pub fn reassemble_subscriber(
    entries: &[WeblogEntry],
    config: &ReassemblyConfig,
) -> Vec<ReassembledSession> {
    let mut service: Vec<&WeblogEntry> = entries.iter().filter(|e| e.is_service_host()).collect();
    service.sort_by_key(|e| e.timestamp);
    let mut machine = StreamReassembler::new(*config);
    let mut sessions = Vec::new();
    for e in service {
        if let Some(done) = machine.push(e) {
            sessions.push(done);
        }
    }
    if let Some(done) = machine.finish() {
        sessions.push(done);
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_session, generate_noise, CaptureConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vqoe_player::{simulate_session, AbrKind, Delivery, SessionConfig, SessionTrace};
    use vqoe_simnet::channel::Scenario;
    use vqoe_simnet::rng::SeedSequence;

    /// Simulate `n` sequential sessions of one subscriber, capture them
    /// encrypted with inter-session gaps, and mix in noise.
    fn subscriber_stream(n: usize, gap_secs: u64) -> (Vec<SessionTrace>, Vec<WeblogEntry>) {
        let seeds = SeedSequence::new(314);
        let mut rng = StdRng::seed_from_u64(1);
        let mut traces = Vec::new();
        let mut entries = Vec::new();
        let mut t0 = Instant::from_secs(100);
        for i in 0..n {
            let trace = simulate_session(
                &SessionConfig {
                    session_index: i as u64,
                    scenario: Scenario::StaticHome,
                    delivery: Delivery::Dash(AbrKind::Hybrid),
                    start_time: t0,
                    profile: Default::default(),
                },
                &seeds,
            );
            entries.extend(
                capture_session(
                    &trace,
                    &CaptureConfig {
                        encrypted: true,
                        subscriber_id: 7,
                    },
                    &mut rng,
                )
                .expect("simulated traces always capture"),
            );
            t0 = trace.ground_truth.session_end + Duration::from_secs(gap_secs);
            traces.push(trace);
        }
        let span_end = t0 + Duration::from_secs(60);
        entries.extend(generate_noise(7, Instant::ZERO, span_end, 120, &mut rng));
        entries.sort_by_key(|e| e.timestamp);
        (traces, entries)
    }

    #[test]
    fn sequential_sessions_are_recovered() {
        let (traces, entries) = subscriber_stream(5, 120);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        assert_eq!(sessions.len(), traces.len());
        for (s, t) in sessions.iter().zip(traces.iter()) {
            // Chunk counts must match exactly: nothing leaked, nothing lost.
            assert_eq!(s.chunk_count(), t.chunks.len());
        }
    }

    #[test]
    fn noise_never_enters_sessions() {
        let (_, entries) = subscriber_stream(3, 90);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        for s in &sessions {
            assert!(s.chunks.iter().all(|e| e.is_media_host()));
            assert!(s.other.iter().all(|e| e.is_service_host()));
        }
    }

    #[test]
    fn sessions_are_ordered_and_disjoint() {
        let (_, entries) = subscriber_stream(4, 100);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        for w in sessions.windows(2) {
            assert!(w[0].end <= w[1].start, "sessions overlap");
        }
    }

    #[test]
    fn tiny_fragments_are_discarded() {
        // Three lone media chunks below min_chunks=5 must be dropped.
        let (_, entries) = subscriber_stream(1, 60);
        let cfg = ReassemblyConfig {
            min_chunks: 100_000, // absurd threshold: nothing survives
            ..ReassemblyConfig::default()
        };
        assert!(reassemble_subscriber(&entries, &cfg).is_empty());
    }

    #[test]
    fn empty_input_yields_no_sessions() {
        assert!(reassemble_subscriber(&[], &ReassemblyConfig::default()).is_empty());
    }

    #[test]
    fn page_marker_splits_back_to_back_sessions() {
        // Gap shorter than idle_gap (30 s): only the page-burst marker can
        // separate the two sessions.
        let (traces, entries) = subscriber_stream(2, 12);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        assert_eq!(sessions.len(), 2, "page marker failed to split");
        assert_eq!(sessions[0].chunk_count(), traces[0].chunks.len());
        assert_eq!(sessions[1].chunk_count(), traces[1].chunks.len());
    }

    #[test]
    fn reassembled_span_covers_the_download() {
        let (traces, entries) = subscriber_stream(1, 60);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        let first_chunk = traces[0].chunks.first().unwrap().request_time;
        let last_chunk = traces[0].chunks.last().unwrap().arrival_time;
        assert!(s.start <= first_chunk);
        assert!(s.end >= last_chunk);
    }
}
