//! YouTube-shaped URI metadata codec.
//!
//! §3.2 of the paper reverse-engineers three kinds of URI metadata from
//! cleartext requests:
//!
//! * **content stats** in `videoplayback` chunk URIs — notably `itag`
//!   ("used to specify the bit-rate, frame-rate and resolution of the
//!   segment") and the content type (video vs audio, container);
//! * the unique 16-character **session ID** that groups all weblogs of
//!   one session;
//! * **playback stats** in periodic reports "sent from the player to
//!   Google servers during the playback", whose flags reveal stalls and
//!   their durations.
//!
//! We emit and parse the same shapes, so the ground-truth extraction in
//! `vqoe-features`/`vqoe-core` exercises the identical code path the
//! paper used: *parse URIs → recover session grouping, representations
//! and stall history*.

use serde::{Deserialize, Serialize};

/// Parsed parameters of a `/videoplayback` chunk URI.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VideoPlaybackParams {
    /// The 16-character session ID (`cpn` parameter).
    pub session_id: String,
    /// The representation code (`itag` parameter).
    pub itag_code: u32,
    /// MIME top-level type: `"video"` or `"audio"`.
    pub mime: String,
    /// Content length in bytes (`clen`).
    pub clen: u64,
    /// Media duration of the chunk, milliseconds (`dur`).
    pub dur_ms: u64,
    /// Sequence number of the chunk within the session.
    pub sq: u32,
}

/// A cumulative playback statistics report (the `api/stats/playback`
/// ping). Fields mirror what the paper mines: playback state flags and
/// cumulative stall accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaybackReport {
    /// Session ID (`cpn`).
    pub session_id: String,
    /// Playhead position, seconds (`cmt`).
    pub playhead_secs: f64,
    /// Cumulative number of rebuffering events so far (`bc`).
    pub stall_count: u32,
    /// Cumulative stalled time so far, seconds (`bt`).
    pub stall_secs: f64,
    /// Player state: `"playing"`, `"paused"`, `"buffering"`, `"ended"`
    /// (`state`).
    pub state: String,
}

/// Render a `/videoplayback` URI.
pub fn encode_videoplayback(p: &VideoPlaybackParams) -> String {
    format!(
        "/videoplayback?cpn={}&itag={}&mime={}%2Fmp4&clen={}&dur={}.{:03}&sq={}&source=youtube",
        p.session_id,
        p.itag_code,
        p.mime,
        p.clen,
        p.dur_ms / 1000,
        p.dur_ms % 1000,
        p.sq
    )
}

/// Parse a `/videoplayback` URI. Returns `None` for non-chunk URIs or
/// missing/malformed parameters.
pub fn parse_videoplayback(uri: &str) -> Option<VideoPlaybackParams> {
    let query = uri.strip_prefix("/videoplayback?")?;
    let kv = parse_query(query);
    let session_id = kv.get("cpn")?.to_string();
    if session_id.len() != 16 {
        return None;
    }
    let itag_code = kv.get("itag")?.parse().ok()?;
    let mime = kv.get("mime")?.split('%').next()?.to_string();
    let clen = kv.get("clen")?.parse().ok()?;
    let dur_str = kv.get("dur")?;
    let dur_ms = parse_dur_ms(dur_str)?;
    let sq = kv.get("sq")?.parse().ok()?;
    Some(VideoPlaybackParams {
        session_id,
        itag_code,
        mime,
        clen,
        dur_ms,
        sq,
    })
}

/// Render a playback statistics report URI.
pub fn encode_stats_report(r: &PlaybackReport) -> String {
    format!(
        "/api/stats/playback?cpn={}&cmt={:.3}&bc={}&bt={:.3}&state={}&ns=yt",
        r.session_id, r.playhead_secs, r.stall_count, r.stall_secs, r.state
    )
}

/// Parse a playback statistics report URI.
pub fn parse_stats_report(uri: &str) -> Option<PlaybackReport> {
    let query = uri.strip_prefix("/api/stats/playback?")?;
    let kv = parse_query(query);
    Some(PlaybackReport {
        session_id: kv.get("cpn")?.to_string(),
        playhead_secs: kv.get("cmt")?.parse().ok()?,
        stall_count: kv.get("bc")?.parse().ok()?,
        stall_secs: kv.get("bt")?.parse().ok()?,
        state: kv.get("state")?.to_string(),
    })
}

fn parse_query(query: &str) -> std::collections::HashMap<&str, &str> {
    query
        .split('&')
        .filter_map(|pair| {
            let mut it = pair.splitn(2, '=');
            Some((it.next()?, it.next()?))
        })
        .collect()
}

fn parse_dur_ms(s: &str) -> Option<u64> {
    let mut it = s.splitn(2, '.');
    let secs: u64 = it.next()?.parse().ok()?;
    let frac = it.next().unwrap_or("0");
    // Pad/truncate the fraction to milliseconds.
    let frac_ms: u64 = format!("{:0<3}", frac)
        .chars()
        .take(3)
        .collect::<String>()
        .parse()
        .ok()?;
    Some(secs * 1000 + frac_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> VideoPlaybackParams {
        VideoPlaybackParams {
            session_id: "AbCdEfGhIjKlMnOp".to_string(),
            itag_code: 134,
            mime: "video".to_string(),
            clen: 345_678,
            dur_ms: 5_005,
            sq: 7,
        }
    }

    #[test]
    fn videoplayback_roundtrip() {
        let p = params();
        let uri = encode_videoplayback(&p);
        assert!(uri.starts_with("/videoplayback?"));
        assert_eq!(parse_videoplayback(&uri), Some(p));
    }

    #[test]
    fn audio_mime_roundtrips() {
        let mut p = params();
        p.mime = "audio".to_string();
        p.itag_code = 140;
        let back = parse_videoplayback(&encode_videoplayback(&p)).unwrap();
        assert_eq!(back.mime, "audio");
        assert_eq!(back.itag_code, 140);
    }

    #[test]
    fn non_chunk_uris_are_rejected() {
        assert_eq!(parse_videoplayback("/watch?v=abc"), None);
        assert_eq!(parse_videoplayback("/videoplayback?itag=134"), None);
        assert_eq!(
            parse_videoplayback(
                "/videoplayback?cpn=short&itag=1&mime=video%2Fmp4&clen=1&dur=1.0&sq=0"
            ),
            None,
            "session IDs must be 16 chars"
        );
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        let uri =
            "/videoplayback?cpn=AbCdEfGhIjKlMnOp&itag=xx&mime=video%2Fmp4&clen=1&dur=1.0&sq=0";
        assert_eq!(parse_videoplayback(uri), None);
    }

    #[test]
    fn stats_report_roundtrip() {
        let r = PlaybackReport {
            session_id: "AbCdEfGhIjKlMnOp".to_string(),
            playhead_secs: 63.25,
            stall_count: 2,
            stall_secs: 7.5,
            state: "playing".to_string(),
        };
        let uri = encode_stats_report(&r);
        let back = parse_stats_report(&uri).unwrap();
        assert_eq!(back.session_id, r.session_id);
        assert_eq!(back.stall_count, 2);
        assert!((back.stall_secs - 7.5).abs() < 1e-9);
        assert!((back.playhead_secs - 63.25).abs() < 1e-9);
        assert_eq!(back.state, "playing");
    }

    #[test]
    fn stats_parser_rejects_chunk_uris_and_vice_versa() {
        let r = PlaybackReport {
            session_id: "AbCdEfGhIjKlMnOp".to_string(),
            playhead_secs: 1.0,
            stall_count: 0,
            stall_secs: 0.0,
            state: "playing".to_string(),
        };
        assert_eq!(parse_videoplayback(&encode_stats_report(&r)), None);
        assert_eq!(parse_stats_report(&encode_videoplayback(&params())), None);
    }

    #[test]
    fn dur_parsing_handles_fraction_forms() {
        assert_eq!(parse_dur_ms("5.005"), Some(5005));
        assert_eq!(parse_dur_ms("5.5"), Some(5500));
        assert_eq!(parse_dur_ms("5"), Some(5000));
        assert_eq!(parse_dur_ms("abc"), None);
    }

    mod adversarial {
        //! Seeded mutation corpus: the parsers must treat a hostile tap's
        //! damaged URIs as data, not as a crash surface. Every mutation
        //! must yield `Some` or `None` — never a panic — and mutations
        //! that garble a required field must yield `None`.
        use super::*;
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};

        /// Truncate at a random char boundary, shuffle the `&`-separated
        /// pairs, or pad with junk — the three damage shapes the chaos
        /// tap's export-corruption model produces.
        fn mutate(uri: &str, rng: &mut StdRng) -> String {
            match rng.gen_range(0u32..4) {
                0 => {
                    let cut = rng.gen_range(0..=uri.len());
                    let mut end = cut;
                    while end > 0 && !uri.is_char_boundary(end) {
                        end -= 1;
                    }
                    uri[..end].to_string()
                }
                1 => {
                    let (path, query) = uri.split_once('?').unwrap_or((uri, ""));
                    let mut pairs: Vec<&str> = query.split('&').collect();
                    pairs.shuffle(rng);
                    format!("{path}?{}", pairs.join("&"))
                }
                2 => {
                    let junk: String = (0..rng.gen_range(1..40usize))
                        .map(|_| char::from(rng.gen_range(33u8..127)))
                        .collect();
                    format!("{uri}&{junk}")
                }
                _ => {
                    // Garble one required field's value in place.
                    let key = [
                        "cpn=", "itag=", "clen=", "dur=", "sq=", "cmt=", "bc=", "bt=",
                    ][rng.gen_range(0..8usize)];
                    uri.replace(key, &format!("{key}\u{fffd}%%"))
                }
            }
        }

        #[test]
        fn mutated_chunk_uris_never_panic() {
            let mut rng = StdRng::seed_from_u64(2024);
            let clean = encode_videoplayback(&params());
            for _ in 0..2000 {
                let m = mutate(&clean, &mut rng);
                // Must not panic; a `Some` is only legal if the mutation
                // preserved every required field (e.g. a pure reorder).
                let _ = parse_videoplayback(&m);
                let _ = parse_stats_report(&m);
            }
        }

        #[test]
        fn mutated_stats_uris_never_panic() {
            let mut rng = StdRng::seed_from_u64(4048);
            let clean = encode_stats_report(&PlaybackReport {
                session_id: "AbCdEfGhIjKlMnOp".to_string(),
                playhead_secs: 12.5,
                stall_count: 1,
                stall_secs: 3.25,
                state: "buffering".to_string(),
            });
            for _ in 0..2000 {
                let m = mutate(&clean, &mut rng);
                let _ = parse_stats_report(&m);
                let _ = parse_videoplayback(&m);
            }
        }

        #[test]
        fn garbled_required_fields_are_rejected() {
            let clean = encode_videoplayback(&params());
            for key in ["cpn=", "itag=", "clen=", "dur=", "sq="] {
                let garbled = clean.replace(key, &format!("{key}\u{fffd}%%"));
                assert_eq!(parse_videoplayback(&garbled), None, "key {key}");
            }
        }

        #[test]
        fn truncation_inside_the_query_is_rejected() {
            let clean = encode_videoplayback(&params());
            // Any cut that loses the trailing required params must fail.
            for end in "/videoplayback?cpn=".len()..clean.find("&sq=").unwrap() {
                if !clean.is_char_boundary(end) {
                    continue;
                }
                assert_eq!(parse_videoplayback(&clean[..end]), None, "cut at {end}");
            }
        }

        #[test]
        fn pure_pair_reordering_still_decodes() {
            // Reordering query pairs damages nothing: the codec is a map.
            let p = params();
            let uri = format!(
                "/videoplayback?sq={}&dur={}.{:03}&clen={}&mime={}%2Fmp4&itag={}&cpn={}",
                p.sq,
                p.dur_ms / 1000,
                p.dur_ms % 1000,
                p.clen,
                p.mime,
                p.itag_code,
                p.session_id
            );
            assert_eq!(parse_videoplayback(&uri), Some(p));
        }

        #[test]
        fn junk_padding_is_ignored_not_fatal() {
            let clean = encode_videoplayback(&params());
            let padded = format!("{clean}&&&=&x&&junk==%%&\u{fffd}=\u{fffd}");
            assert_eq!(parse_videoplayback(&padded), Some(params()));
        }
    }

    proptest! {
        #[test]
        fn prop_videoplayback_roundtrip(
            itag in 1u32..400,
            clen in 1u64..100_000_000,
            dur_ms in 0u64..600_000,
            sq in 0u32..10_000,
            audio in proptest::bool::ANY,
        ) {
            let p = VideoPlaybackParams {
                session_id: "0123456789abcdef".to_string(),
                itag_code: itag,
                mime: if audio { "audio" } else { "video" }.to_string(),
                clen,
                dur_ms,
                sq,
            };
            prop_assert_eq!(parse_videoplayback(&encode_videoplayback(&p)), Some(p));
        }

        #[test]
        fn prop_stats_roundtrip(
            playhead in 0.0f64..10_000.0,
            bc in 0u32..100,
            bt in 0.0f64..1_000.0,
        ) {
            let r = PlaybackReport {
                session_id: "0123456789abcdef".to_string(),
                playhead_secs: playhead,
                stall_count: bc,
                stall_secs: bt,
                state: "buffering".to_string(),
            };
            let back = parse_stats_report(&encode_stats_report(&r)).unwrap();
            prop_assert_eq!(back.stall_count, bc);
            prop_assert!((back.stall_secs - bt).abs() < 1e-3);
            prop_assert!((back.playhead_secs - playhead).abs() < 1e-3);
        }
    }
}
