//! Ground-truth extraction from cleartext weblogs (§3.2).
//!
//! This is the paper's actual training-data path: nobody hands the
//! operator playback logs — they are *reverse engineered from request
//! URIs*. Per session (grouped by the 16-character `cpn` session ID):
//!
//! * the per-chunk `itag` parameters give the representation sequence
//!   ("which we use to obtain the ground truth for the changes in
//!   representation quality throughout the session");
//! * the periodic playback statistics reports carry cumulative stall
//!   counts and durations plus the player state, so the last report
//!   reveals "if a video was played throughout or abandoned and ...
//!   the frequency and duration of stalls".
//!
//! The result intentionally contains *only* what the URIs expose — it is
//! the cleartext counterpart of the instrumented-handset logs of §5.1.

use crate::uri;
use crate::weblog::WeblogEntry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vqoe_player::{ContentType, Itag};
use vqoe_simnet::time::Instant;

/// One chunk recovered from a cleartext `videoplayback` URI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedChunk {
    /// Request timestamp.
    pub timestamp: Instant,
    /// Last-byte arrival.
    pub arrival: Instant,
    /// Object size (from `clen`, cross-checkable against the logged
    /// transfer size).
    pub bytes: u64,
    /// Audio or video.
    pub content_type: ContentType,
    /// Representation (video chunks only).
    pub itag: Option<Itag>,
    /// Sequence number within the session.
    pub sq: u32,
}

/// Everything §3.2 recovers about one session from URIs alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedSession {
    /// The 16-character session ID.
    pub session_id: String,
    /// Chunks in request order.
    pub chunks: Vec<ExtractedChunk>,
    /// Total stall count from the final statistics report.
    pub stall_count: u32,
    /// Total stalled seconds from the final statistics report.
    pub stall_secs: f64,
    /// Player state in the final report (`"ended"`, `"paused"`, ...).
    pub final_state: String,
    /// Playhead position at the final report (seconds of media played).
    pub playhead_secs: f64,
}

impl ExtractedSession {
    /// Video-chunk resolution sequence, in playback (sq) order.
    pub fn resolution_sequence(&self) -> Vec<u32> {
        self.chunks
            .iter()
            .filter(|c| c.content_type == ContentType::Video)
            .filter_map(|c| c.itag.map(|i| i.resolution()))
            .collect()
    }

    /// Mean video resolution μ (the §4.2 labelling input).
    pub fn avg_resolution(&self) -> f64 {
        let seq = self.resolution_sequence();
        if seq.is_empty() {
            return 0.0;
        }
        seq.iter().map(|&r| r as f64).sum::<f64>() / seq.len() as f64
    }

    /// Rebuffering Ratio from the report totals (eq. 1): stalled time
    /// over played + stalled time.
    pub fn rebuffering_ratio(&self) -> f64 {
        let denom = self.playhead_secs + self.stall_secs;
        if denom <= 0.0 {
            return if self.stall_count > 0 { 1.0 } else { 0.0 };
        }
        self.stall_secs / denom
    }

    /// Whether the viewer abandoned the video (final state not "ended").
    pub fn abandoned(&self) -> bool {
        self.final_state != "ended"
    }
}

/// Extract all sessions from a cleartext weblog stream. Entries without
/// URIs (encrypted) or with unparseable paths are skipped; sessions are
/// returned in order of first appearance.
pub fn extract_sessions(entries: &[WeblogEntry]) -> Vec<ExtractedSession> {
    let mut order: Vec<String> = Vec::new();
    let mut sessions: HashMap<String, ExtractedSession> = HashMap::new();
    let mut last_report_ts: HashMap<String, Instant> = HashMap::new();

    for e in entries {
        let Some(uri_str) = e.uri.as_deref() else {
            continue;
        };
        if let Some(p) = uri::parse_videoplayback(uri_str) {
            let session = sessions.entry(p.session_id.clone()).or_insert_with(|| {
                order.push(p.session_id.clone());
                ExtractedSession {
                    session_id: p.session_id.clone(),
                    chunks: Vec::new(),
                    stall_count: 0,
                    stall_secs: 0.0,
                    final_state: String::new(),
                    playhead_secs: 0.0,
                }
            });
            session.chunks.push(ExtractedChunk {
                timestamp: e.timestamp,
                arrival: e.arrival_time(),
                bytes: p.clen,
                content_type: if p.mime == "audio" {
                    ContentType::Audio
                } else {
                    ContentType::Video
                },
                itag: Itag::from_itag_code(p.itag_code),
                sq: p.sq,
            });
        } else if let Some(r) = uri::parse_stats_report(uri_str) {
            let session = sessions.entry(r.session_id.clone()).or_insert_with(|| {
                order.push(r.session_id.clone());
                ExtractedSession {
                    session_id: r.session_id.clone(),
                    chunks: Vec::new(),
                    stall_count: 0,
                    stall_secs: 0.0,
                    final_state: String::new(),
                    playhead_secs: 0.0,
                }
            });
            // Reports are cumulative: keep the latest by timestamp.
            let is_newer = last_report_ts
                .get(&r.session_id)
                .map_or(true, |&t| e.timestamp >= t);
            if is_newer {
                last_report_ts.insert(r.session_id.clone(), e.timestamp);
                session.stall_count = r.stall_count;
                session.stall_secs = r.stall_secs;
                session.final_state = r.state.clone();
                session.playhead_secs = r.playhead_secs;
            }
        }
    }

    let mut out: Vec<ExtractedSession> = Vec::with_capacity(order.len());
    for id in order {
        // Every id in `order` was inserted into `sessions` alongside it.
        if let Some(mut s) = sessions.remove(&id) {
            s.chunks.sort_by_key(|c| (c.timestamp, c.sq));
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_session, CaptureConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vqoe_player::{simulate_session, AbrKind, Delivery, SessionConfig};
    use vqoe_simnet::channel::Scenario;
    use vqoe_simnet::rng::SeedSequence;

    fn captured(idx: u64, scenario: Scenario) -> (vqoe_player::SessionTrace, Vec<WeblogEntry>) {
        let seeds = SeedSequence::new(808);
        let trace = simulate_session(
            &SessionConfig {
                session_index: idx,
                scenario,
                delivery: Delivery::Dash(AbrKind::Hybrid),
                start_time: Instant::from_secs(30),
                profile: Default::default(),
            },
            &seeds,
        );
        let mut rng = StdRng::seed_from_u64(idx);
        let entries = capture_session(
            &trace,
            &CaptureConfig {
                encrypted: false,
                subscriber_id: 9,
            },
            &mut rng,
        )
        .expect("simulated traces always capture");
        (trace, entries)
    }

    #[test]
    fn extraction_recovers_the_session_id_and_chunks() {
        let (trace, entries) = captured(0, Scenario::StaticHome);
        let sessions = extract_sessions(&entries);
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.session_id, trace.session_id);
        assert_eq!(s.chunks.len(), trace.chunks.len());
    }

    #[test]
    fn extraction_recovers_the_resolution_sequence() {
        let (trace, entries) = captured(1, Scenario::StaticHome);
        let s = &extract_sessions(&entries)[0];
        assert_eq!(
            s.resolution_sequence(),
            trace.ground_truth.segment_resolutions
        );
        assert!((s.avg_resolution() - trace.ground_truth.avg_resolution()).abs() < 1e-9);
    }

    #[test]
    fn extraction_recovers_stall_totals() {
        // Scan commuting sessions until one stalls, then check totals.
        for idx in 0..40 {
            let (trace, entries) = captured(idx, Scenario::Commuting);
            let s = &extract_sessions(&entries)[0];
            assert_eq!(s.stall_count as usize, trace.ground_truth.stall_count());
            assert!(
                (s.stall_secs - trace.ground_truth.total_stall_time().as_secs_f64()).abs() < 1e-3
            );
            if trace.ground_truth.stall_count() > 0 {
                assert!(s.rebuffering_ratio() > 0.0);
                return;
            }
        }
        panic!("no stalled commuting session in 40 tries");
    }

    #[test]
    fn abandonment_flag_follows_final_state() {
        for idx in 0..60 {
            let (trace, entries) = captured(idx, Scenario::Commuting);
            let s = &extract_sessions(&entries)[0];
            assert_eq!(s.abandoned(), trace.ground_truth.abandoned);
            if trace.ground_truth.abandoned {
                return;
            }
        }
        // Acceptable: abandonment may be rare at this sample size.
    }

    #[test]
    fn multiple_interleaved_sessions_are_separated() {
        let (t1, mut e1) = captured(10, Scenario::StaticHome);
        let (t2, e2) = captured(11, Scenario::StaticHome);
        e1.extend(e2);
        e1.sort_by_key(|e| e.timestamp);
        let sessions = extract_sessions(&e1);
        assert_eq!(sessions.len(), 2);
        let ids: Vec<&str> = sessions.iter().map(|s| s.session_id.as_str()).collect();
        assert!(ids.contains(&t1.session_id.as_str()));
        assert!(ids.contains(&t2.session_id.as_str()));
        for s in &sessions {
            let expected = if s.session_id == t1.session_id {
                &t1
            } else {
                &t2
            };
            assert_eq!(s.chunks.len(), expected.chunks.len());
        }
    }

    #[test]
    fn encrypted_entries_yield_nothing() {
        let seeds = SeedSequence::new(808);
        let trace = simulate_session(
            &SessionConfig {
                session_index: 0,
                scenario: Scenario::StaticHome,
                delivery: Delivery::Dash(AbrKind::Hybrid),
                start_time: Instant::from_secs(30),
                profile: Default::default(),
            },
            &seeds,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let entries = capture_session(
            &trace,
            &CaptureConfig {
                encrypted: true,
                subscriber_id: 9,
            },
            &mut rng,
        )
        .expect("simulated traces always capture");
        assert!(extract_sessions(&entries).is_empty());
    }
}
