//! Graceful degradation for hostile weblog streams.
//!
//! [`crate::reassembly::StreamReassembler`] implements the paper's §5.2
//! session-recovery procedure under the lab assumption that entries
//! arrive per subscriber in timestamp order and well-formed. A real
//! operator tap (see [`crate::chaos`] for the fault model) breaks both
//! assumptions. This module wraps the state machine in a
//! [`RobustReassembler`] that:
//!
//! * **quarantines** malformed entries into a typed, bounded
//!   [`AnomalyLog`] instead of letting them skew features;
//! * **re-sorts** entries inside a configurable out-of-order window and
//!   quarantines anything that arrives later than the window allows;
//! * **suppresses exact duplicates** against both the in-window buffer
//!   and a short memory of recently released records;
//! * reports everything it did through shared [`StreamHealth`]
//!   counters, so the online assessor and the CLI can surface how much
//!   the tap degraded.
//!
//! The key invariant, checked by the integration tests in `vqoe-core`:
//! on a **clean** stream the wrapper is a bit-identical no-op — every
//! threshold is chosen so that simulator output never trips it, and the
//! reorder buffer preserves arrival order for already-ordered input.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use vqoe_simnet::time::{Duration, Instant};

use crate::reassembly::{
    ReassembledSession, ReassemblyConfig, StreamReassembler, StreamReassemblerState,
};
use crate::weblog::WeblogEntry;

/// Tunables for the graceful-degradation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Entries older than the subscriber's newest timestamp by more
    /// than this are quarantined as [`AnomalyKind::LateArrival`];
    /// everything younger is re-sorted transparently.
    pub reorder_window: Duration,
    /// How many recently released entries to remember for duplicate
    /// suppression (exact-record matches).
    pub dedup_depth: usize,
    /// Hard cap on concurrently tracked subscribers; the online
    /// assessor evicts the least-recently-active one beyond this.
    pub max_open_subscribers: usize,
    /// Objects larger than this are quarantined as corrupt
    /// ([`AnomalyKind::OversizedObject`]).
    pub max_object_bytes: u64,
    /// Transactions longer than this are quarantined as corrupt
    /// ([`AnomalyKind::OverlongTransaction`]).
    pub max_transaction_duration: Duration,
    /// How many individual anomalies the [`AnomalyLog`] retains (the
    /// total count is always exact).
    pub max_anomalies_kept: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            reorder_window: Duration::from_secs(5),
            dedup_depth: 32,
            max_open_subscribers: 65_536,
            // Far above anything the capture layer produces (chunks top
            // out well under 1 GB), far below corruption sentinels.
            max_object_bytes: 100 * 1024 * 1024 * 1024,
            max_transaction_duration: Duration::from_secs(3600),
            max_anomalies_kept: 1024,
        }
    }
}

/// Why an entry was quarantined instead of entering reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// The hostname was empty (truncated export record).
    EmptyHost,
    /// The object size exceeded [`IngestConfig::max_object_bytes`].
    OversizedObject,
    /// A zero-byte object, which no capture path produces.
    ZeroSizedObject,
    /// The transaction outlived
    /// [`IngestConfig::max_transaction_duration`].
    OverlongTransaction,
    /// The entry arrived later than the out-of-order window tolerates.
    LateArrival,
}

/// One quarantined entry: who, when, why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestAnomaly {
    /// Subscriber the entry claimed to belong to.
    pub subscriber_id: u64,
    /// The entry's (possibly skewed) request timestamp.
    pub timestamp: Instant,
    /// Classification of the fault.
    pub kind: AnomalyKind,
}

/// Exact per-[`AnomalyKind`] quarantine counts. Unlike the bounded
/// record list in [`AnomalyLog`], these are plain monotone counters and
/// survive the retention cap, so observability layers can report the
/// full kind distribution of a fault storm. Counts merge by summation
/// (see [`AnomalyKindCounts::absorb`]), which makes them deterministic
/// under any parallel reduction order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyKindCounts {
    /// [`AnomalyKind::EmptyHost`] quarantines.
    pub empty_host: u64,
    /// [`AnomalyKind::OversizedObject`] quarantines.
    pub oversized_object: u64,
    /// [`AnomalyKind::ZeroSizedObject`] quarantines.
    pub zero_sized_object: u64,
    /// [`AnomalyKind::OverlongTransaction`] quarantines.
    pub overlong_transaction: u64,
    /// [`AnomalyKind::LateArrival`] quarantines.
    pub late_arrival: u64,
}

impl AnomalyKindCounts {
    /// Count one anomaly of the given kind.
    pub fn record(&mut self, kind: AnomalyKind) {
        match kind {
            AnomalyKind::EmptyHost => self.empty_host += 1,
            AnomalyKind::OversizedObject => self.oversized_object += 1,
            AnomalyKind::ZeroSizedObject => self.zero_sized_object += 1,
            AnomalyKind::OverlongTransaction => self.overlong_transaction += 1,
            AnomalyKind::LateArrival => self.late_arrival += 1,
        }
    }

    /// The count for one kind.
    pub fn of(&self, kind: AnomalyKind) -> u64 {
        match kind {
            AnomalyKind::EmptyHost => self.empty_host,
            AnomalyKind::OversizedObject => self.oversized_object,
            AnomalyKind::ZeroSizedObject => self.zero_sized_object,
            AnomalyKind::OverlongTransaction => self.overlong_transaction,
            AnomalyKind::LateArrival => self.late_arrival,
        }
    }

    /// Sum across all kinds.
    pub fn total(&self) -> u64 {
        self.empty_host
            + self.oversized_object
            + self.zero_sized_object
            + self.overlong_transaction
            + self.late_arrival
    }

    /// Fold another count set into this one (monotone sums).
    pub fn absorb(&mut self, other: &AnomalyKindCounts) {
        self.empty_host += other.empty_host;
        self.oversized_object += other.oversized_object;
        self.zero_sized_object += other.zero_sized_object;
        self.overlong_transaction += other.overlong_transaction;
        self.late_arrival += other.late_arrival;
    }
}

/// A bounded quarantine log: keeps the first
/// [`IngestConfig::max_anomalies_kept`] anomalies verbatim, an exact
/// total count beyond that, and exact per-kind counts, so a fault storm
/// cannot balloon memory yet still reports its full distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyLog {
    kept: Vec<IngestAnomaly>,
    total: u64,
    cap: usize,
    kinds: AnomalyKindCounts,
}

impl AnomalyLog {
    /// Empty log retaining at most `cap` individual records.
    pub fn new(cap: usize) -> Self {
        AnomalyLog {
            kept: Vec::new(),
            total: 0,
            cap,
            kinds: AnomalyKindCounts::default(),
        }
    }

    /// Record one anomaly (always counted, kept only under the cap).
    pub fn record(&mut self, a: IngestAnomaly) {
        self.total += 1;
        self.kinds.record(a.kind);
        if self.kept.len() < self.cap {
            self.kept.push(a);
        }
    }

    /// Rebuild a log from an already-merged record list, an exact
    /// total, and summed per-kind counts. Used by parallel reducers
    /// that merge several per-shard logs into the record order a
    /// sequential run would have produced; `kept` is truncated to
    /// `cap`, `total` and `kinds` are taken as-is.
    pub fn from_parts(
        cap: usize,
        mut kept: Vec<IngestAnomaly>,
        total: u64,
        kinds: AnomalyKindCounts,
    ) -> Self {
        kept.truncate(cap);
        AnomalyLog {
            kept,
            total,
            cap,
            kinds,
        }
    }

    /// The retention cap this log was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The retained anomaly records, oldest first.
    pub fn kept(&self) -> &[IngestAnomaly] {
        &self.kept
    }

    /// Exact number of anomalies ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact per-kind counts (not subject to the retention cap).
    pub fn kinds(&self) -> AnomalyKindCounts {
        self.kinds
    }
}

/// Monotone counters describing what the degradation layer absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamHealth {
    /// Entries offered to the assessor (including noise and faults).
    pub entries_seen: u64,
    /// Entries admitted out of timestamp order and re-sorted.
    pub entries_reordered: u64,
    /// Exact duplicate records suppressed.
    pub entries_duplicated: u64,
    /// Entries quarantined into the [`AnomalyLog`].
    pub entries_quarantined: u64,
    /// Idle subscribers evicted to enforce the memory cap.
    pub sessions_evicted: u64,
    /// Sessions assessed from an evicted (force-closed) stream.
    pub sessions_partial: u64,
    /// Subscribers force-finalized to satisfy a memory *budget* (bytes),
    /// as opposed to the subscriber-count cap behind `sessions_evicted`.
    pub sessions_shed: u64,
    /// New subscribers refused admission because the global memory
    /// budget was already exhausted (their entries are never tracked).
    pub subscribers_refused: u64,
}

impl StreamHealth {
    /// Fold another counter set into this one. Every counter is a
    /// monotone sum, so per-shard healths merge into exactly the
    /// numbers a sequential run over the union stream would report.
    pub fn absorb(&mut self, other: &StreamHealth) {
        self.entries_seen += other.entries_seen;
        self.entries_reordered += other.entries_reordered;
        self.entries_duplicated += other.entries_duplicated;
        self.entries_quarantined += other.entries_quarantined;
        self.sessions_evicted += other.sessions_evicted;
        self.sessions_partial += other.sessions_partial;
        self.sessions_shed += other.sessions_shed;
        self.subscribers_refused += other.subscribers_refused;
    }

    /// Sum of all counters — a cheap monotonicity witness for tests.
    pub fn total_events(&self) -> u64 {
        self.entries_seen
            + self.entries_reordered
            + self.entries_duplicated
            + self.entries_quarantined
            + self.sessions_evicted
            + self.sessions_partial
            + self.sessions_shed
            + self.subscribers_refused
    }
}

/// Structural validation of a single entry against the fault model.
/// Returns the reason to quarantine it, or `None` if it is admissible.
/// Thresholds are deliberately far outside anything the capture layer
/// emits, so clean streams are never touched.
pub fn validate_entry(e: &WeblogEntry, cfg: &IngestConfig) -> Option<AnomalyKind> {
    if e.host.is_empty() {
        Some(AnomalyKind::EmptyHost)
    } else if e.bytes == 0 {
        Some(AnomalyKind::ZeroSizedObject)
    } else if e.bytes > cfg.max_object_bytes {
        Some(AnomalyKind::OversizedObject)
    } else if e.duration > cfg.max_transaction_duration {
        Some(AnomalyKind::OverlongTransaction)
    } else {
        None
    }
}

/// [`StreamReassembler`] hardened for hostile input: validates,
/// deduplicates and re-sorts entries before they reach the §5.2 state
/// machine, which continues to require (and now provably receives)
/// per-subscriber timestamp order.
#[derive(Debug, Clone)]
pub struct RobustReassembler {
    cfg: IngestConfig,
    inner: StreamReassembler,
    reassembly: ReassemblyConfig,
    /// In-window entries, sorted by timestamp, not yet released.
    pending: VecDeque<WeblogEntry>,
    /// Recently released entries, for exact-duplicate suppression.
    recent: VecDeque<WeblogEntry>,
    /// Newest timestamp seen from this subscriber.
    watermark: Option<Instant>,
    /// Deterministic cost of `pending` + `recent` (sum of
    /// [`WeblogEntry::tracked_cost`]), maintained incrementally so
    /// [`RobustReassembler::tracked_cost`] is O(1).
    buffered_cost: u64,
}

/// Serializable snapshot of one subscriber's [`RobustReassembler`]: the
/// reorder buffer, the dedup memory, the open session group, and both
/// configurations. Buffers are `Vec`-shaped (front first) so the whole
/// struct round-trips through the workspace's hand-rolled JSON layer;
/// derived cost counters are recomputed on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReassemblerState {
    /// Ingest hardening tunables in effect.
    pub cfg: IngestConfig,
    /// Reassembly tunables in effect.
    pub reassembly: ReassemblyConfig,
    /// The wrapped §5.2 state machine.
    pub inner: StreamReassemblerState,
    /// The reorder buffer, sorted by timestamp (front first).
    pub pending: Vec<WeblogEntry>,
    /// The dedup memory, oldest released entry first.
    pub recent: Vec<WeblogEntry>,
    /// Newest timestamp seen from this subscriber.
    pub watermark: Option<Instant>,
}

impl RobustReassembler {
    /// Fresh hardened reassembler for one subscriber.
    pub fn new(reassembly: ReassemblyConfig, cfg: IngestConfig) -> Self {
        RobustReassembler {
            cfg,
            inner: StreamReassembler::new(reassembly),
            reassembly,
            pending: VecDeque::new(),
            recent: VecDeque::new(),
            watermark: None,
            buffered_cost: 0,
        }
    }

    /// Snapshot the full per-subscriber state for checkpointing.
    pub fn to_state(&self) -> ReassemblerState {
        ReassemblerState {
            cfg: self.cfg,
            reassembly: self.reassembly,
            inner: self.inner.to_state(),
            pending: self.pending.iter().cloned().collect(),
            recent: self.recent.iter().cloned().collect(),
            watermark: self.watermark,
        }
    }

    /// Rebuild a reassembler from a snapshot, recomputing cost counters.
    pub fn from_state(state: ReassemblerState) -> Self {
        let buffered_cost = state
            .pending
            .iter()
            .chain(state.recent.iter())
            .map(|e| e.tracked_cost())
            .sum();
        RobustReassembler {
            cfg: state.cfg,
            reassembly: state.reassembly,
            inner: StreamReassembler::from_state(state.inner),
            pending: state.pending.into(),
            recent: state.recent.into(),
            watermark: state.watermark,
            buffered_cost,
        }
    }

    /// Attach a streaming receiver for entries past the exactness cap
    /// (see [`crate::reassembly::SpillSink`]); forwarded to the inner
    /// boundary machine.
    pub fn with_spill(mut self, sink: Box<dyn crate::reassembly::SpillSink>) -> Self {
        self.inner.attach_spill(sink);
        self
    }

    /// In-place form of [`RobustReassembler::with_spill`].
    pub fn attach_spill(&mut self, sink: Box<dyn crate::reassembly::SpillSink>) {
        self.inner.attach_spill(sink);
    }

    /// Mutable access to the attached spill sink (the sketched
    /// assessment path downcasts it to claim sealed digests).
    pub fn spill_sink_mut(&mut self) -> Option<&mut (dyn crate::reassembly::SpillSink + '_)> {
        self.inner.spill_sink_mut()
    }

    /// Newest timestamp seen (the subscriber's activity clock; drives
    /// LRU eviction in the online assessor).
    pub fn watermark(&self) -> Option<Instant> {
        self.watermark
    }

    /// Entries currently buffered (reorder window + open session group).
    pub fn open_entries(&self) -> usize {
        self.inner.open_entries() + self.pending.len()
    }

    /// Deterministic memory cost of everything buffered for this
    /// subscriber: reorder buffer + dedup memory + open session group,
    /// in [`WeblogEntry::tracked_cost`] units. This is the quantity the
    /// online assessor's memory budgets account.
    pub fn tracked_cost(&self) -> u64 {
        self.buffered_cost + self.inner.buffered_cost()
    }

    /// Feed one entry in arrival order. Completed sessions (possibly
    /// several, when releasing buffered entries crosses boundaries) are
    /// returned; faults are recorded in `health` / `anomalies`.
    pub fn push(
        &mut self,
        e: &WeblogEntry,
        health: &mut StreamHealth,
        anomalies: &mut AnomalyLog,
    ) -> Vec<ReassembledSession> {
        if let Some(kind) = validate_entry(e, &self.cfg) {
            health.entries_quarantined += 1;
            anomalies.record(IngestAnomaly {
                subscriber_id: e.subscriber_id,
                timestamp: e.timestamp,
                kind,
            });
            return Vec::new();
        }
        if !e.is_service_host() {
            // The paper's step-1 domain filter: noise never buffers.
            return Vec::new();
        }
        if self.pending.iter().any(|p| p == e) || self.recent.iter().any(|p| p == e) {
            health.entries_duplicated += 1;
            return Vec::new();
        }
        if let Some(w) = self.watermark {
            if w.duration_since(e.timestamp) > self.cfg.reorder_window {
                health.entries_quarantined += 1;
                anomalies.record(IngestAnomaly {
                    subscriber_id: e.subscriber_id,
                    timestamp: e.timestamp,
                    kind: AnomalyKind::LateArrival,
                });
                return Vec::new();
            }
        }
        // Sorted insert; arriving behind any buffered entry means the
        // tap delivered out of order.
        let pos = self.pending.partition_point(|p| p.timestamp <= e.timestamp);
        if pos < self.pending.len() {
            health.entries_reordered += 1;
        }
        self.buffered_cost += e.tracked_cost();
        self.pending.insert(pos, e.clone());
        self.watermark = Some(self.watermark.map_or(e.timestamp, |w| w.max(e.timestamp)));
        self.release()
    }

    /// Release every buffered entry whose lateness bound has expired —
    /// a later record can no longer legally sort before it.
    fn release(&mut self) -> Vec<ReassembledSession> {
        let mut done = Vec::new();
        let Some(w) = self.watermark else {
            return done;
        };
        // Strictly-greater mirrors the LateArrival test: an entry still
        // admissible could still legally sort before the buffer front.
        while self
            .pending
            .front()
            .is_some_and(|front| w.duration_since(front.timestamp) > self.cfg.reorder_window)
        {
            if let Some(e) = self.pending.pop_front() {
                self.buffered_cost = self.buffered_cost.saturating_sub(e.tracked_cost());
                done.extend(self.feed_inner(&e));
            }
        }
        done
    }

    fn feed_inner(&mut self, e: &WeblogEntry) -> Vec<ReassembledSession> {
        self.buffered_cost += e.tracked_cost();
        self.recent.push_back(e.clone());
        while self.recent.len() > self.cfg.dedup_depth {
            if let Some(old) = self.recent.pop_front() {
                self.buffered_cost = self.buffered_cost.saturating_sub(old.tracked_cost());
            }
        }
        self.inner.push(e).into_iter().collect()
    }

    /// Drain the reorder buffer and close the stream, emitting any
    /// final session. Leaves the reassembler empty and fully reusable
    /// (the online assessor calls this on eviction).
    pub fn flush(&mut self) -> Vec<ReassembledSession> {
        let mut done = Vec::new();
        while let Some(e) = self.pending.pop_front() {
            self.buffered_cost = self.buffered_cost.saturating_sub(e.tracked_cost());
            done.extend(self.feed_inner(&e));
        }
        // In place (not a machine swap): the attached spill sink — and
        // any sealed digests not yet claimed by the assessor — must
        // survive the flush.
        done.extend(self.inner.finish_in_place());
        self.recent.clear();
        self.watermark = None;
        self.buffered_cost = 0;
        done
    }

    /// Close the stream for good (the graceful end-of-input path).
    pub fn finish(mut self) -> Vec<ReassembledSession> {
        self.flush()
    }
}

/// Batch form of [`RobustReassembler`]: run one subscriber's entries
/// (in arrival order) through the hardened pipeline and report the
/// recovered sessions alongside the health counters and quarantine log.
pub fn robust_reassemble_subscriber(
    entries: &[WeblogEntry],
    reassembly: &ReassemblyConfig,
    cfg: &IngestConfig,
) -> (Vec<ReassembledSession>, StreamHealth, AnomalyLog) {
    let mut health = StreamHealth::default();
    let mut anomalies = AnomalyLog::new(cfg.max_anomalies_kept);
    let mut machine = RobustReassembler::new(*reassembly, *cfg);
    let mut sessions = Vec::new();
    for e in entries {
        health.entries_seen += 1;
        sessions.extend(machine.push(e, &mut health, &mut anomalies));
    }
    sessions.extend(machine.finish());
    (sessions, health, anomalies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_session, generate_noise, CaptureConfig};
    use crate::chaos::{apply_chaos, ChaosConfig};
    use crate::reassembly::reassemble_subscriber;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vqoe_player::{simulate_session, AbrKind, Delivery, SessionConfig};
    use vqoe_simnet::channel::Scenario;
    use vqoe_simnet::rng::SeedSequence;

    fn subscriber_stream(n: usize) -> Vec<WeblogEntry> {
        let seeds = SeedSequence::new(99);
        let mut rng = StdRng::seed_from_u64(4);
        let mut entries = Vec::new();
        let mut t0 = Instant::from_secs(50);
        for i in 0..n {
            let trace = simulate_session(
                &SessionConfig {
                    session_index: i as u64,
                    scenario: Scenario::StaticHome,
                    delivery: Delivery::Dash(AbrKind::Hybrid),
                    start_time: t0,
                    profile: Default::default(),
                },
                &seeds,
            );
            entries.extend(
                capture_session(
                    &trace,
                    &CaptureConfig {
                        encrypted: true,
                        subscriber_id: 3,
                    },
                    &mut rng,
                )
                .expect("simulated traces always capture"),
            );
            t0 = trace.ground_truth.session_end + Duration::from_secs(90);
        }
        entries.extend(generate_noise(3, Instant::ZERO, t0, 60, &mut rng));
        entries.sort_by_key(|e| e.timestamp);
        entries
    }

    #[test]
    fn clean_stream_matches_plain_reassembly_exactly() {
        let entries = subscriber_stream(4);
        let plain = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        let (robust, health, anomalies) = robust_reassemble_subscriber(
            &entries,
            &ReassemblyConfig::default(),
            &IngestConfig::default(),
        );
        assert_eq!(robust, plain, "robust layer must be a no-op on clean input");
        assert_eq!(health.entries_seen, entries.len() as u64);
        assert_eq!(health.entries_reordered, 0);
        assert_eq!(health.entries_duplicated, 0);
        assert_eq!(health.entries_quarantined, 0);
        assert_eq!(anomalies.total(), 0);
    }

    #[test]
    fn in_window_reordering_is_repaired() {
        let entries = subscriber_stream(3);
        let plain = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        let cfg = ChaosConfig {
            reorder: 0.3,
            reorder_window: 4,
            ..ChaosConfig::clean()
        };
        let (shuffled, stats) = apply_chaos(&entries, &cfg, 21);
        assert!(stats.reordered > 0);
        // The chaos displacement is positional; across a 90 s
        // inter-session gap that can mean minutes of lateness, so the
        // repair window must cover the tap's real time skew.
        let ingest = IngestConfig {
            reorder_window: Duration::from_secs(600),
            ..IngestConfig::default()
        };
        let (robust, health, anomalies) =
            robust_reassemble_subscriber(&shuffled, &ReassemblyConfig::default(), &ingest);
        assert_eq!(robust, plain, "bounded reordering must be fully repaired");
        assert!(health.entries_reordered > 0);
        assert_eq!(anomalies.total(), 0);
    }

    #[test]
    fn exact_duplicates_are_suppressed() {
        // Service entries only: duplicated *noise* is filtered before
        // the dedup check, so the counters would not line up otherwise.
        let entries: Vec<WeblogEntry> = subscriber_stream(2)
            .into_iter()
            .filter(|e| e.is_service_host())
            .collect();
        let plain = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        let cfg = ChaosConfig {
            duplicate: 0.5,
            ..ChaosConfig::clean()
        };
        let (doubled, stats) = apply_chaos(&entries, &cfg, 22);
        let (robust, health, _) = robust_reassemble_subscriber(
            &doubled,
            &ReassemblyConfig::default(),
            &IngestConfig::default(),
        );
        assert_eq!(robust, plain, "duplicates must not change sessions");
        assert_eq!(health.entries_duplicated, stats.duplicated);
    }

    #[test]
    fn malformed_entries_are_quarantined_not_ingested() {
        let mut entries = subscriber_stream(1);
        let mut bad = entries[0].clone();
        bad.host.clear();
        let mut huge = entries[1].clone();
        huge.bytes = u64::MAX;
        let mut slow = entries[2].clone();
        slow.duration = Duration::from_secs(48 * 3600);
        entries.extend([bad, huge, slow]);
        entries.sort_by_key(|e| e.timestamp);
        let (sessions, health, anomalies) = robust_reassemble_subscriber(
            &entries,
            &ReassemblyConfig::default(),
            &IngestConfig::default(),
        );
        assert_eq!(health.entries_quarantined, 3);
        assert_eq!(anomalies.total(), 3);
        let kinds: Vec<AnomalyKind> = anomalies.kept().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AnomalyKind::EmptyHost));
        assert!(kinds.contains(&AnomalyKind::OversizedObject));
        assert!(kinds.contains(&AnomalyKind::OverlongTransaction));
        for s in &sessions {
            assert!(s
                .chunks
                .iter()
                .all(|c| validate_entry(c, &IngestConfig::default()).is_none()));
            assert!(s
                .other
                .iter()
                .all(|c| validate_entry(c, &IngestConfig::default()).is_none()));
        }
    }

    #[test]
    fn entries_beyond_the_window_become_late_arrivals() {
        let entries = subscriber_stream(1);
        let mid = entries.len() / 2;
        let mut reordered: Vec<WeblogEntry> = entries.clone();
        // Move an early media entry to the very end of the stream: it
        // arrives minutes late, far outside the 5 s window.
        let straggler = reordered.remove(mid);
        reordered.push(straggler);
        let (_, health, anomalies) = robust_reassemble_subscriber(
            &reordered,
            &ReassemblyConfig::default(),
            &IngestConfig::default(),
        );
        assert_eq!(health.entries_quarantined, 1);
        assert_eq!(anomalies.kept()[0].kind, AnomalyKind::LateArrival);
    }

    #[test]
    fn anomaly_log_is_bounded_but_counts_exactly() {
        let mut log = AnomalyLog::new(4);
        for i in 0..100 {
            log.record(IngestAnomaly {
                subscriber_id: i,
                timestamp: Instant::from_secs(i),
                kind: AnomalyKind::EmptyHost,
            });
        }
        assert_eq!(log.kept().len(), 4);
        assert_eq!(log.total(), 100);
    }

    #[test]
    fn flush_leaves_the_reassembler_reusable() {
        let entries = subscriber_stream(1);
        let mut health = StreamHealth::default();
        let mut log = AnomalyLog::new(16);
        let mut machine =
            RobustReassembler::new(ReassemblyConfig::default(), IngestConfig::default());
        let mut sessions = Vec::new();
        for e in &entries {
            sessions.extend(machine.push(e, &mut health, &mut log));
        }
        sessions.extend(machine.flush());
        assert_eq!(sessions.len(), 1);
        assert_eq!(machine.open_entries(), 0);
        // Feed the same stream again: the machine must work from scratch.
        let mut again = Vec::new();
        for e in &entries {
            again.extend(machine.push(e, &mut health, &mut log));
        }
        again.extend(machine.flush());
        assert_eq!(again, sessions);
    }
}
