//! Deterministic fault injection for weblog streams.
//!
//! The paper's deployment claim (§8) is that a trained monitor can be
//! "directly applied on the passively monitored traffic" — but a real
//! operator tap is hostile: records arrive out of order, duplicated,
//! truncated or plain corrupt, subscriber identifiers collide, and
//! capture sessions die mid-stream. [`ChaosTap`] reproduces that
//! hostility on demand: it wraps any [`WeblogEntry`] iterator and
//! applies a configurable, *seeded* mix of fault operations, so the
//! graceful-degradation layer (see [`crate::ingest`]) can be exercised
//! and regression-tested bit-reproducibly.
//!
//! Fault operations, each independently probable per entry:
//!
//! * **reordering** — an entry is held back and re-emitted up to
//!   [`ChaosConfig::reorder_window`] entries later (bounded displacement,
//!   as produced by parallel export pipelines);
//! * **duplication** — the entry is emitted twice (tap-side retransmit);
//! * **drop** — the entry is silently lost;
//! * **timestamp skew** — the timestamp moves forward or backward by up
//!   to [`ChaosConfig::max_skew`] (clock steps on the collector);
//! * **field corruption** — one field is truncated or replaced with
//!   garbage (truncated export record);
//! * **subscriber-ID collision** — the anonymized subscriber id is
//!   remapped into a tiny id space, merging unrelated streams;
//! * **stream cut** — every later entry of the subscriber is lost
//!   (capture process death mid-session).
//!
//! Everything is driven by one [`StdRng`] seeded explicitly, so a given
//! `(stream, config, seed)` triple always yields the same faulted
//! stream.

use std::collections::{BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vqoe_simnet::time::{Duration, Instant};

use crate::weblog::{EntryKind, WeblogEntry};
use vqoe_player::TransportSummary;

/// Per-entry probabilities and bounds for each fault operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Probability an entry is held back and re-emitted later.
    pub reorder: f64,
    /// Maximum displacement (in emitted entries) of a reordered entry.
    pub reorder_window: usize,
    /// Probability an entry is emitted twice.
    pub duplicate: f64,
    /// Probability an entry is dropped.
    pub drop: f64,
    /// Probability an entry's timestamp is skewed.
    pub skew: f64,
    /// Maximum forward or backward timestamp skew.
    pub max_skew: Duration,
    /// Probability one field of an entry is corrupted or truncated.
    pub corrupt: f64,
    /// Probability an entry's subscriber id is remapped into the
    /// colliding id space `0..collide_modulus`.
    pub collide: f64,
    /// Size of the colliding subscriber-id space.
    pub collide_modulus: u64,
    /// Probability the subscriber's remaining stream is cut here.
    pub cut: f64,
}

impl ChaosConfig {
    /// No faults at all: the tap is a pass-through.
    pub fn clean() -> Self {
        ChaosConfig {
            reorder: 0.0,
            reorder_window: 8,
            duplicate: 0.0,
            drop: 0.0,
            skew: 0.0,
            max_skew: Duration::from_secs(10),
            corrupt: 0.0,
            collide: 0.0,
            collide_modulus: 4,
            cut: 0.0,
        }
    }

    /// A single-knob fault mix: every operation's probability scales
    /// with `intensity` in `[0, 1]`. The weights keep the destructive
    /// operations (cut, collision) rarer than the reparable ones
    /// (reordering, duplication), roughly matching the incident mix a
    /// tap aggregator produces under load.
    pub fn uniform(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        ChaosConfig {
            reorder: i,
            duplicate: i / 2.0,
            drop: i / 2.0,
            skew: i / 2.0,
            corrupt: i / 2.0,
            collide: i / 10.0,
            cut: i / 200.0,
            ..ChaosConfig::clean()
        }
    }

    /// True when every fault probability is zero (pass-through tap).
    pub fn is_clean(&self) -> bool {
        self.reorder == 0.0
            && self.duplicate == 0.0
            && self.drop == 0.0
            && self.skew == 0.0
            && self.corrupt == 0.0
            && self.collide == 0.0
            && self.cut == 0.0
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::clean()
    }
}

/// Counters of faults actually applied by a [`ChaosTap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Entries pulled from the wrapped iterator.
    pub consumed: u64,
    /// Entries emitted downstream (after drops and duplicates).
    pub emitted: u64,
    /// Entries held back for later emission.
    pub reordered: u64,
    /// Entries emitted twice.
    pub duplicated: u64,
    /// Entries dropped outright.
    pub dropped: u64,
    /// Entries with a skewed timestamp.
    pub skewed: u64,
    /// Entries with a corrupted field.
    pub corrupted: u64,
    /// Entries remapped onto a colliding subscriber id.
    pub collided: u64,
    /// Subscriber streams cut mid-session.
    pub streams_cut: u64,
    /// Entries lost to an earlier stream cut.
    pub cut_dropped: u64,
}

/// A fault-injecting adapter over any [`WeblogEntry`] iterator.
///
/// ```
/// use vqoe_telemetry::chaos::{ChaosConfig, ChaosTap};
/// let entries: Vec<vqoe_telemetry::WeblogEntry> = Vec::new();
/// let faulted: Vec<_> =
///     ChaosTap::new(entries.into_iter(), ChaosConfig::uniform(0.1), 42).collect();
/// ```
#[derive(Debug, Clone)]
pub struct ChaosTap<I> {
    inner: I,
    cfg: ChaosConfig,
    rng: StdRng,
    /// Entries ready to emit, in order.
    ready: VecDeque<WeblogEntry>,
    /// Held-back entries with a countdown in consumed entries.
    held: Vec<(usize, WeblogEntry)>,
    /// Subscribers whose stream has been cut.
    cut: BTreeSet<u64>,
    stats: ChaosStats,
    inner_done: bool,
}

impl<I: Iterator<Item = WeblogEntry>> ChaosTap<I> {
    /// Wrap `inner` with the fault mix of `cfg`, driven by `seed`.
    pub fn new(inner: I, cfg: ChaosConfig, seed: u64) -> Self {
        ChaosTap {
            inner,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            ready: VecDeque::new(),
            held: Vec::new(),
            cut: BTreeSet::new(),
            stats: ChaosStats::default(),
            inner_done: false,
        }
    }

    /// Counters of the faults applied so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    fn roll(&mut self, p: f64) -> bool {
        // `gen::<f64>() < p` instead of `gen_bool` so a hostile config
        // (p outside [0, 1]) saturates instead of panicking.
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Apply the fault mix to one consumed entry, queueing 0–2 outputs.
    fn process(&mut self, mut e: WeblogEntry) {
        self.stats.consumed += 1;
        if self.cut.contains(&e.subscriber_id) {
            self.stats.cut_dropped += 1;
            return;
        }
        if self.roll(self.cfg.cut) {
            self.cut.insert(e.subscriber_id);
            self.stats.streams_cut += 1;
            self.stats.cut_dropped += 1;
            return;
        }
        if self.roll(self.cfg.drop) {
            self.stats.dropped += 1;
            return;
        }
        if self.roll(self.cfg.collide) {
            e.subscriber_id %= self.cfg.collide_modulus.max(1);
            self.stats.collided += 1;
        }
        if self.roll(self.cfg.skew) {
            let span = self.cfg.max_skew.as_micros();
            let offset = self.rng.gen_range(0..=span);
            e.timestamp = if self.rng.gen::<bool>() {
                e.timestamp + vqoe_simnet::time::Duration(offset)
            } else {
                Instant(e.timestamp.as_micros().saturating_sub(offset))
            };
            self.stats.skewed += 1;
        }
        if self.roll(self.cfg.corrupt) {
            self.corrupt(&mut e);
            self.stats.corrupted += 1;
        }
        if self.roll(self.cfg.duplicate) {
            self.ready.push_back(e.clone());
            self.stats.duplicated += 1;
        }
        if self.cfg.reorder_window > 0 && self.roll(self.cfg.reorder) {
            let delay = self.rng.gen_range(1..=self.cfg.reorder_window);
            self.held.push((delay, e));
            self.stats.reordered += 1;
        } else {
            self.ready.push_back(e);
        }
    }

    /// Damage one field of the entry, as a truncated or garbled export
    /// record would: the entry stays structurally a `WeblogEntry`, but
    /// its content is no longer trustworthy.
    fn corrupt(&mut self, e: &mut WeblogEntry) {
        match self.rng.gen_range(0u32..6) {
            0 => e.host.truncate(e.host.len() / 2),
            1 => e.host.clear(),
            2 => e.bytes = u64::MAX,
            3 => e.bytes = 0,
            4 => e.duration = Duration::from_secs(48 * 3600),
            _ => e.uri = Some("\u{fffd}%%%garbage-export-tail".to_string()),
        }
    }

    /// Tick held entries after one consumed entry and release the due
    /// ones.
    fn tick_held(&mut self) {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= 1 {
                let (_, e) = self.held.remove(i);
                self.ready.push_back(e);
            } else {
                self.held[i].0 -= 1;
                i += 1;
            }
        }
    }
}

impl<I: Iterator<Item = WeblogEntry>> Iterator for ChaosTap<I> {
    type Item = WeblogEntry;

    fn next(&mut self) -> Option<WeblogEntry> {
        loop {
            if let Some(e) = self.ready.pop_front() {
                self.stats.emitted += 1;
                return Some(e);
            }
            if self.inner_done {
                if self.held.is_empty() {
                    return None;
                }
                // End of stream: flush every held entry in held order.
                let held = std::mem::take(&mut self.held);
                self.ready.extend(held.into_iter().map(|(_, e)| e));
                continue;
            }
            match self.inner.next() {
                None => self.inner_done = true,
                Some(e) => {
                    self.tick_held();
                    self.process(e);
                }
            }
        }
    }
}

/// Apply `cfg` to a whole entry slice at once, returning the faulted
/// stream and the fault counters. Convenience wrapper over [`ChaosTap`]
/// for batch callers (experiments, benches).
pub fn apply_chaos(
    entries: &[WeblogEntry],
    cfg: &ChaosConfig,
    seed: u64,
) -> (Vec<WeblogEntry>, ChaosStats) {
    let mut tap = ChaosTap::new(entries.iter().cloned(), *cfg, seed);
    let mut out = Vec::with_capacity(entries.len());
    for e in tap.by_ref() {
        out.push(e);
    }
    (out, tap.stats())
}

// ---------------------------------------------------------------------
// Load chaos: hostile *volume* rather than hostile records. The fault
// tap above damages individual entries; the generators below produce
// whole well-formed streams shaped to exhaust the assessor's memory —
// subscriber floods, synchronized burst storms, and pathological
// never-ending sessions. They compose with [`ChaosTap`]: generate the
// load, merge it with the organic stream, then run the merged stream
// through the fault tap.
// ---------------------------------------------------------------------

/// Shape of a synthetic subscriber flood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodSpec {
    /// Number of distinct flood subscribers.
    pub subscribers: u64,
    /// Media chunks each flood subscriber downloads.
    pub chunks_per_subscriber: usize,
    /// Spacing between a subscriber's consecutive chunks.
    pub chunk_gap: Duration,
    /// Flood subscriber ids are `id_base..id_base + subscribers` —
    /// keep this disjoint from the organic id space.
    pub id_base: u64,
    /// Subscriber start times are scattered across this window, so the
    /// flood ramps up instead of arriving as one spike.
    pub window: Duration,
}

impl Default for FloodSpec {
    fn default() -> Self {
        FloodSpec {
            subscribers: 64,
            chunks_per_subscriber: 24,
            chunk_gap: Duration::from_secs(2),
            id_base: 0xF100D,
            window: Duration::from_secs(60),
        }
    }
}

/// Transport annotations for synthetic load entries. Structurally
/// valid, deliberately unremarkable: load chaos stresses memory, not
/// the detectors.
fn load_transport(rng: &mut StdRng) -> TransportSummary {
    let rtt = rng.gen_range(0.03..0.2);
    TransportSummary {
        rtt_min: rtt,
        rtt_mean: rtt * rng.gen_range(1.0..1.3),
        rtt_max: rtt * rng.gen_range(1.3..2.2),
        bdp_mean: rng.gen_range(50_000.0..400_000.0),
        bif_mean: rng.gen_range(5_000.0..60_000.0),
        bif_max: rng.gen_range(60_000.0..180_000.0),
        loss_frac: 0.0,
        retx_frac: 0.0,
    }
}

fn load_page_entry(subscriber_id: u64, t: Instant, rng: &mut StdRng) -> WeblogEntry {
    WeblogEntry {
        timestamp: t,
        subscriber_id,
        host: "m.youtube.com".to_string(),
        uri: None,
        bytes: rng.gen_range(30_000..200_000),
        duration: Duration::from_millis(rng.gen_range(100..900)),
        transport: load_transport(rng),
        encrypted: true,
        kind: EntryKind::PageLoad,
    }
}

fn load_media_entry(subscriber_id: u64, t: Instant, rng: &mut StdRng) -> WeblogEntry {
    WeblogEntry {
        timestamp: t,
        subscriber_id,
        host: format!(
            "r{}---sn-load{:02}.googlevideo.com",
            1 + subscriber_id % 8,
            subscriber_id % 100
        ),
        uri: None,
        bytes: rng.gen_range(250_000..2_500_000),
        duration: Duration::from_millis(rng.gen_range(400..3_000)),
        transport: load_transport(rng),
        encrypted: true,
        kind: EntryKind::MediaChunk,
    }
}

/// Generate a subscriber flood: `spec.subscribers` fresh subscribers,
/// each opening a session (page load + steady media chunks) with start
/// times scattered across `spec.window` after `start`. Entries come
/// back in timestamp order. Every `(spec, start, seed)` triple yields
/// the same flood.
pub fn generate_subscriber_flood(spec: &FloodSpec, start: Instant, seed: u64) -> Vec<WeblogEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let window = spec.window.as_micros().max(1);
    for s in 0..spec.subscribers {
        let id = spec.id_base + s;
        let t0 = start + Duration(rng.gen_range(0..window));
        out.push(load_page_entry(id, t0, &mut rng));
        let mut t = t0 + Duration::from_millis(rng.gen_range(200..1_200));
        for _ in 0..spec.chunks_per_subscriber {
            out.push(load_media_entry(id, t, &mut rng));
            t += spec.chunk_gap;
        }
    }
    out.sort_by_key(|e| e.timestamp);
    out
}

/// Generate a burst storm: every listed subscriber fires `burst_size`
/// media chunks nearly simultaneously, `bursts` times, one burst every
/// `period`. This is the synchronized-spike pattern (ad break, live
/// event) that defeats per-subscriber pacing assumptions and lands many
/// equal activity watermarks at once — exactly the LRU tie-break case.
pub fn generate_burst_storm(
    subscribers: &[u64],
    bursts: usize,
    burst_size: usize,
    period: Duration,
    start: Instant,
    seed: u64,
) -> Vec<WeblogEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for b in 0..bursts {
        let at = start + Duration(period.as_micros().saturating_mul(b as u64));
        for &id in subscribers {
            for _ in 0..burst_size {
                let jitter = Duration::from_millis(rng.gen_range(0..50));
                out.push(load_media_entry(id, at + jitter, &mut rng));
            }
        }
    }
    out.sort_by_key(|e| e.timestamp);
    out
}

/// Generate a pathological session: one subscriber whose chunk cadence
/// never pauses longer than `gap`, so no idle boundary ever closes the
/// session and its open group grows without limit. Pick `gap` below the
/// reassembly `idle_gap` (default 30 s) for the never-ending effect;
/// `chunks` controls how giant the session gets.
pub fn generate_pathological_session(
    subscriber_id: u64,
    start: Instant,
    chunks: usize,
    gap: Duration,
    seed: u64,
) -> Vec<WeblogEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![load_page_entry(subscriber_id, start, &mut rng)];
    let mut t = start + Duration::from_millis(rng.gen_range(200..1_200));
    for _ in 0..chunks {
        out.push(load_media_entry(subscriber_id, t, &mut rng));
        t += gap;
    }
    out
}

/// Merge several entry streams into one tap stream, ordered by
/// timestamp. The sort is stable, so entries with equal timestamps keep
/// their input-stream order — merging is deterministic.
pub fn merge_streams(streams: Vec<Vec<WeblogEntry>>) -> Vec<WeblogEntry> {
    let mut out: Vec<WeblogEntry> = streams.into_iter().flatten().collect();
    out.sort_by_key(|e| e.timestamp);
    out
}

/// Named chaos presets, so operators (and `vqoe assess
/// --chaos-profile`) don't have to tune six probabilities by hand.
///
/// | profile | fault mix | load |
/// |---------|-----------|------|
/// | `mild`  | [`ChaosConfig::uniform`]`(0.05)` | none |
/// | `harsh` | [`ChaosConfig::uniform`]`(0.35)` | none |
/// | `flood` | [`ChaosConfig::uniform`]`(0.05)` | [`FloodSpec::default`] subscriber flood |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosProfile {
    /// Light record faults: the healthy-tap background rate.
    Mild,
    /// Heavy record faults: a degraded aggregator.
    Harsh,
    /// Light record faults plus a default subscriber flood.
    Flood,
}

impl ChaosProfile {
    /// Every profile, in documentation order.
    pub const ALL: [ChaosProfile; 3] =
        [ChaosProfile::Mild, ChaosProfile::Harsh, ChaosProfile::Flood];

    /// Parse a CLI name (case-insensitive).
    pub fn parse(s: &str) -> Option<ChaosProfile> {
        match s.to_ascii_lowercase().as_str() {
            "mild" => Some(ChaosProfile::Mild),
            "harsh" => Some(ChaosProfile::Harsh),
            "flood" => Some(ChaosProfile::Flood),
            _ => None,
        }
    }

    /// The profile's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosProfile::Mild => "mild",
            ChaosProfile::Harsh => "harsh",
            ChaosProfile::Flood => "flood",
        }
    }

    /// The record-fault mix of this profile.
    pub fn chaos(&self) -> ChaosConfig {
        match self {
            ChaosProfile::Mild | ChaosProfile::Flood => ChaosConfig::uniform(0.05),
            ChaosProfile::Harsh => ChaosConfig::uniform(0.35),
        }
    }

    /// The load component of this profile, if it has one.
    pub fn flood(&self) -> Option<FloodSpec> {
        match self {
            ChaosProfile::Flood => Some(FloodSpec::default()),
            ChaosProfile::Mild | ChaosProfile::Harsh => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::generate_noise;
    use rand::SeedableRng;

    fn stream(n: usize) -> Vec<WeblogEntry> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        generate_noise(1, Instant::ZERO, Instant::from_secs(n as u64), n, &mut rng)
    }

    #[test]
    fn clean_config_is_a_pass_through() {
        let entries = stream(200);
        let (out, stats) = apply_chaos(&entries, &ChaosConfig::clean(), 7);
        assert_eq!(out, entries);
        assert_eq!(stats.consumed, 200);
        assert_eq!(stats.emitted, 200);
        assert_eq!(stats.dropped + stats.duplicated + stats.corrupted, 0);
        assert!(ChaosConfig::clean().is_clean());
        assert!(!ChaosConfig::uniform(0.2).is_clean());
    }

    #[test]
    fn same_seed_same_stream() {
        let entries = stream(300);
        let cfg = ChaosConfig::uniform(0.3);
        let (a, sa) = apply_chaos(&entries, &cfg, 11);
        let (b, sb) = apply_chaos(&entries, &cfg, 11);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = apply_chaos(&entries, &cfg, 12);
        assert_ne!(a, c, "different seeds must fault differently");
    }

    #[test]
    fn drops_shrink_and_duplicates_grow_the_stream() {
        let entries = stream(400);
        let dropped = ChaosConfig {
            drop: 0.5,
            ..ChaosConfig::clean()
        };
        let (out, stats) = apply_chaos(&entries, &dropped, 5);
        assert!(out.len() < entries.len());
        assert_eq!(out.len() as u64, stats.emitted);
        assert_eq!(stats.dropped, entries.len() as u64 - out.len() as u64);

        let duplicated = ChaosConfig {
            duplicate: 0.5,
            ..ChaosConfig::clean()
        };
        let (out, stats) = apply_chaos(&entries, &duplicated, 5);
        assert!(out.len() > entries.len());
        assert_eq!(stats.duplicated, out.len() as u64 - entries.len() as u64);
    }

    #[test]
    fn reordering_is_bounded_and_preserves_the_multiset() {
        let entries = stream(300);
        let cfg = ChaosConfig {
            reorder: 0.4,
            reorder_window: 6,
            ..ChaosConfig::clean()
        };
        let (out, stats) = apply_chaos(&entries, &cfg, 9);
        assert_eq!(out.len(), entries.len());
        assert!(stats.reordered > 0);
        // Same entries, different order.
        let mut a = entries.clone();
        let mut b = out.clone();
        a.sort_by_key(|e| (e.timestamp, e.bytes));
        b.sort_by_key(|e| (e.timestamp, e.bytes));
        assert_eq!(a, b);
        // Displacement of every entry is bounded by the window plus the
        // in-flight slack of other held entries.
        for (i, e) in entries.iter().enumerate() {
            let j = out
                .iter()
                .position(|o| o == e)
                .expect("entry survived reordering");
            assert!(
                (j as i64 - i as i64).unsigned_abs() as usize <= cfg.reorder_window * 2,
                "entry {i} displaced to {j}"
            );
        }
    }

    #[test]
    fn cut_removes_the_tail_of_a_subscriber() {
        let entries = stream(500);
        let cfg = ChaosConfig {
            cut: 0.02,
            ..ChaosConfig::clean()
        };
        let (out, stats) = apply_chaos(&entries, &cfg, 13);
        assert!(stats.streams_cut >= 1);
        assert_eq!(
            stats.cut_dropped,
            entries.len() as u64 - out.len() as u64,
            "everything after the cut is lost"
        );
        // The surviving prefix is unmodified.
        assert_eq!(out[..], entries[..out.len()]);
    }

    #[test]
    fn corruption_damages_fields_but_keeps_records_parseable() {
        let entries = stream(400);
        let cfg = ChaosConfig {
            corrupt: 1.0,
            ..ChaosConfig::clean()
        };
        let (out, stats) = apply_chaos(&entries, &cfg, 17);
        assert_eq!(stats.corrupted, entries.len() as u64);
        assert_eq!(out.len(), entries.len());
        assert!(out.iter().zip(entries.iter()).any(|(o, e)| o != e));
    }
}
