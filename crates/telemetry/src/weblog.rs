//! The proxy's weblog record.
//!
//! One [`WeblogEntry`] is one HTTP(S) transaction as the operator's proxy
//! logs it: "IP-port tuples, URI's, object sizes, transaction times,
//! request time-stamps and more ... annotated with a set of transport
//! layer performance metrics" (§3.1).
//!
//! The critical asymmetry the whole paper turns on: for **cleartext**
//! transactions the `uri` is present and carries the ground-truth
//! metadata; for **encrypted** transactions `uri` is `None` and only the
//! network-visible fields remain — "we only extract the timestamp of the
//! HTTP request, the server IP address and port, the size of the
//! requested object and the TCP statistics" (§5.2).

use serde::{Deserialize, Serialize};
use vqoe_player::TransportSummary;
use vqoe_simnet::time::{Duration, Instant};

/// What kind of transaction an entry records (known to the simulator;
/// the reassembly code must *not* use this field for encrypted traffic —
/// it recovers the classification from hosts and timing, as the paper
/// does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryKind {
    /// Watch-page objects: HTML, scripts, thumbnails.
    PageLoad,
    /// A media chunk download (video or muxed/unmuxed audio).
    MediaChunk,
    /// A playback statistics report to the service's stats endpoint.
    StatsReport,
    /// Unrelated background traffic from the same subscriber.
    Noise,
}

/// One HTTP(S) transaction in the proxy's log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeblogEntry {
    /// Request timestamp.
    pub timestamp: Instant,
    /// Anonymized subscriber identifier (the paper strips all real
    /// identifiers; grouping per subscriber is still possible).
    pub subscriber_id: u64,
    /// Server hostname (from DNS/SNI — available even for TLS).
    pub host: String,
    /// Request URI with query string; `None` under encryption.
    pub uri: Option<String>,
    /// Object size in bytes.
    pub bytes: u64,
    /// Transaction duration (request to last byte).
    pub duration: Duration,
    /// Transport-layer annotations.
    pub transport: TransportSummary,
    /// Whether the transaction was TLS-encrypted.
    pub encrypted: bool,
    /// Simulator-side kind tag (ground truth for tests; see type docs).
    pub kind: EntryKind,
}

/// Fixed bookkeeping cost charged per buffered record, on top of the
/// variable-length fields. The value is a platform-independent model of
/// the in-memory footprint (struct body plus container slack), chosen
/// deliberately over `size_of` so budget arithmetic — and therefore
/// admission/shedding decisions — is identical on every target.
pub const RECORD_OVERHEAD_BYTES: u64 = 192;

impl WeblogEntry {
    /// Arrival time of the object's last byte — the "chunk time" of
    /// Table 1.
    pub fn arrival_time(&self) -> Instant {
        self.timestamp + self.duration
    }

    /// The variable-length byte count of this record: the host plus the
    /// URI (when present). This is the *single* source of truth for
    /// variable-size accounting — both [`WeblogEntry::tracked_cost`]
    /// (memory budgets) and the binary weblog encoder
    /// ([`crate::binlog`]) add their own fixed per-record constant on
    /// top of exactly this value, so the two accountings can never
    /// drift apart.
    pub fn variable_cost(&self) -> u64 {
        self.host.len() as u64 + self.uri.as_ref().map_or(0, |u| u.len() as u64)
    }

    /// Deterministic memory cost charged while this record is buffered:
    /// [`RECORD_OVERHEAD_BYTES`] plus [`WeblogEntry::variable_cost`].
    /// This is the record-granularity unit all ingest memory budgets
    /// are accounted in.
    pub fn tracked_cost(&self) -> u64 {
        RECORD_OVERHEAD_BYTES + self.variable_cost()
    }

    /// Is this transaction addressed to the video service (any of its
    /// serving domains)? This is the filter the paper's reassembly step
    /// applies first: "remove all requests that do not belong to YouTube
    /// by filtering out those that have domain names not related to the
    /// service".
    pub fn is_service_host(&self) -> bool {
        is_service_host(&self.host)
    }

    /// Is this a media-cache host (where chunks come from)?
    pub fn is_media_host(&self) -> bool {
        self.host.ends_with(".googlevideo.com")
    }

    /// Is this a watch-page host (the §5.2 session-start marker)?
    pub fn is_page_host(&self) -> bool {
        self.host == "m.youtube.com" || self.host == "i.ytimg.com"
    }
}

/// Domain filter for the whole service (§5.2 step 1).
pub fn is_service_host(host: &str) -> bool {
    host.ends_with(".googlevideo.com")
        || host == "m.youtube.com"
        || host == "www.youtube.com"
        || host == "i.ytimg.com"
        || host == "s.youtube.com"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(host: &str) -> WeblogEntry {
        WeblogEntry {
            timestamp: Instant::from_secs(10),
            subscriber_id: 1,
            host: host.to_string(),
            uri: None,
            bytes: 1000,
            duration: Duration::from_millis(300),
            transport: TransportSummary {
                rtt_min: 0.05,
                rtt_mean: 0.06,
                rtt_max: 0.08,
                bdp_mean: 60_000.0,
                bif_mean: 20_000.0,
                bif_max: 40_000.0,
                loss_frac: 0.0,
                retx_frac: 0.0,
            },
            encrypted: true,
            kind: EntryKind::MediaChunk,
        }
    }

    #[test]
    fn arrival_time_adds_duration() {
        let e = entry("r3---sn-abc123.googlevideo.com");
        assert_eq!(e.arrival_time(), Instant::from_millis(10_300));
    }

    #[test]
    fn host_classification() {
        assert!(entry("r3---sn-abc123.googlevideo.com").is_media_host());
        assert!(entry("r3---sn-abc123.googlevideo.com").is_service_host());
        assert!(entry("m.youtube.com").is_page_host());
        assert!(entry("i.ytimg.com").is_page_host());
        assert!(entry("s.youtube.com").is_service_host());
        assert!(!entry("example.com").is_service_host());
        assert!(!entry("m.youtube.com").is_media_host());
        // Suffix matching must not be fooled by lookalikes.
        assert!(!entry("evilgooglevideo.com").is_media_host());
        assert!(!entry("googlevideo.com.evil.org").is_service_host());
    }

    #[test]
    fn serde_roundtrip() {
        let e = entry("m.youtube.com");
        let json = serde_json::to_string(&e).unwrap();
        let back: WeblogEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
