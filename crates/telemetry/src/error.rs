//! The crate-wide error type.
//!
//! Telemetry sits on the untrusted edge of the pipeline: it parses
//! weblog datasets from disk and renders traces produced elsewhere.
//! Those paths fail by returning [`TelemetryError`] instead of
//! panicking, so a corrupt dataset line or a malformed trace surfaces
//! as a diagnosable error in the operator CLI rather than a crash.

use std::fmt;

/// Errors raised by telemetry capture, persistence and parsing.
#[derive(Debug)]
pub enum TelemetryError {
    /// An underlying filesystem read or write failed.
    Io(std::io::Error),
    /// An item could not be serialized while writing a JSONL dataset.
    Serialize {
        /// Zero-based index of the offending item in the written slice.
        index: usize,
        /// The serializer's diagnosis.
        source: serde_json::Error,
    },
    /// A line of a JSONL dataset failed to parse.
    Parse {
        /// One-based line number within the file.
        line: usize,
        /// The parser's diagnosis.
        source: serde_json::Error,
    },
    /// A video chunk reached capture without its itag annotation.
    ///
    /// The player guarantees every video chunk carries an itag; hitting
    /// this on a deserialized trace means the trace file was corrupt or
    /// hand-edited.
    MissingItag {
        /// Session the malformed chunk belongs to.
        session_id: String,
        /// Sequence number of the malformed chunk.
        chunk_index: u64,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Io(e) => write!(f, "i/o error: {e}"),
            TelemetryError::Serialize { index, source } => {
                write!(f, "failed to serialize item {index}: {source}")
            }
            TelemetryError::Parse { line, source } => {
                write!(f, "line {line}: {source}")
            }
            TelemetryError::MissingItag {
                session_id,
                chunk_index,
            } => write!(
                f,
                "video chunk {chunk_index} of session {session_id} carries no itag"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Io(e) => Some(e),
            TelemetryError::Serialize { source, .. } | TelemetryError::Parse { source, .. } => {
                Some(source)
            }
            TelemetryError::MissingItag { .. } => None,
        }
    }
}

impl From<std::io::Error> for TelemetryError {
    fn from(e: std::io::Error) -> Self {
        TelemetryError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_site() {
        let e = TelemetryError::MissingItag {
            session_id: "abc".into(),
            chunk_index: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("abc") && msg.contains('7'), "{msg}");

        let e = TelemetryError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }
}
