//! The compact binary weblog format — zero-copy corpus replay.
//!
//! JSONL corpora are the archival interchange format ([`crate::dataset`]),
//! but replaying one through `vqoe assess` or `repro` pays full serde
//! cost on every record. This module defines the packed alternative: a
//! [`BinaryCorpus`] is one owned byte buffer holding a versioned header
//! followed by length-prefixed records, and [`BinaryCorpus::records`]
//! iterates it **without allocating** — every [`RecordRef`] borrows its
//! `host`/`uri` strings straight out of the buffer. Materialize a
//! [`WeblogEntry`] only where an owned record is actually needed.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! header (16 bytes):
//!   magic   [u8; 4]   = b"VQWL"
//!   version u16       = 1
//!   reserved u16      = 0
//!   count   u64       number of records
//! record (length-prefixed):
//!   len     u32       body length in bytes (fixed preamble + strings)
//!   body:
//!     timestamp     u64   microseconds
//!     subscriber_id u64
//!     bytes         u64
//!     duration      u64   microseconds
//!     transport     8 × f64 (rtt_min, rtt_mean, rtt_max, bdp_mean,
//!                            bif_mean, bif_max, loss_frac, retx_frac)
//!     encrypted     u8    0 | 1
//!     kind          u8    0=PageLoad 1=MediaChunk 2=StatsReport 3=Noise
//!     has_uri       u8    0 | 1
//!     host_len      u16
//!     uri_len       u32
//!     host          [u8; host_len]   UTF-8
//!     uri           [u8; uri_len]    UTF-8 (absent when has_uri = 0)
//! ```
//!
//! The fixed preamble is [`RECORD_FIXED_BYTES`] bytes, so every record
//! body is exactly `RECORD_FIXED_BYTES + entry.variable_cost()` bytes —
//! the same [`WeblogEntry::variable_cost`] the memory-budget accounting
//! ([`WeblogEntry::tracked_cost`]) is built on. A regression test pins
//! the two accountings to that shared helper.
//!
//! Decoding is strict and typed: a wrong magic, an unsupported version,
//! a truncated buffer, an oversized length prefix, a bad enum byte or
//! non-UTF-8 string all surface as a diagnosable [`BinlogError`], never
//! a panic — the format sits on the same untrusted edge as
//! [`crate::dataset`].

use std::fmt;
use std::path::Path;

use vqoe_player::TransportSummary;
use vqoe_simnet::time::{Duration, Instant};

use crate::weblog::{EntryKind, WeblogEntry};

/// The four magic bytes opening every binary corpus.
pub const BINLOG_MAGIC: [u8; 4] = *b"VQWL";

/// Format version stamped into the header. Bump on any layout change.
pub const BINLOG_VERSION: u16 = 1;

/// Header size in bytes: magic + version + reserved + record count.
pub const HEADER_BYTES: usize = 16;

/// Fixed preamble size of one record body, before the variable-length
/// host/uri bytes: 4 × u64 + 8 × f64 + 3 × u8 + u16 + u32 = 105.
pub const RECORD_FIXED_BYTES: usize = 105;

/// Why a binary corpus failed to decode.
#[derive(Debug)]
pub enum BinlogError {
    /// An underlying filesystem read or write failed.
    Io(std::io::Error),
    /// The buffer is shorter than one header.
    TruncatedHeader {
        /// Bytes actually present.
        len: usize,
    },
    /// The first four bytes are not [`BINLOG_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The header's version is not [`BINLOG_VERSION`].
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// A record's length prefix or body runs past the end of the buffer.
    Truncated {
        /// Zero-based index of the offending record.
        index: u64,
        /// Byte offset where the record starts.
        offset: usize,
    },
    /// A record's length prefix disagrees with its own string lengths.
    BadLength {
        /// Zero-based index of the offending record.
        index: u64,
        /// The length prefix found.
        len: u32,
    },
    /// A one-byte field (kind, encrypted, has_uri) holds an undefined
    /// value.
    BadField {
        /// Zero-based index of the offending record.
        index: u64,
        /// Which field was malformed.
        field: &'static str,
        /// The byte found.
        value: u8,
    },
    /// A host or uri is not valid UTF-8.
    NonUtf8 {
        /// Zero-based index of the offending record.
        index: u64,
        /// Which string was malformed.
        field: &'static str,
    },
    /// The header's record count disagrees with the records present.
    CountMismatch {
        /// Count claimed by the header.
        header: u64,
        /// Records actually decoded.
        actual: u64,
    },
}

impl fmt::Display for BinlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinlogError::Io(e) => write!(f, "i/o error: {e}"),
            BinlogError::TruncatedHeader { len } => {
                write!(f, "buffer holds {len} bytes, a header needs {HEADER_BYTES}")
            }
            BinlogError::BadMagic { found } => {
                write!(f, "bad magic {found:?}, expected {BINLOG_MAGIC:?}")
            }
            BinlogError::UnsupportedVersion { found } => write!(
                f,
                "unsupported format version {found} (this build reads {BINLOG_VERSION})"
            ),
            BinlogError::Truncated { index, offset } => {
                write!(f, "record {index} at offset {offset} is truncated")
            }
            BinlogError::BadLength { index, len } => write!(
                f,
                "record {index}: length prefix {len} disagrees with its field lengths"
            ),
            BinlogError::BadField {
                index,
                field,
                value,
            } => write!(f, "record {index}: undefined {field} byte {value}"),
            BinlogError::NonUtf8 { index, field } => {
                write!(f, "record {index}: {field} is not valid UTF-8")
            }
            BinlogError::CountMismatch { header, actual } => {
                write!(f, "header claims {header} records, buffer holds {actual}")
            }
        }
    }
}

impl std::error::Error for BinlogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinlogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BinlogError {
    fn from(e: std::io::Error) -> Self {
        BinlogError::Io(e)
    }
}

/// One record viewed in place: every field is parsed out of the corpus
/// buffer, and the strings *borrow* it — no allocation per record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordRef<'a> {
    /// Request timestamp.
    pub timestamp: Instant,
    /// Anonymized subscriber identifier.
    pub subscriber_id: u64,
    /// Object size in bytes.
    pub bytes: u64,
    /// Transaction duration.
    pub duration: Duration,
    /// Transport-layer annotations.
    pub transport: TransportSummary,
    /// Whether the transaction was TLS-encrypted.
    pub encrypted: bool,
    /// Simulator-side kind tag.
    pub kind: EntryKind,
    /// Server hostname, borrowed from the corpus buffer.
    pub host: &'a str,
    /// Request URI, borrowed from the corpus buffer; `None` under
    /// encryption.
    pub uri: Option<&'a str>,
}

impl RecordRef<'_> {
    /// Materialize an owned [`WeblogEntry`] (allocates the strings).
    pub fn to_entry(&self) -> WeblogEntry {
        WeblogEntry {
            timestamp: self.timestamp,
            subscriber_id: self.subscriber_id,
            host: self.host.to_string(),
            uri: self.uri.map(str::to_string),
            bytes: self.bytes,
            duration: self.duration,
            transport: self.transport,
            encrypted: self.encrypted,
            kind: self.kind,
        }
    }
}

fn kind_to_byte(kind: EntryKind) -> u8 {
    match kind {
        EntryKind::PageLoad => 0,
        EntryKind::MediaChunk => 1,
        EntryKind::StatsReport => 2,
        EntryKind::Noise => 3,
    }
}

fn kind_from_byte(b: u8) -> Option<EntryKind> {
    match b {
        0 => Some(EntryKind::PageLoad),
        1 => Some(EntryKind::MediaChunk),
        2 => Some(EntryKind::StatsReport),
        3 => Some(EntryKind::Noise),
        _ => None,
    }
}

/// The encoded body length of one entry: the value its length prefix
/// carries. Exactly [`RECORD_FIXED_BYTES`] plus
/// [`WeblogEntry::variable_cost`] — the shared accounting helper.
pub fn encoded_body_len(entry: &WeblogEntry) -> u64 {
    RECORD_FIXED_BYTES as u64 + entry.variable_cost()
}

/// A packed weblog corpus: one owned byte buffer, validated header,
/// zero-copy record iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryCorpus {
    buf: Vec<u8>,
    count: u64,
}

impl BinaryCorpus {
    /// Encode a slice of entries into a fresh corpus. The inverse of
    /// [`BinaryCorpus::decode_all`]: packing and unpacking reproduces
    /// the input bit for bit (f64 transport fields round-trip through
    /// their raw bits).
    pub fn pack(entries: &[WeblogEntry]) -> BinaryCorpus {
        let total: usize = entries
            .iter()
            .map(|e| 4 + encoded_body_len(e) as usize)
            .sum();
        let mut buf = Vec::with_capacity(HEADER_BYTES + total);
        buf.extend_from_slice(&BINLOG_MAGIC);
        buf.extend_from_slice(&BINLOG_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for e in entries {
            buf.extend_from_slice(&(encoded_body_len(e) as u32).to_le_bytes());
            buf.extend_from_slice(&e.timestamp.as_micros().to_le_bytes());
            buf.extend_from_slice(&e.subscriber_id.to_le_bytes());
            buf.extend_from_slice(&e.bytes.to_le_bytes());
            buf.extend_from_slice(&e.duration.as_micros().to_le_bytes());
            let t = &e.transport;
            for v in [
                t.rtt_min,
                t.rtt_mean,
                t.rtt_max,
                t.bdp_mean,
                t.bif_mean,
                t.bif_max,
                t.loss_frac,
                t.retx_frac,
            ] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            buf.push(u8::from(e.encrypted));
            buf.push(kind_to_byte(e.kind));
            buf.push(u8::from(e.uri.is_some()));
            buf.extend_from_slice(&(e.host.len() as u16).to_le_bytes());
            let uri_len = e.uri.as_ref().map_or(0, |u| u.len() as u32);
            buf.extend_from_slice(&uri_len.to_le_bytes());
            buf.extend_from_slice(e.host.as_bytes());
            if let Some(uri) = &e.uri {
                buf.extend_from_slice(uri.as_bytes());
            }
        }
        BinaryCorpus {
            buf,
            count: entries.len() as u64,
        }
    }

    /// Adopt an already-encoded buffer, validating the header (magic,
    /// version, minimum length). Record bodies are validated lazily,
    /// during iteration — adoption stays O(1).
    pub fn from_bytes(buf: Vec<u8>) -> Result<BinaryCorpus, BinlogError> {
        if buf.len() < HEADER_BYTES {
            return Err(BinlogError::TruncatedHeader { len: buf.len() });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&buf[..4]);
        if magic != BINLOG_MAGIC {
            return Err(BinlogError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != BINLOG_VERSION {
            return Err(BinlogError::UnsupportedVersion { found: version });
        }
        let mut count = [0u8; 8];
        count.copy_from_slice(&buf[8..16]);
        Ok(BinaryCorpus {
            buf,
            count: u64::from_le_bytes(count),
        })
    }

    /// The raw encoded bytes (header + records), e.g. to write them
    /// somewhere other than a file.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of records the header claims. Trust-but-verify: iteration
    /// and [`BinaryCorpus::decode_all`] check it against the records
    /// actually present.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when the header claims zero records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the records in place. Each item is a zero-copy
    /// [`RecordRef`] or the typed decode error at that point; iteration
    /// ends after the first error.
    pub fn records(&self) -> Records<'_> {
        Records {
            buf: &self.buf,
            offset: HEADER_BYTES,
            index: 0,
            failed: false,
        }
    }

    /// Decode every record into owned [`WeblogEntry`] values, verifying
    /// the header count along the way.
    pub fn decode_all(&self) -> Result<Vec<WeblogEntry>, BinlogError> {
        let mut out = Vec::with_capacity(usize::try_from(self.count).unwrap_or(0));
        for record in self.records() {
            out.push(record?.to_entry());
        }
        if out.len() as u64 != self.count {
            return Err(BinlogError::CountMismatch {
                header: self.count,
                actual: out.len() as u64,
            });
        }
        Ok(out)
    }

    /// Write the corpus to a file.
    pub fn write_file(&self, path: &Path) -> Result<(), BinlogError> {
        std::fs::write(path, &self.buf)?;
        Ok(())
    }

    /// Read a corpus from a file, validating the header.
    pub fn read_file(path: &Path) -> Result<BinaryCorpus, BinlogError> {
        BinaryCorpus::from_bytes(std::fs::read(path)?)
    }

    /// Does this buffer start with the binary-corpus magic? The sniff
    /// `vqoe assess` uses to accept either format on one flag.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= BINLOG_MAGIC.len() && bytes[..BINLOG_MAGIC.len()] == BINLOG_MAGIC
    }
}

/// Zero-copy record iterator over a [`BinaryCorpus`] buffer.
#[derive(Debug, Clone)]
pub struct Records<'a> {
    buf: &'a [u8],
    offset: usize,
    index: u64,
    failed: bool,
}

fn read_u16(buf: &[u8], offset: usize) -> Option<u16> {
    let b = buf.get(offset..offset + 2)?;
    Some(u16::from_le_bytes([b[0], b[1]]))
}

fn read_u32(buf: &[u8], offset: usize) -> Option<u32> {
    let b = buf.get(offset..offset + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn read_u64(buf: &[u8], offset: usize) -> Option<u64> {
    let b = buf.get(offset..offset + 8)?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(b);
    Some(u64::from_le_bytes(raw))
}

fn read_f64(buf: &[u8], offset: usize) -> Option<f64> {
    read_u64(buf, offset).map(f64::from_bits)
}

impl<'a> Records<'a> {
    /// Parse the record starting at `self.offset`; `None` means clean
    /// end of buffer.
    fn parse_next(&mut self) -> Option<Result<RecordRef<'a>, BinlogError>> {
        if self.offset == self.buf.len() {
            return None;
        }
        let start = self.offset;
        let truncated = BinlogError::Truncated {
            index: self.index,
            offset: start,
        };
        let Some(body_len) = read_u32(self.buf, start) else {
            return Some(Err(truncated));
        };
        let body = start + 4;
        if (body_len as usize) < RECORD_FIXED_BYTES {
            return Some(Err(BinlogError::BadLength {
                index: self.index,
                len: body_len,
            }));
        }
        let Some(end) = body
            .checked_add(body_len as usize)
            .filter(|&e| e <= self.buf.len())
        else {
            return Some(Err(truncated));
        };
        // The fixed preamble fits (checked above via body_len), so the
        // field reads below cannot fail inside [body, body + FIXED).
        let (Some(timestamp), Some(subscriber_id), Some(bytes), Some(duration)) = (
            read_u64(self.buf, body),
            read_u64(self.buf, body + 8),
            read_u64(self.buf, body + 16),
            read_u64(self.buf, body + 24),
        ) else {
            return Some(Err(truncated));
        };
        let mut transport = [0f64; 8];
        for (i, v) in transport.iter_mut().enumerate() {
            match read_f64(self.buf, body + 32 + 8 * i) {
                Some(x) => *v = x,
                None => return Some(Err(truncated)),
            }
        }
        let (Some(&enc_byte), Some(&kind_byte), Some(&uri_byte)) = (
            self.buf.get(body + 96),
            self.buf.get(body + 97),
            self.buf.get(body + 98),
        ) else {
            return Some(Err(truncated));
        };
        let (Some(host_len), Some(uri_len)) = (
            read_u16(self.buf, body + 99),
            read_u32(self.buf, body + 101),
        ) else {
            return Some(Err(truncated));
        };
        let encrypted = match enc_byte {
            0 => false,
            1 => true,
            v => {
                return Some(Err(BinlogError::BadField {
                    index: self.index,
                    field: "encrypted",
                    value: v,
                }))
            }
        };
        let Some(kind) = kind_from_byte(kind_byte) else {
            return Some(Err(BinlogError::BadField {
                index: self.index,
                field: "kind",
                value: kind_byte,
            }));
        };
        let has_uri = match uri_byte {
            0 => false,
            1 => true,
            v => {
                return Some(Err(BinlogError::BadField {
                    index: self.index,
                    field: "has_uri",
                    value: v,
                }))
            }
        };
        let declared_uri_len = if has_uri { uri_len as u64 } else { 0 };
        if RECORD_FIXED_BYTES as u64 + host_len as u64 + declared_uri_len != body_len as u64 {
            return Some(Err(BinlogError::BadLength {
                index: self.index,
                len: body_len,
            }));
        }
        let host_start = body + RECORD_FIXED_BYTES;
        let uri_start = host_start + host_len as usize;
        let Some(host_bytes) = self.buf.get(host_start..uri_start) else {
            return Some(Err(truncated));
        };
        let Ok(host) = std::str::from_utf8(host_bytes) else {
            return Some(Err(BinlogError::NonUtf8 {
                index: self.index,
                field: "host",
            }));
        };
        let uri = if has_uri {
            let Some(uri_bytes) = self.buf.get(uri_start..end) else {
                return Some(Err(truncated));
            };
            match std::str::from_utf8(uri_bytes) {
                Ok(u) => Some(u),
                Err(_) => {
                    return Some(Err(BinlogError::NonUtf8 {
                        index: self.index,
                        field: "uri",
                    }))
                }
            }
        } else {
            None
        };
        self.offset = end;
        self.index += 1;
        Some(Ok(RecordRef {
            timestamp: Instant(timestamp),
            subscriber_id,
            bytes,
            duration: Duration(duration),
            transport: TransportSummary {
                rtt_min: transport[0],
                rtt_mean: transport[1],
                rtt_max: transport[2],
                bdp_mean: transport[3],
                bif_mean: transport[4],
                bif_max: transport[5],
                loss_frac: transport[6],
                retx_frac: transport[7],
            },
            encrypted,
            kind,
            host,
            uri,
        }))
    }
}

impl<'a> Iterator for Records<'a> {
    type Item = Result<RecordRef<'a>, BinlogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let item = self.parse_next();
        if matches!(item, Some(Err(_))) {
            self.failed = true;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weblog::RECORD_OVERHEAD_BYTES;

    fn entry(host: &str, uri: Option<&str>) -> WeblogEntry {
        WeblogEntry {
            timestamp: Instant::from_millis(10_250),
            subscriber_id: 42,
            host: host.to_string(),
            uri: uri.map(str::to_string),
            bytes: 123_456,
            duration: Duration::from_millis(300),
            transport: TransportSummary {
                rtt_min: 0.05,
                rtt_mean: 0.061,
                rtt_max: 0.083,
                bdp_mean: 60_000.0,
                bif_mean: 20_000.5,
                bif_max: 40_000.0,
                loss_frac: 0.001,
                retx_frac: 0.0,
            },
            encrypted: uri.is_none(),
            kind: EntryKind::MediaChunk,
        }
    }

    fn sample() -> Vec<WeblogEntry> {
        vec![
            entry("r3---sn-abc123.googlevideo.com", None),
            entry(
                "r3---sn-abc123.googlevideo.com",
                Some("/videoplayback?id=abc&itag=243&clen=500000"),
            ),
            entry("m.youtube.com", Some("/watch?v=xyz")),
            WeblogEntry {
                kind: EntryKind::Noise,
                host: String::new(),
                ..entry("", None)
            },
        ]
    }

    #[test]
    fn pack_then_decode_is_bit_identical() {
        let entries = sample();
        let corpus = BinaryCorpus::pack(&entries);
        assert_eq!(corpus.len(), entries.len() as u64);
        assert_eq!(corpus.decode_all().expect("decodes"), entries);
    }

    #[test]
    fn record_refs_borrow_without_allocating() {
        let entries = sample();
        let corpus = BinaryCorpus::pack(&entries);
        let refs: Vec<RecordRef<'_>> = corpus
            .records()
            .collect::<Result<_, _>>()
            .expect("clean corpus iterates");
        assert_eq!(refs.len(), entries.len());
        // The borrowed strings point into the corpus buffer itself.
        let buf_range = corpus.as_bytes().as_ptr_range();
        for (r, e) in refs.iter().zip(&entries) {
            assert_eq!(r.host, e.host);
            assert_eq!(r.uri, e.uri.as_deref());
            if !r.host.is_empty() {
                let p = r.host.as_ptr();
                assert!(buf_range.contains(&p), "host not borrowed from the buffer");
            }
            assert_eq!(&r.to_entry(), e);
        }
    }

    #[test]
    fn round_trip_through_bytes() {
        let corpus = BinaryCorpus::pack(&sample());
        let adopted =
            BinaryCorpus::from_bytes(corpus.as_bytes().to_vec()).expect("valid buffer adopts");
        assert_eq!(adopted, corpus);
    }

    #[test]
    fn tracked_cost_and_record_length_share_one_accounting() {
        // Satellite regression: the memory-budget accounting and the
        // wire-format length prefix must derive their variable part
        // from the same helper. Pin both fixed constants, then assert
        // the shared relation on every sample entry.
        assert_eq!(RECORD_OVERHEAD_BYTES, 192);
        assert_eq!(RECORD_FIXED_BYTES, 105);
        for e in sample() {
            assert_eq!(e.tracked_cost(), RECORD_OVERHEAD_BYTES + e.variable_cost());
            assert_eq!(
                encoded_body_len(&e),
                RECORD_FIXED_BYTES as u64 + e.variable_cost()
            );
            // Therefore the two accountings differ by exactly the two
            // fixed constants, for every possible entry.
            assert_eq!(
                e.tracked_cost() - encoded_body_len(&e),
                RECORD_OVERHEAD_BYTES - RECORD_FIXED_BYTES as u64
            );
        }
        // And the encoder really emits `encoded_body_len` bytes.
        let one = vec![entry("m.youtube.com", Some("/watch?v=a"))];
        let corpus = BinaryCorpus::pack(&one);
        assert_eq!(
            corpus.as_bytes().len(),
            HEADER_BYTES + 4 + encoded_body_len(&one[0]) as usize
        );
    }

    #[test]
    fn header_rejection_is_typed() {
        assert!(matches!(
            BinaryCorpus::from_bytes(vec![1, 2, 3]),
            Err(BinlogError::TruncatedHeader { len: 3 })
        ));
        let mut bad_magic = BinaryCorpus::pack(&sample()).as_bytes().to_vec();
        bad_magic[0] = b'X';
        assert!(matches!(
            BinaryCorpus::from_bytes(bad_magic),
            Err(BinlogError::BadMagic { .. })
        ));
        let mut bad_version = BinaryCorpus::pack(&sample()).as_bytes().to_vec();
        bad_version[4] = 99;
        assert!(matches!(
            BinaryCorpus::from_bytes(bad_version),
            Err(BinlogError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn truncated_bodies_and_bad_fields_are_rejected() {
        let entries = sample();
        let full = BinaryCorpus::pack(&entries).as_bytes().to_vec();

        // Cut mid-record: decode fails with Truncated, not a panic.
        let cut = BinaryCorpus::from_bytes(full[..full.len() - 3].to_vec()).expect("header intact");
        assert!(matches!(
            cut.decode_all(),
            Err(BinlogError::Truncated { .. })
        ));

        // Undefined kind byte in the first record.
        let mut bad_kind = full.clone();
        bad_kind[HEADER_BYTES + 4 + 97] = 9;
        let corpus = BinaryCorpus::from_bytes(bad_kind).expect("header intact");
        assert!(matches!(
            corpus.decode_all(),
            Err(BinlogError::BadField {
                field: "kind",
                value: 9,
                ..
            })
        ));

        // Length prefix lies about the string lengths.
        let mut bad_len = full.clone();
        bad_len[HEADER_BYTES] ^= 1;
        let corpus = BinaryCorpus::from_bytes(bad_len).expect("header intact");
        let err = corpus.decode_all().expect_err("must be rejected");
        assert!(matches!(
            err,
            BinlogError::BadLength { .. } | BinlogError::Truncated { .. }
        ));

        // Header count disagrees with the records present.
        let mut bad_count = full;
        bad_count[8] = bad_count[8].wrapping_add(1);
        let corpus = BinaryCorpus::from_bytes(bad_count).expect("header intact");
        assert!(matches!(
            corpus.decode_all(),
            Err(BinlogError::CountMismatch { .. })
        ));
    }

    #[test]
    fn non_utf8_strings_are_rejected() {
        let entries = vec![entry("host.example", None)];
        let mut bytes = BinaryCorpus::pack(&entries).as_bytes().to_vec();
        let host_start = HEADER_BYTES + 4 + RECORD_FIXED_BYTES;
        bytes[host_start] = 0xFF;
        let corpus = BinaryCorpus::from_bytes(bytes).expect("header intact");
        assert!(matches!(
            corpus.decode_all(),
            Err(BinlogError::NonUtf8 { field: "host", .. })
        ));
    }

    #[test]
    fn sniff_distinguishes_binary_from_jsonl() {
        let corpus = BinaryCorpus::pack(&sample());
        assert!(BinaryCorpus::sniff(corpus.as_bytes()));
        assert!(!BinaryCorpus::sniff(b"{\"timestamp\":0}"));
        assert!(!BinaryCorpus::sniff(b"VQ"));
    }

    #[test]
    fn empty_corpus_round_trips() {
        let corpus = BinaryCorpus::pack(&[]);
        assert!(corpus.is_empty());
        assert_eq!(corpus.as_bytes().len(), HEADER_BYTES);
        assert_eq!(corpus.decode_all().expect("decodes"), Vec::new());
    }

    #[test]
    fn iteration_stops_after_the_first_error() {
        let full = BinaryCorpus::pack(&sample()).as_bytes().to_vec();
        let cut = BinaryCorpus::from_bytes(full[..full.len() - 3].to_vec()).expect("header intact");
        let items: Vec<_> = cut.records().collect();
        assert!(items.last().is_some_and(Result::is_err));
        assert_eq!(
            items.iter().filter(|r| r.is_err()).count(),
            1,
            "exactly one error, then the iterator fuses"
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("vqoe_binlog_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corpus.vqwl");
        let corpus = BinaryCorpus::pack(&sample());
        corpus.write_file(&path).expect("writes");
        let back = BinaryCorpus::read_file(&path).expect("reads");
        assert_eq!(back, corpus);
        let _ = std::fs::remove_file(&path);
    }
}
