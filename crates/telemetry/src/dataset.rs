//! Dataset joining and persistence.
//!
//! §5.2: after reassembly, "the two datasets can be easily joined by
//! matching the respective timestamps and the chunk count per session" —
//! the instrumented handset's ground truth on one side, the proxy's
//! encrypted weblogs on the other. [`join_sessions`] implements that
//! matching; the JSONL helpers persist any serializable dataset line by
//! line so experiment stages can be run and inspected independently.

use crate::error::TelemetryError;
use crate::reassembly::ReassembledSession;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use vqoe_player::SessionTrace;

/// A reassembled encrypted session matched to its ground-truth trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedSession {
    /// Index into the reassembled-session list.
    pub reassembled_idx: usize,
    /// Index into the ground-truth trace list.
    pub trace_idx: usize,
    /// Match quality in [0, 1]: temporal-overlap fraction weighted by
    /// chunk-count agreement.
    pub score: f64,
}

/// Match reassembled sessions to ground-truth traces by time overlap and
/// chunk count (greedy best-first, one-to-one).
pub fn join_sessions(
    reassembled: &[ReassembledSession],
    truths: &[SessionTrace],
) -> Vec<JoinedSession> {
    let mut candidates: Vec<JoinedSession> = Vec::new();
    for (ri, r) in reassembled.iter().enumerate() {
        for (ti, t) in truths.iter().enumerate() {
            let score = match_score(r, t);
            if score > 0.0 {
                candidates.push(JoinedSession {
                    reassembled_idx: ri,
                    trace_idx: ti,
                    score,
                });
            }
        }
    }
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut used_r = vec![false; reassembled.len()];
    let mut used_t = vec![false; truths.len()];
    let mut out = Vec::new();
    for c in candidates {
        if !used_r[c.reassembled_idx] && !used_t[c.trace_idx] {
            used_r[c.reassembled_idx] = true;
            used_t[c.trace_idx] = true;
            out.push(c);
        }
    }
    out.sort_by_key(|j| j.reassembled_idx);
    out
}

fn match_score(r: &ReassembledSession, t: &SessionTrace) -> f64 {
    let (t_start, t_end) = match (t.chunks.first(), t.chunks.last()) {
        (Some(first), Some(last)) => (first.request_time, last.arrival_time),
        _ => return 0.0,
    };
    let overlap_start = r.start.max(t_start);
    let overlap_end = r.end.min(t_end);
    if overlap_end <= overlap_start {
        return 0.0;
    }
    let overlap = overlap_end.duration_since(overlap_start).as_secs_f64();
    let union = r
        .end
        .max(t_end)
        .duration_since(r.start.min(t_start))
        .as_secs_f64();
    let temporal = if union > 0.0 { overlap / union } else { 0.0 };
    let cr = r.chunk_count() as f64;
    let ct = t.chunks.len() as f64;
    let count_agreement = 1.0 - (cr - ct).abs() / cr.max(ct).max(1.0);
    temporal * count_agreement.max(0.0)
}

/// Write `items` to `path` as JSON Lines.
pub fn write_jsonl<T: Serialize>(path: &Path, items: &[T]) -> Result<(), TelemetryError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for (index, item) in items.iter().enumerate() {
        serde_json::to_writer(&mut w, item)
            .map_err(|source| TelemetryError::Serialize { index, source })?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Read a JSON Lines file written by [`write_jsonl`]. Blank lines are
/// skipped; a malformed line is an error (corrupt dataset files should
/// fail loudly, not silently shrink).
pub fn read_jsonl<T: DeserializeOwned>(path: &Path) -> Result<Vec<T>, TelemetryError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let item: T = serde_json::from_str(&line).map_err(|source| TelemetryError::Parse {
            line: lineno + 1,
            source,
        })?;
        out.push(item);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_session, CaptureConfig};
    use crate::reassembly::{reassemble_subscriber, ReassemblyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vqoe_player::{simulate_session, AbrKind, Delivery, SessionConfig};
    use vqoe_simnet::channel::Scenario;
    use vqoe_simnet::rng::SeedSequence;
    use vqoe_simnet::time::{Duration, Instant};

    fn build_world(n: usize) -> (Vec<SessionTrace>, Vec<ReassembledSession>) {
        let seeds = SeedSequence::new(2718);
        let mut rng = StdRng::seed_from_u64(3);
        let mut traces = Vec::new();
        let mut entries = Vec::new();
        let mut t0 = Instant::from_secs(50);
        for i in 0..n {
            let trace = simulate_session(
                &SessionConfig {
                    session_index: i as u64,
                    scenario: Scenario::StaticHome,
                    delivery: Delivery::Dash(AbrKind::Hybrid),
                    start_time: t0,
                    profile: Default::default(),
                },
                &seeds,
            );
            entries.extend(
                capture_session(
                    &trace,
                    &CaptureConfig {
                        encrypted: true,
                        subscriber_id: 1,
                    },
                    &mut rng,
                )
                .expect("simulated traces always capture"),
            );
            t0 = trace.ground_truth.session_end + Duration::from_secs(90);
            traces.push(trace);
        }
        entries.sort_by_key(|e| e.timestamp);
        let sessions = reassemble_subscriber(&entries, &ReassemblyConfig::default());
        (traces, sessions)
    }

    #[test]
    fn join_matches_every_session_to_its_own_trace() {
        let (traces, sessions) = build_world(5);
        assert_eq!(sessions.len(), 5);
        let joined = join_sessions(&sessions, &traces);
        assert_eq!(joined.len(), 5);
        for j in &joined {
            // Sessions were generated and reassembled in the same order.
            assert_eq!(j.reassembled_idx, j.trace_idx);
            assert!(j.score > 0.5, "weak match: {}", j.score);
        }
    }

    #[test]
    fn join_is_one_to_one() {
        let (traces, sessions) = build_world(4);
        let joined = join_sessions(&sessions, &traces);
        let mut rs: Vec<usize> = joined.iter().map(|j| j.reassembled_idx).collect();
        let mut ts: Vec<usize> = joined.iter().map(|j| j.trace_idx).collect();
        rs.sort_unstable();
        rs.dedup();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(rs.len(), joined.len());
        assert_eq!(ts.len(), joined.len());
    }

    #[test]
    fn join_with_empty_inputs() {
        let (traces, _) = build_world(1);
        assert!(join_sessions(&[], &traces).is_empty());
        let (_, sessions) = build_world(1);
        assert!(join_sessions(&sessions, &[]).is_empty());
    }

    #[test]
    fn jsonl_roundtrip() {
        let (traces, _) = build_world(2);
        let dir = std::env::temp_dir().join("vqoe_test_jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.jsonl");
        write_jsonl(&path, &traces).unwrap();
        let back: Vec<SessionTrace> = read_jsonl(&path).unwrap();
        assert_eq!(back, traces);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_rejects_corrupt_lines() {
        let dir = std::env::temp_dir().join("vqoe_test_jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        std::fs::write(&path, "{\"not\": \"a trace\"}\n").unwrap();
        let res: Result<Vec<SessionTrace>, _> = read_jsonl(&path);
        assert!(matches!(
            res,
            Err(crate::error::TelemetryError::Parse { line: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
