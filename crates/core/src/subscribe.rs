//! The typed subscription ingest API: one pass, many detectors.
//!
//! The paper's monitor is three independent detectors applied to the
//! *same* per-session observations (§5): a stall forest, a
//! representation forest and a σ(CUSUM) switch threshold. Historically
//! each caller re-derived those observations through its own entry
//! point (`assess_subscriber`, `assess_corpus`, the streaming
//! assessor's private path). This module inverts that: detectors
//! *subscribe* to a single shared ingest pass, which parses each weblog
//! record exactly once, reassembles sessions once, extracts one
//! [`SessionObs`] per session — and fans the resulting [`SessionView`]
//! out to every registered [`Subscription`].
//!
//! The pieces, bottom-up:
//!
//! * [`Signal`] — what one detector says about one session: a typed
//!   verdict folded into the final [`SessionAssessment`].
//! * [`Subscription`] — the detector-side contract: given a shared,
//!   immutable view, produce a signal. Object-safe, `Send + Sync`, so
//!   a set of subscriptions can be shared across engine workers.
//! * [`SubscriptionSet`] — the registered detectors. Its
//!   [`assess_session`](SubscriptionSet::assess_session) fold is **the**
//!   per-session assessment implementation: [`QoeMonitor`],
//!   [`AssessmentEngine`] and the streaming
//!   [`OnlineAssessor`](crate::online::OnlineAssessor) all route
//!   through it, which is what makes the byte-identity contract
//!   (same corpus → bit-identical [`IngestReport`] on every path, at
//!   any worker count) a structural property instead of a test hope.
//! * [`IngestPipeline`] — the one front door: batch slices, packed
//!   binary corpora ([`BinaryCorpus`], no serde on the hot path) and
//!   single-subscriber streams, all over the same subscription fold.
//!
//! Extension detectors register with
//! [`SubscriptionSet::subscribe`]; their [`Signal::Score`] channel is
//! observable (metrics, logging via interior mutability) without
//! perturbing the report, so adding a fourth detector can never change
//! what the standard three produce.

use vqoe_features::{RqClass, SessionObs, SessionView, StallClass};
use vqoe_obs::{Trace, TraceConfig};
use vqoe_telemetry::{reassemble_subscriber, BinaryCorpus, BinlogError, IngestConfig, WeblogEntry};

use crate::avgrep_pipeline::RepresentationModel;
use crate::digest::SessionDigest;
use crate::engine::{AssessmentEngine, EngineConfig};
use crate::metrics::PipelineMetrics;
use crate::monitor::{Fidelity, QoeMonitor, SessionAssessment};
use crate::online::IngestReport;
use crate::qoe_score::QoeScore;
use crate::stall_pipeline::StallModel;
use crate::switch_pipeline::SwitchModel;

/// One detector's verdict about one session, delivered back to the
/// ingest fold. The three standard channels map onto the fields of
/// [`SessionAssessment`]; [`Signal::Score`] is the extension channel —
/// carried for custom subscriptions, ignored by the fold, so new
/// detectors observe sessions without changing the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Signal {
    /// Predicted stalling severity (§4.1 channel).
    Stall(StallClass),
    /// Predicted average representation (§4.2 channel).
    Representation(RqClass),
    /// Switch detection with its raw σ(CUSUM) score (§4.3 channel).
    Switch {
        /// `score > threshold`, the frozen calibrated decision.
        detected: bool,
        /// The raw σ(CUSUM) score behind the boolean.
        score: f64,
    },
    /// An extension detector's raw per-session score. Folded into
    /// nothing: the standard report shape is closed.
    Score(f64),
}

/// A detector registered against the shared ingest pass.
///
/// Implementations receive every session exactly once, as an immutable
/// [`SessionView`] borrowed from the single shared extraction — no
/// subscriber can re-parse, mutate or starve another. `Send + Sync` is
/// part of the contract: the same set is shared by reference across
/// the parallel engine's workers.
pub trait Subscription: Send + Sync {
    /// Stable name (reports, metrics, debugging).
    fn name(&self) -> &'static str;

    /// Observe one session and return a verdict.
    fn deliver(&self, view: &SessionView<'_>) -> Signal;

    /// Observe one *sketched* session: the view's [`SessionObs`] holds
    /// only the exact prefix, while `digest` summarizes every chunk
    /// (running moments, quantile sketches, streaming switch score).
    /// Detectors that can assess from the digest should override this;
    /// the default falls back to the exact-prefix view, which is still
    /// a valid (if truncated) observation of the session.
    fn deliver_sketched(&self, view: &SessionView<'_>, digest: &SessionDigest) -> Signal {
        let _ = digest;
        self.deliver(view)
    }
}

impl<S: Subscription + ?Sized> Subscription for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn deliver(&self, view: &SessionView<'_>) -> Signal {
        (**self).deliver(view)
    }

    fn deliver_sketched(&self, view: &SessionView<'_>, digest: &SessionDigest) -> Signal {
        (**self).deliver_sketched(view, digest)
    }
}

/// The §4.1 stall detector as a subscription (borrows the frozen
/// model).
#[derive(Debug, Clone, Copy)]
pub struct StallSubscription<'m> {
    model: &'m StallModel,
}

impl<'m> StallSubscription<'m> {
    /// Subscribe a frozen stall model.
    pub fn new(model: &'m StallModel) -> Self {
        StallSubscription { model }
    }
}

impl Subscription for StallSubscription<'_> {
    fn name(&self) -> &'static str {
        "stall"
    }

    fn deliver(&self, view: &SessionView<'_>) -> Signal {
        Signal::Stall(self.model.predict(view.obs))
    }

    fn deliver_sketched(&self, _view: &SessionView<'_>, digest: &SessionDigest) -> Signal {
        Signal::Stall(
            self.model
                .predict_from_features(&digest.features.stall_features_approx()),
        )
    }
}

/// The §4.2 average-representation detector as a subscription (borrows
/// the frozen model).
#[derive(Debug, Clone, Copy)]
pub struct RepresentationSubscription<'m> {
    model: &'m RepresentationModel,
}

impl<'m> RepresentationSubscription<'m> {
    /// Subscribe a frozen representation model.
    pub fn new(model: &'m RepresentationModel) -> Self {
        RepresentationSubscription { model }
    }
}

impl Subscription for RepresentationSubscription<'_> {
    fn name(&self) -> &'static str {
        "representation"
    }

    fn deliver(&self, view: &SessionView<'_>) -> Signal {
        Signal::Representation(self.model.predict(view.obs))
    }

    fn deliver_sketched(&self, _view: &SessionView<'_>, digest: &SessionDigest) -> Signal {
        Signal::Representation(
            self.model
                .predict_from_features(&digest.features.representation_features_approx()),
        )
    }
}

/// The §4.3 switch detector as a subscription (borrows the frozen
/// threshold model).
#[derive(Debug, Clone, Copy)]
pub struct SwitchSubscription<'m> {
    model: &'m SwitchModel,
}

impl<'m> SwitchSubscription<'m> {
    /// Subscribe a frozen switch model.
    pub fn new(model: &'m SwitchModel) -> Self {
        SwitchSubscription { model }
    }
}

impl Subscription for SwitchSubscription<'_> {
    fn name(&self) -> &'static str {
        "switch"
    }

    fn deliver(&self, view: &SessionView<'_>) -> Signal {
        let score = self.model.score(view.obs);
        Signal::Switch {
            detected: score > self.model.threshold(),
            score,
        }
    }

    fn deliver_sketched(&self, _view: &SessionView<'_>, digest: &SessionDigest) -> Signal {
        // The digest's streaming CUSUM was configured from this model's
        // frozen scoring parameters at sink-install time, so the score
        // answers the same question against the same threshold.
        let score = digest.switch.score();
        Signal::Switch {
            detected: score > self.model.threshold(),
            score,
        }
    }
}

/// The detectors registered against one ingest pass.
///
/// [`SubscriptionSet::standard`] is the paper's trio;
/// [`SubscriptionSet::subscribe`] adds extension detectors. The
/// [`assess_session`](SubscriptionSet::assess_session) fold is the
/// single per-session assessment implementation every entry point
/// routes through.
pub struct SubscriptionSet<'m> {
    subs: Vec<Box<dyn Subscription + 'm>>,
}

impl<'m> SubscriptionSet<'m> {
    /// An empty set (register detectors with
    /// [`SubscriptionSet::subscribe`]).
    pub fn new() -> Self {
        SubscriptionSet { subs: Vec::new() }
    }

    /// The paper's three detectors, subscribed against a trained
    /// monitor's frozen models.
    pub fn standard(monitor: &'m QoeMonitor) -> Self {
        let mut set = SubscriptionSet::new();
        set.subscribe(Box::new(StallSubscription::new(&monitor.stall_model)));
        set.subscribe(Box::new(RepresentationSubscription::new(
            &monitor.representation_model,
        )));
        set.subscribe(Box::new(SwitchSubscription::new(&monitor.switch_model)));
        set
    }

    /// Register one more detector. Later signals on the same channel
    /// overwrite earlier ones, so standard detectors should come first
    /// and extensions should use [`Signal::Score`].
    pub fn subscribe(&mut self, sub: Box<dyn Subscription + 'm>) {
        self.subs.push(sub);
    }

    /// Names of the registered detectors, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.subs.iter().map(|s| s.name()).collect()
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether no detector is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Fan one session's shared view out to every subscription and
    /// fold the signals into an assessment.
    ///
    /// This is *the* per-session assessment: `QoeMonitor::assess_session`
    /// delegates here, and with the standard set the result is
    /// bit-identical to the historical hand-rolled computation (same
    /// frozen models, same decision rule, same composite score).
    pub fn assess_session(&self, view: SessionView<'_>) -> SessionAssessment {
        self.assess_session_observed(view, |_, _| {})
    }

    /// Like [`SubscriptionSet::assess_session`], but invokes `observe`
    /// with `(index, name)` immediately before each subscription's
    /// `deliver` call — the hook the session tracer uses to record one
    /// deliver span per detector. The returned assessment is
    /// bit-identical to the unobserved fold.
    pub fn assess_session_observed(
        &self,
        view: SessionView<'_>,
        mut observe: impl FnMut(usize, &'static str),
    ) -> SessionAssessment {
        self.fold_signals(view, view.obs.len(), |sub, idx| {
            observe(idx, sub.name());
            sub.deliver(&view)
        })
    }

    /// The sketched-tier fold: every subscription is delivered the
    /// exact-prefix view *plus* the whole-session [`SessionDigest`]
    /// (via [`Subscription::deliver_sketched`]), and the chunk count
    /// comes from the digest — which saw every chunk — rather than the
    /// truncated view. Callers tag the result `Fidelity::Sketched` (or
    /// worse) with [`SessionAssessment::with_fidelity`].
    pub fn assess_session_sketched(
        &self,
        view: SessionView<'_>,
        digest: &SessionDigest,
    ) -> SessionAssessment {
        self.fold_signals(view, digest.chunk_count() as usize, |sub, _| {
            sub.deliver_sketched(&view, digest)
        })
    }

    fn fold_signals(
        &self,
        view: SessionView<'_>,
        chunk_count: usize,
        mut deliver: impl FnMut(&(dyn Subscription + 'm), usize) -> Signal,
    ) -> SessionAssessment {
        let mut stall = StallClass::NoStalls;
        let mut representation = RqClass::Ld;
        let mut has_quality_switches = false;
        let mut switch_score = 0.0;
        for (idx, sub) in self.subs.iter().enumerate() {
            match deliver(sub.as_ref(), idx) {
                Signal::Stall(c) => stall = c,
                Signal::Representation(c) => representation = c,
                Signal::Switch { detected, score } => {
                    has_quality_switches = detected;
                    switch_score = score;
                }
                Signal::Score(_) => {}
            }
        }
        SessionAssessment {
            start: view.start,
            end: view.end,
            chunk_count,
            stall,
            representation,
            has_quality_switches,
            switch_score,
            qoe: QoeScore::from_assessment(stall, representation, has_quality_switches),
            partial: false,
            fidelity: Fidelity::Full,
        }
    }
}

impl Default for SubscriptionSet<'_> {
    fn default() -> Self {
        SubscriptionSet::new()
    }
}

impl std::fmt::Debug for SubscriptionSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionSet")
            .field("subscriptions", &self.names())
            .finish()
    }
}

/// The one front door for assessing weblog traffic.
///
/// Wraps a trained [`QoeMonitor`] and routes every input shape through
/// the same shared ingest pass and subscription fold:
///
/// * [`assess`](IngestPipeline::assess) — a whole tap capture (any mix
///   of subscribers), sharded across workers by the parallel engine.
/// * [`assess_binary`](IngestPipeline::assess_binary) — the same, from
///   a packed [`BinaryCorpus`]: records decode straight from the byte
///   buffer, no serde on the replay hot path.
/// * [`assess_subscriber`](IngestPipeline::assess_subscriber) — one
///   subscriber's stream, sequentially.
///
/// All three honour the byte-identity contract: the same records
/// produce a bit-identical [`IngestReport`] (or assessment sequence)
/// regardless of input encoding or worker count.
#[derive(Debug, Clone)]
pub struct IngestPipeline<'m> {
    monitor: &'m QoeMonitor,
    engine: EngineConfig,
    ingest: IngestConfig,
    metrics: Option<PipelineMetrics>,
}

impl<'m> IngestPipeline<'m> {
    /// A pipeline over a trained monitor with default engine and
    /// hardening parameters.
    pub fn new(monitor: &'m QoeMonitor) -> Self {
        IngestPipeline {
            monitor,
            engine: EngineConfig::default(),
            ingest: IngestConfig::default(),
            metrics: None,
        }
    }

    /// Set the parallel-engine knobs (workers, shards, queue depth).
    /// Never changes the output, only wall-clock.
    pub fn with_engine(mut self, config: EngineConfig) -> Self {
        self.engine = config;
        self
    }

    /// Set the ingest-hardening knobs (anomaly caps, reorder windows).
    pub fn with_ingest(mut self, config: IngestConfig) -> Self {
        self.ingest = config;
        self
    }

    /// Attach a metrics bundle; the output stays bit-identical.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The monitor this pipeline assesses with.
    pub fn monitor(&self) -> &'m QoeMonitor {
        self.monitor
    }

    /// The engine configuration in effect.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.engine
    }

    fn build_engine(&self) -> AssessmentEngine<'m> {
        let engine = AssessmentEngine::with_ingest(self.monitor, self.engine, self.ingest);
        match &self.metrics {
            Some(m) => engine.with_metrics(m.clone()),
            None => engine,
        }
    }

    /// Assess a whole tap capture (any mix of subscribers, in arrival
    /// order): one shared pass over the records, sharded across
    /// workers, every session fanned out to the standard
    /// subscriptions. Bit-identical to the sequential streaming path
    /// at any worker count.
    pub fn assess(&self, entries: &[WeblogEntry]) -> IngestReport {
        self.build_engine().assess(entries)
    }

    /// Like [`IngestPipeline::assess`], with session tracing: every
    /// emitted session additionally records its span chain (ingest →
    /// reassemble → fan-out → per-detector deliver) into a merged
    /// [`Trace`], byte-stable across runs and worker counts. The report
    /// is bit-identical to the untraced pass.
    pub fn assess_traced(
        &self,
        entries: &[WeblogEntry],
        trace_cfg: TraceConfig,
    ) -> (IngestReport, Trace) {
        self.build_engine().assess_traced(entries, trace_cfg)
    }

    /// Assess a packed binary corpus: decode records straight from the
    /// length-prefixed byte buffer (zero serde), then run the same
    /// shared pass as [`IngestPipeline::assess`]. The report is
    /// bit-identical to assessing the equivalent JSONL decode.
    pub fn assess_binary(&self, corpus: &BinaryCorpus) -> Result<IngestReport, BinlogError> {
        let entries = corpus.decode_all()?;
        Ok(self.assess(&entries))
    }

    /// Assess one subscriber's raw (possibly encrypted) stream
    /// sequentially: reassemble sessions once, then fan each session's
    /// view out to the standard subscriptions.
    pub fn assess_subscriber(&self, entries: &[WeblogEntry]) -> Vec<SessionAssessment> {
        let subs = SubscriptionSet::standard(self.monitor);
        reassemble_subscriber(entries, &self.monitor.reassembly)
            .iter()
            .map(|session| {
                let obs = SessionObs::from_reassembled(session);
                subs.assess_session(SessionView::over(&obs, session))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encrypted::{EncryptedEvalConfig, EncryptedWorld};
    use crate::monitor::TrainingConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn monitor() -> QoeMonitor {
        QoeMonitor::train(&TrainingConfig {
            cleartext_sessions: 250,
            adaptive_sessions: 150,
            seed: 81,
            ..TrainingConfig::default()
        })
    }

    fn world(seed: u64, sessions: usize) -> EncryptedWorld {
        let mut config = EncryptedEvalConfig::paper_default(seed);
        config.spec.n_sessions = sessions;
        EncryptedWorld::build(&config).expect("simulated world builds")
    }

    #[test]
    fn standard_set_registers_the_papers_trio_in_order() {
        let m = monitor();
        let set = SubscriptionSet::standard(&m);
        assert_eq!(set.names(), vec!["stall", "representation", "switch"]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert!(SubscriptionSet::default().is_empty());
    }

    #[test]
    fn subscription_fold_matches_the_legacy_assessment_exactly() {
        let m = monitor();
        let set = SubscriptionSet::standard(&m);
        let w = world(82, 10);
        let sessions = reassemble_subscriber(&w.entries, &m.reassembly);
        assert!(!sessions.is_empty());
        for session in &sessions {
            let obs = SessionObs::from_reassembled(session);
            let legacy = m.assess_session(&obs, session.start, session.end);
            let folded = set.assess_session(SessionView::over(&obs, session));
            assert_eq!(legacy, folded);
        }
    }

    #[test]
    fn pipeline_assess_subscriber_matches_the_monitor_shim() {
        let m = monitor();
        let w = world(83, 8);
        let via_pipeline = IngestPipeline::new(&m).assess_subscriber(&w.entries);
        #[allow(deprecated)]
        let via_monitor = m.assess_subscriber(&w.entries);
        assert!(!via_pipeline.is_empty());
        assert_eq!(via_pipeline, via_monitor);
    }

    #[test]
    fn extension_subscription_sees_every_session_without_changing_the_report() {
        struct CountingProbe {
            delivered: AtomicUsize,
        }
        impl Subscription for CountingProbe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn deliver(&self, view: &SessionView<'_>) -> Signal {
                self.delivered.fetch_add(1, Ordering::Relaxed);
                Signal::Score(view.chunk_count() as f64)
            }
        }

        let m = monitor();
        let probe = CountingProbe {
            delivered: AtomicUsize::new(0),
        };
        let mut set = SubscriptionSet::standard(&m);
        set.subscribe(Box::new(&probe as &dyn Subscription));
        assert_eq!(set.len(), 4);

        let baseline = SubscriptionSet::standard(&m);
        let w = world(84, 6);
        let sessions = reassemble_subscriber(&w.entries, &m.reassembly);
        assert!(!sessions.is_empty());
        for session in &sessions {
            let obs = SessionObs::from_reassembled(session);
            let with_probe = set.assess_session(SessionView::over(&obs, session));
            let without = baseline.assess_session(SessionView::over(&obs, session));
            assert_eq!(with_probe, without, "Score channel must not leak");
        }
        assert_eq!(probe.delivered.load(Ordering::Relaxed), sessions.len());
    }

    #[test]
    fn binary_replay_report_is_bit_identical_to_slice_replay() {
        let m = monitor();
        let w = world(85, 10);
        let pipeline = IngestPipeline::new(&m);
        let from_slice = pipeline.assess(&w.entries);
        let corpus = BinaryCorpus::pack(&w.entries);
        let from_binary = pipeline.assess_binary(&corpus).expect("valid corpus");
        assert_eq!(from_slice, from_binary);
        assert!(!from_slice.assessments.is_empty());
    }
}
