//! Composite QoE (MOS) estimation from the three detected impairments.
//!
//! The paper stops at detecting the impairment *factors*; its §2.2
//! surveys how each maps to Mean Opinion Scores — stalls dominate
//! (Hoßfeld et al. \[8\]: two 3-second stalls already cost "significantly
//! lower MOS"; Mok et al. \[9\]: medium rebuffering frequency costs ~2 MOS
//! points), representation quality sets the achievable ceiling
//! (Lewcio et al. \[10\]), and switching amplitude erodes it (Hoßfeld et
//! al. \[11\]). This module composes the detector outputs into a single
//! 1–5 score an operator dashboard can rank sessions by.
//!
//! The mapping is a deliberately simple, monotone, fully documented
//! model in the spirit of those studies — not a fitted replica of any
//! one of them (their subjects, content and scales all differ):
//!
//! ```text
//! MOS = clamp( base(quality) − stall_penalty(severity)
//!                            − switch_penalty(detected), 1, 5 )
//! ```

use serde::{Deserialize, Serialize};
use vqoe_features::{RqClass, StallClass};

/// Base MOS by average representation class, before impairments: the
/// ceiling a perfectly smooth session of that quality reaches on a
/// small screen (Lewcio et al. observe higher representations track
/// better MOS, saturating at the display's ability to show them).
pub fn base_mos(quality: RqClass) -> f64 {
    match quality {
        RqClass::Ld => 3.4,
        RqClass::Sd => 4.2,
        RqClass::Hd => 4.7,
    }
}

/// MOS penalty by stall severity. Calibrated to the §2.2 citations:
/// mild stalling (a few short rebufferings) costs about one MOS point,
/// severe stalling (RR > 0.1, the abandonment regime of Krishnan et
/// al. \[14\]) collapses the experience toward the bottom of the scale.
pub fn stall_penalty(stall: StallClass) -> f64 {
    match stall {
        StallClass::NoStalls => 0.0,
        StallClass::Mild => 1.0,
        StallClass::Severe => 2.4,
    }
}

/// MOS penalty for detected representation switching (Hoßfeld et
/// al. \[11\]: amplitude matters most; our binary detector fires on the
/// high-amplitude patterns CUSUM exposes, so a flat moderate penalty is
/// the honest granularity).
pub fn switch_penalty(has_switches: bool) -> f64 {
    if has_switches {
        0.4
    } else {
        0.0
    }
}

/// A composed session QoE estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeScore {
    /// The composite 1–5 Mean Opinion Score estimate.
    pub mos: f64,
    /// Quality ceiling before impairments.
    pub base: f64,
    /// Deduction attributed to stalling.
    pub stall_penalty: f64,
    /// Deduction attributed to representation switching.
    pub switch_penalty: f64,
}

impl QoeScore {
    /// Compose a score from detector outputs.
    pub fn from_assessment(stall: StallClass, quality: RqClass, has_switches: bool) -> QoeScore {
        let base = base_mos(quality);
        let sp = stall_penalty(stall);
        let wp = switch_penalty(has_switches);
        QoeScore {
            mos: (base - sp - wp).clamp(1.0, 5.0),
            base,
            stall_penalty: sp,
            switch_penalty: wp,
        }
    }

    /// Operator triage bucket: sessions below 2.5 are the paper's
    /// abandonment-risk population.
    pub fn is_poor(&self) -> bool {
        self.mos < 2.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mos(stall: StallClass, rq: RqClass, sw: bool) -> f64 {
        QoeScore::from_assessment(stall, rq, sw).mos
    }

    #[test]
    fn smooth_hd_scores_best_and_severe_ld_worst() {
        let best = mos(StallClass::NoStalls, RqClass::Hd, false);
        let worst = mos(StallClass::Severe, RqClass::Ld, true);
        assert!(best > 4.5);
        assert!(worst <= 1.1);
        assert!(best > worst + 3.0);
    }

    #[test]
    fn mos_is_monotone_in_each_factor() {
        for rq in [RqClass::Ld, RqClass::Sd, RqClass::Hd] {
            for sw in [false, true] {
                assert!(
                    mos(StallClass::NoStalls, rq, sw) >= mos(StallClass::Mild, rq, sw),
                    "stalls must not improve MOS"
                );
                assert!(mos(StallClass::Mild, rq, sw) >= mos(StallClass::Severe, rq, sw));
            }
        }
        for stall in [StallClass::NoStalls, StallClass::Mild, StallClass::Severe] {
            for sw in [false, true] {
                assert!(mos(stall, RqClass::Hd, sw) >= mos(stall, RqClass::Sd, sw));
                assert!(mos(stall, RqClass::Sd, sw) >= mos(stall, RqClass::Ld, sw));
            }
            assert!(mos(stall, RqClass::Sd, false) >= mos(stall, RqClass::Sd, true));
        }
    }

    #[test]
    fn stalls_dominate_switching() {
        // §2.2's consistent finding: rebuffering is the worst impairment.
        assert!(stall_penalty(StallClass::Mild) > switch_penalty(true));
        assert!(stall_penalty(StallClass::Severe) > 2.0 * switch_penalty(true));
    }

    #[test]
    fn scores_stay_on_the_mos_scale() {
        for stall in [StallClass::NoStalls, StallClass::Mild, StallClass::Severe] {
            for rq in [RqClass::Ld, RqClass::Sd, RqClass::Hd] {
                for sw in [false, true] {
                    let s = QoeScore::from_assessment(stall, rq, sw);
                    assert!((1.0..=5.0).contains(&s.mos), "{s:?}");
                }
            }
        }
    }

    #[test]
    fn poor_bucket_captures_the_abandonment_regime() {
        assert!(QoeScore::from_assessment(StallClass::Severe, RqClass::Ld, false).is_poor());
        assert!(QoeScore::from_assessment(StallClass::Severe, RqClass::Sd, true).is_poor());
        assert!(!QoeScore::from_assessment(StallClass::NoStalls, RqClass::Ld, true).is_poor());
    }
}
