//! The §4.2 average-representation pipeline: 210-feature construction,
//! CFS selection to the Table-5 subset, training and evaluation.

use crate::metrics::PipelineMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqoe_features::representation::{representation_feature_names, representation_features};
use vqoe_features::{RqClass, SessionObs};
use vqoe_ml::selection::{cfs_best_first_with, info_gain_ranking_with, RankedFeature};
use vqoe_ml::{
    cross_validate_with, ConfusionMatrix, Dataset, ForestConfig, RandomForest, TrainConfig,
};
use vqoe_player::SessionTrace;

/// Target size of the selected subset (the paper lands on 15 features,
/// Table 5); used as an info-gain fallback floor when CFS returns fewer.
pub const TARGET_SUBSET_SIZE: usize = 15;

/// A trained, deployable average-representation detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepresentationModel {
    /// The classifier over the selected features.
    pub forest: RandomForest,
    /// Indices of the selected features in the 210-dim space.
    pub selected_indices: Vec<usize>,
    /// Names of the selected features.
    pub selected_names: Vec<String>,
}

impl RepresentationModel {
    /// Project a full 210-dim feature vector onto the selected subspace.
    pub fn project(&self, full: &[f64]) -> Vec<f64> {
        self.selected_indices.iter().map(|&i| full[i]).collect()
    }

    /// Classify one session's average representation from its
    /// network-visible observations.
    pub fn predict(&self, obs: &SessionObs) -> RqClass {
        self.predict_from_features(&representation_features(obs))
    }

    /// Classify from an already-built 210-dim feature vector — exact
    /// ([`representation_features`]) or approximate (the streaming
    /// `Fidelity::Sketched` path).
    pub fn predict_from_features(&self, full: &[f64]) -> RqClass {
        let row = self.project(full);
        match self.forest.predict(&row) {
            0 => RqClass::Ld,
            1 => RqClass::Sd,
            _ => RqClass::Hd,
        }
    }

    /// Evaluate the frozen model on a labelled 210-dim dataset.
    pub fn evaluate(&self, full_dataset: &Dataset) -> ConfusionMatrix {
        let reduced = full_dataset.select_features(&self.selected_indices);
        let preds = self.forest.predict_all(&reduced);
        ConfusionMatrix::from_predictions(full_dataset.class_names.clone(), &full_dataset.y, &preds)
    }
}

/// Training outputs: the Table-5 feature list, Tables 6–7, the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepresentationTrainingReport {
    /// Selected features with information gains, ranked (Table 5).
    pub selected: Vec<RankedFeature>,
    /// Aggregated 10-fold CV confusion matrix (Tables 6 and 7).
    pub cv_matrix: ConfusionMatrix,
    /// LD/SD/HD counts of the raw corpus (paper: 57 % / 38 % / 5 %).
    pub class_counts: Vec<usize>,
    /// CV folds that contributed no predictions (empty test or training
    /// side); `0` on any reasonably sized corpus.
    pub cv_skipped_folds: usize,
    /// The deployable model.
    pub model: RepresentationModel,
}

/// Train the average-representation detector on adaptive sessions.
pub fn train_representation_detector(
    traces: &[SessionTrace],
    forest_config: ForestConfig,
    seed: u64,
) -> RepresentationTrainingReport {
    train_representation_detector_with(traces, forest_config, seed, TrainConfig::sequential(), None)
}

/// [`train_representation_detector`] with an explicit worker policy and
/// optional metric recording; output is byte-identical at any worker
/// count.
pub fn train_representation_detector_with(
    traces: &[SessionTrace],
    forest_config: ForestConfig,
    seed: u64,
    train: TrainConfig,
    metrics: Option<&PipelineMetrics>,
) -> RepresentationTrainingReport {
    let full = vqoe_features::build_representation_dataset(traces);
    train_representation_detector_on_with(&full, forest_config, seed, train, metrics)
}

/// Train from a pre-built 210-dim dataset.
pub fn train_representation_detector_on(
    full: &Dataset,
    forest_config: ForestConfig,
    seed: u64,
) -> RepresentationTrainingReport {
    train_representation_detector_on_with(
        full,
        forest_config,
        seed,
        TrainConfig::sequential(),
        None,
    )
}

/// [`train_representation_detector_on`] with an explicit worker policy
/// and optional metric recording.
pub fn train_representation_detector_on_with(
    full: &Dataset,
    forest_config: ForestConfig,
    seed: u64,
    train: TrainConfig,
    metrics: Option<&PipelineMetrics>,
) -> RepresentationTrainingReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let balanced = full.balanced_downsample(&mut rng);

    let mut selected_idx = cfs_best_first_with(&balanced, 5, train);
    let ranking = info_gain_ranking_with(&balanced, train);
    if selected_idx.len() < TARGET_SUBSET_SIZE {
        for r in &ranking {
            if selected_idx.len() >= TARGET_SUBSET_SIZE {
                break;
            }
            if !selected_idx.contains(&r.index) {
                selected_idx.push(r.index);
            }
        }
    }
    let mut selected: Vec<RankedFeature> = ranking
        .iter()
        .filter(|r| selected_idx.contains(&r.index))
        .cloned()
        .collect();
    selected.sort_by(|a, b| b.gain.total_cmp(&a.gain));
    let ordered_idx: Vec<usize> = selected.iter().map(|r| r.index).collect();

    let reduced = full.select_features(&ordered_idx);
    let cv = cross_validate_with(
        &reduced,
        crate::stall_pipeline::CV_FOLDS,
        forest_config,
        true,
        seed,
        train,
    );

    let final_train = reduced.balanced_downsample(&mut rng);
    let forest = RandomForest::fit_with(&final_train, forest_config, train);
    if let Some(m) = metrics {
        m.observe_cv(&cv);
        m.observe_fit(forest_config.n_trees);
    }
    let names = representation_feature_names();

    RepresentationTrainingReport {
        selected,
        cv_matrix: cv.matrix,
        class_counts: full.class_counts(),
        cv_skipped_folds: cv.skipped_folds,
        model: RepresentationModel {
            forest,
            selected_names: ordered_idx.iter().map(|&i| names[i].clone()).collect(),
            selected_indices: ordered_idx,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_traces;
    use crate::spec::DatasetSpec;

    fn adaptive_corpus(n: usize, seed: u64) -> Vec<SessionTrace> {
        generate_traces(&DatasetSpec::adaptive_default(n, seed))
    }

    #[test]
    fn training_produces_a_usable_model() {
        let traces = adaptive_corpus(300, 21);
        let report = train_representation_detector(&traces, ForestConfig::default(), 1);
        assert!(report.selected.len() >= 10);
        assert_eq!(report.cv_matrix.total() as usize, traces.len());
        let obs = SessionObs::from_trace(&traces[0]);
        let _ = report.model.predict(&obs);
    }

    #[test]
    fn cv_accuracy_beats_chance_comfortably() {
        let traces = adaptive_corpus(400, 22);
        let report = train_representation_detector(&traces, ForestConfig::default(), 2);
        assert!(
            report.cv_matrix.accuracy() > 0.6,
            "cv accuracy {}",
            report.cv_matrix.accuracy()
        );
    }

    #[test]
    fn chunk_size_statistics_lead_the_table5_ranking() {
        // §4.2: "statistics derived from the chunk size are the ones with
        // the highest rank and represent the vast majority of the 15".
        let traces = adaptive_corpus(500, 23);
        let report = train_representation_detector(&traces, ForestConfig::default(), 3);
        let top5: Vec<&str> = report
            .selected
            .iter()
            .take(5)
            .map(|r| r.name.as_str())
            .collect();
        // "Size-derived" per the paper's own Table 5, which mixes chunk
        // size percentiles, chunk avg size and chunk Δsize entries.
        let chunk_size_in_top5 = top5
            .iter()
            .filter(|n| {
                n.contains("chunk size")
                    || n.contains("chunk avg size")
                    || n.contains("chunk Δsize")
            })
            .count();
        assert!(
            chunk_size_in_top5 >= 3,
            "chunk-size features not dominant: {top5:?}"
        );
    }

    #[test]
    fn class_counts_skew_toward_low_definition() {
        // Paper priors: 57 % LD / 38 % SD / 5 % HD. Direction matters:
        // LD+SD must dominate HD by an order of magnitude.
        let traces = adaptive_corpus(500, 24);
        let report = train_representation_detector(&traces, ForestConfig::default(), 4);
        let [ld, sd, hd] = [
            report.class_counts[0],
            report.class_counts[1],
            report.class_counts[2],
        ];
        assert!(ld + sd > hd * 5, "LD {ld} SD {sd} HD {hd}");
        assert!(hd > 0, "need at least some HD sessions to train on");
    }

    #[test]
    fn training_is_deterministic() {
        let traces = adaptive_corpus(200, 25);
        let a = train_representation_detector(&traces, ForestConfig::default(), 5);
        let b = train_representation_detector(&traces, ForestConfig::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_training_is_byte_identical_to_sequential() {
        let traces = adaptive_corpus(200, 26);
        let reference = train_representation_detector(&traces, ForestConfig::default(), 5);
        for workers in [2usize, 7] {
            let got = train_representation_detector_with(
                &traces,
                ForestConfig::default(),
                5,
                TrainConfig::with_workers(workers),
                None,
            );
            assert_eq!(reference, got, "workers {workers}");
        }
    }
}
