//! The sharded parallel assessment engine.
//!
//! The paper's monitor sits behind an operator tap carrying "heavy
//! traffic from millions of users"; after §5.2 reassembly, subscribers
//! are mutually independent, which makes the subscriber the natural
//! unit of parallelism. [`AssessmentEngine`] exploits that:
//!
//! 1. **Shard** — every weblog entry is routed to one of
//!    [`EngineConfig::shards`] shards by a deterministic hash of its
//!    subscriber id ([`shard_of`]), so a subscriber's whole stream
//!    lands on exactly one shard.
//! 2. **Fan out** — shard jobs flow through a bounded work queue (depth
//!    [`EngineConfig::queue_depth`], producer blocks when workers fall
//!    behind — backpressure, not unbounded buffering) onto
//!    [`EngineConfig::workers`] threads using the same vendored
//!    `crossbeam::scope` pattern as `crate::generate`. Each worker runs
//!    reassembly → feature construction → frozen-model inference for
//!    its shard's subscribers one at a time, so peak open reassembly
//!    state is one subscriber per worker.
//! 3. **Reduce** — per-shard results carry *emission keys* that encode
//!    where the sequential [`OnlineAssessor`](crate::online::OnlineAssessor)
//!    would have emitted each assessment; a deterministic ordered merge
//!    sorts on those keys, so the output is **bit-identical** to the
//!    sequential path at any worker count (asserted by the
//!    `engine_parallel` integration tests). [`StreamHealth`] counters
//!    sum per shard, and the per-shard [`AnomalyLog`]s merge back into
//!    exactly the global first-`cap` record set.
//!
//! Emission keys: an assessment produced while pushing the entry with
//! global arrival index `g` gets key `(0, g, k)` (`k` = its position in
//! that push's output); an assessment emitted by the end-of-stream
//! finish of subscriber `s` gets `(1, s, k)`. Sorting reproduces the
//! sequential order exactly: mid-stream emissions in arrival order
//! first, then finish emissions in subscriber-id order (the order
//! `OnlineAssessor::finish` walks its subscriber map).

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex as StdMutex};

use vqoe_features::{SessionObs, SessionView};
use vqoe_obs::{SimClock, StageSpan, Trace, TraceConfig, TraceEvent, TraceSink, TraceStage};
use vqoe_telemetry::{
    AnomalyKindCounts, AnomalyLog, IngestAnomaly, IngestConfig, ReassembledSession,
    RobustReassembler, StreamHealth, WeblogEntry,
};

use crate::digest::{claim_digest, install_digest_sink, SessionDigest};
use crate::metrics::PipelineMetrics;
use crate::monitor::{Fidelity, QoeMonitor, SessionAssessment};
use crate::online::{IngestReport, ShedLog};
use crate::subscribe::SubscriptionSet;

/// Knobs of the parallel engine. All defaults are safe for production;
/// the output is bit-identical for every combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `0` means auto: `available_parallelism`, capped
    /// at 16 (the same policy as parallel trace generation).
    pub workers: usize,
    /// Number of shards the subscriber space is hashed onto. More
    /// shards than workers keeps the queue busy when shard sizes are
    /// skewed.
    pub shards: usize,
    /// Bounded work-queue depth: at most this many shard jobs are
    /// in flight beyond the ones workers already hold; the producer
    /// blocks (backpressure) rather than buffering without bound.
    pub queue_depth: usize,
    /// Simulated per-shard tap-read latency in microseconds, for
    /// throughput harnesses that model an I/O-bound tap (each worker
    /// sleeps this long before processing a shard job, as if paging
    /// the shard's slice from the tap spool). Production paths leave
    /// this at 0; it never affects output, only timing.
    pub shard_pacing_micros: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            shards: 32,
            queue_depth: 8,
            shard_pacing_micros: 0,
        }
    }
}

impl EngineConfig {
    /// The effective worker count: `workers`, with `0` resolved to the
    /// machine's available parallelism (capped at 16), and never more
    /// than the shard count (excess workers would only idle).
    pub fn effective_workers(&self) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(16);
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.max(1).min(self.shards.max(1))
    }
}

/// Deterministic shard routing: a splitmix64 finalizer over the
/// subscriber id, reduced modulo `shards`. Stable across runs and
/// platforms, well-mixed even for sequential ids.
pub fn shard_of(subscriber_id: u64, shards: usize) -> usize {
    let mut z = subscriber_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// One shard's work: which global entry indices (in arrival order)
/// belong to it.
struct ShardJob {
    shard: usize,
    entry_indices: Vec<u32>,
}

/// Where in the sequential emission order an assessment belongs:
/// `(phase, major, minor)` — see the module docs.
type EmissionKey = (u8, u64, u32);

/// Everything one shard produced, tagged for the ordered reduction.
struct ShardOutput {
    emissions: Vec<(EmissionKey, SessionAssessment)>,
    health: StreamHealth,
    /// Kept anomalies tagged with their global entry index, sorted by
    /// it, truncated to the log cap (a superset of this shard's
    /// contribution to the global first-`cap` set).
    anomalies: Vec<(u64, IngestAnomaly)>,
    anomaly_total: u64,
    /// Exact per-kind quarantine counts for this shard (not capped).
    kinds: AnomalyKindCounts,
    /// Span events recorded by this shard job (empty when tracing is
    /// off). Like everything else in this struct they travel back
    /// through the worker's join handle — the hot path never touches a
    /// shared sink.
    trace: Vec<TraceEvent>,
    /// Events the shard's bounded sink had to drop.
    trace_dropped: u64,
}

/// A bounded single-producer / multi-consumer job queue. `push` blocks
/// while the queue is full — that is the engine's backpressure: the
/// producer can never race ahead of the workers by more than
/// `queue_depth` shard jobs.
struct BoundedQueue<T> {
    state: StdMutex<QueueState<T>>,
    readable: Condvar,
    writable: Condvar,
    depth: usize,
}

struct QueueState<T> {
    items: std::collections::VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(depth: usize) -> Self {
        BoundedQueue {
            state: StdMutex::new(QueueState {
                items: std::collections::VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// A poisoned lock means a worker already panicked; the surrounding
    /// `crossbeam::scope` re-raises that panic, so recovering the guard
    /// here only lets shutdown proceed.
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue one item, blocking while the queue is full. Returns
    /// `true` when the push had to wait on backpressure at least once
    /// (a scheduling-dependent signal, surfaced as a `Runtime`-class
    /// metric only).
    fn push(&self, item: T) -> bool {
        let mut s = self.lock();
        let mut stalled = false;
        while s.items.len() >= self.depth {
            stalled = true;
            s = self.writable.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.items.push_back(item);
        drop(s);
        self.readable.notify_one();
        stalled
    }

    /// Jobs currently waiting (racy by nature; metrics use only).
    fn len(&self) -> usize {
        self.lock().items.len()
    }

    fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.writable.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.readable.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
    }
}

/// The sharded parallel assessment engine: a frozen [`QoeMonitor`]
/// fanned out over worker threads, with output bit-identical to the
/// sequential streaming path.
#[derive(Debug, Clone)]
pub struct AssessmentEngine<'a> {
    monitor: &'a QoeMonitor,
    config: EngineConfig,
    ingest_cfg: IngestConfig,
    metrics: Option<PipelineMetrics>,
}

impl<'a> AssessmentEngine<'a> {
    /// Wrap a trained monitor with default hardening parameters.
    pub fn new(monitor: &'a QoeMonitor, config: EngineConfig) -> Self {
        AssessmentEngine::with_ingest(monitor, config, IngestConfig::default())
    }

    /// Wrap a trained monitor with explicit hardening parameters.
    pub fn with_ingest(
        monitor: &'a QoeMonitor,
        config: EngineConfig,
        ingest_cfg: IngestConfig,
    ) -> Self {
        AssessmentEngine {
            monitor,
            config,
            ingest_cfg,
            metrics: None,
        }
    }

    /// Attach a [`PipelineMetrics`] handle bundle: workers record
    /// per-shard-job deltas into it during [`AssessmentEngine::assess`].
    /// The assessment output is bit-identical with or without metrics.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The engine configuration in effect.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Assess a whole tap capture (any mix of subscribers, in arrival
    /// order) in parallel. Equivalent to feeding every entry through an
    /// [`OnlineAssessor`](crate::online::OnlineAssessor) with the same
    /// [`IngestConfig`] and unlimited subscriber slots, but sharded
    /// across [`EngineConfig::effective_workers`] threads — and
    /// bit-identical to that sequential run, including the health
    /// counters and the anomaly log.
    pub fn assess(&self, entries: &[WeblogEntry]) -> IngestReport {
        self.assess_inner(entries, None).0
    }

    /// Like [`AssessmentEngine::assess`], with session tracing: every
    /// emitted session records its typed span chain (ingest →
    /// reassemble → subscription fan-out → per-detector deliver) into a
    /// per-shard-job bounded [`TraceSink`], and the reducer merges the
    /// sinks in emission-key order into one [`Trace`]. Every span is a
    /// pure function of the input (deterministic ticks, no wall clock),
    /// so the trace is byte-stable across runs and worker counts — and
    /// the report stays bit-identical to the untraced pass.
    pub fn assess_traced(
        &self,
        entries: &[WeblogEntry],
        trace_cfg: TraceConfig,
    ) -> (IngestReport, Trace) {
        let (report, trace) = self.assess_inner(entries, Some(trace_cfg));
        (report, trace.unwrap_or_default())
    }

    fn assess_inner(
        &self,
        entries: &[WeblogEntry],
        trace_cfg: Option<TraceConfig>,
    ) -> (IngestReport, Option<Trace>) {
        // One subscription set for the whole pass, shared by reference
        // across every worker: the detectors are registered once, and
        // each reassembled session is fanned out to them as one
        // immutable view.
        let subs = SubscriptionSet::standard(self.monitor);
        let shards = self.config.shards.max(1);
        // Route each arrival to its shard; per-shard index lists keep
        // the global arrival order (indices ascend).
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (g, e) in entries.iter().enumerate() {
            by_shard[shard_of(e.subscriber_id, shards)].push(g as u32);
        }

        let workers = self.config.effective_workers();
        let queue: BoundedQueue<ShardJob> = BoundedQueue::new(self.config.queue_depth);
        let pacing = self.config.shard_pacing_micros;

        let result = crossbeam::thread::scope(|scope| {
            // Workers keep their shard outputs in a private
            // `(shard, output)` vector — no shared lock on the hot path
            // — and hand it back through their join handle; the scatter
            // after the joins restores shard order.
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local: Vec<(usize, ShardOutput)> = Vec::new();
                        while let Some(job) = queue.pop() {
                            if pacing > 0 {
                                // Harness-only: model the tap-spool read
                                // for this shard's slice (I/O-bound
                                // regime).
                                std::thread::sleep(std::time::Duration::from_micros(pacing));
                            }
                            let out =
                                self.process_shard(&subs, entries, &job.entry_indices, trace_cfg);
                            local.push((job.shard, out));
                        }
                        local
                    })
                })
                .collect();
            // Produce shard jobs on the calling thread; `push` blocks
            // when `queue_depth` jobs are already waiting. The queue
            // must close before the joins below, or the workers would
            // never exit their pop loops.
            for (shard, entry_indices) in by_shard.into_iter().enumerate() {
                let stalled = queue.push(ShardJob {
                    shard,
                    entry_indices,
                });
                if let Some(m) = &self.metrics {
                    if stalled {
                        m.queue_stalls.inc();
                    }
                    m.queue_depth.set(queue.len() as i64);
                }
            }
            queue.close();
            let mut pairs: Vec<(usize, ShardOutput)> = Vec::with_capacity(shards);
            for h in handles {
                match h.join() {
                    Ok(local) => pairs.extend(local),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
            pairs.sort_by_key(|&(shard, _)| shard);
            pairs.into_iter().map(|(_, out)| out).collect()
        });
        let outputs: Vec<ShardOutput> = match result {
            Ok(outputs) => outputs,
            // A worker panic is a bug in the pipeline itself;
            // re-raising it is the only sane response.
            Err(p) => std::panic::resume_unwind(p),
        };
        self.reduce(outputs, trace_cfg.is_some())
    }

    /// Run one shard: its subscribers one at a time, each through a
    /// fresh `RobustReassembler`, recording emission keys and tagging
    /// kept anomalies with their global entry index.
    fn process_shard(
        &self,
        subs: &SubscriptionSet<'_>,
        entries: &[WeblogEntry],
        indices: &[u32],
        trace_cfg: Option<TraceConfig>,
    ) -> ShardOutput {
        // Group the shard's arrivals per subscriber, preserving arrival
        // order inside each group. BTreeMap: worker code must never
        // iterate a HashMap (vqoe-analyze `hashmap-iter` gate).
        let mut per_subscriber: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &g in indices {
            per_subscriber
                .entry(entries[g as usize].subscriber_id)
                .or_default()
                .push(g);
        }

        let cap = self.ingest_cfg.max_anomalies_kept;
        let mut out = ShardOutput {
            emissions: Vec::new(),
            health: StreamHealth::default(),
            anomalies: Vec::new(),
            anomaly_total: 0,
            kinds: AnomalyKindCounts::default(),
            trace: Vec::new(),
            trace_dropped: 0,
        };
        // This job's private trace sink: recorded into without locks,
        // handed back through the join handle with everything else.
        let mut sink = trace_cfg.map(|c| TraceSink::with_capacity(c.capacity_per_shard));
        // Deterministic stage timing: the worker's clock advances one
        // tick per entry processed, so the span length is the shard's
        // entry count — identical at any worker count.
        let clock = SimClock::new();
        let span = self
            .metrics
            .as_ref()
            .map(|m| StageSpan::start(&clock, &m.stage_ticks));
        for (&subscriber, subscriber_indices) in &per_subscriber {
            let mut machine = RobustReassembler::new(self.monitor.reassembly, self.ingest_cfg);
            install_digest_sink(&mut machine, *self.monitor.switch_model.scoring());
            // Per-subscriber scratch log: its entries arrive in global
            // order, so its first `cap` records are exactly the
            // subscriber's candidates for the global first-`cap` set.
            let mut log = AnomalyLog::new(cap);
            let mut tagged: Vec<(u64, IngestAnomaly)> = Vec::new();
            let mut prev_kept = 0usize;
            for &g in subscriber_indices {
                let e = &entries[g as usize];
                out.health.entries_seen += 1;
                clock.advance(1);
                let sessions = machine.push(e, &mut out.health, &mut log);
                for a in &log.kept()[prev_kept..] {
                    tagged.push((g as u64, *a));
                }
                prev_kept = log.kept().len();
                for (k, s) in sessions.iter().enumerate() {
                    let digest = claim_digest(&mut machine, s);
                    let key = (0, g as u64, k as u32);
                    let a = self.assess_one(
                        subs,
                        s,
                        digest.as_ref(),
                        sink.as_mut().map(|t| (t, key, subscriber)),
                    );
                    out.emissions.push((key, a));
                }
            }
            // flush (not the consuming finish): the sealed digest of a
            // spilled final session must still be claimable afterwards.
            let final_sessions = machine.flush();
            for (k, s) in final_sessions.iter().enumerate() {
                let digest = claim_digest(&mut machine, s);
                let key = (1, subscriber, k as u32);
                let a = self.assess_one(
                    subs,
                    s,
                    digest.as_ref(),
                    sink.as_mut().map(|t| (t, key, subscriber)),
                );
                out.emissions.push((key, a));
            }
            out.anomaly_total += log.total();
            out.kinds.absorb(&log.kinds());
            // Keep the shard's anomaly memory bounded: merge this
            // subscriber's tagged records in (both lists are sorted by
            // global index) and retain only the earliest `cap`.
            if !tagged.is_empty() {
                out.anomalies.extend(tagged);
                out.anomalies.sort_by_key(|&(g, _)| g);
                out.anomalies.truncate(cap);
            }
        }
        if let Some(span) = span {
            let ticks = span.finish();
            if let Some(m) = &self.metrics {
                m.shard_jobs.inc();
                m.worker_busy_ticks.add(ticks);
                m.observe_health_delta(&StreamHealth::default(), &out.health);
                m.observe_kind_delta(&AnomalyKindCounts::default(), &out.kinds);
            }
        }
        if let Some(sink) = sink {
            let (events, dropped) = sink.into_parts();
            out.trace = events;
            out.trace_dropped = dropped;
        }
        out
    }

    /// The deterministic ordered reducer: sort emissions on their keys,
    /// sum health counters, merge anomaly logs back into global arrival
    /// order.
    fn reduce(&self, outputs: Vec<ShardOutput>, traced: bool) -> (IngestReport, Option<Trace>) {
        let mut emissions: Vec<(EmissionKey, SessionAssessment)> = Vec::new();
        let mut health = StreamHealth::default();
        let mut shard_health = Vec::with_capacity(outputs.len());
        let mut anomalies: Vec<(u64, IngestAnomaly)> = Vec::new();
        let mut anomaly_total = 0u64;
        let mut kinds = AnomalyKindCounts::default();
        let mut trace_events: Vec<TraceEvent> = Vec::new();
        let mut trace_dropped = 0u64;
        for out in outputs {
            if let Some(m) = &self.metrics {
                m.reduce_merge_size.observe(out.emissions.len() as u64);
            }
            emissions.extend(out.emissions);
            shard_health.push(out.health);
            health.absorb(&out.health);
            anomalies.extend(out.anomalies);
            anomaly_total += out.anomaly_total;
            kinds.absorb(&out.kinds);
            trace_events.extend(out.trace);
            trace_dropped += out.trace_dropped;
        }
        // Keys are unique (at most one anomaly and one emission batch
        // per entry), so an unstable sort is deterministic here.
        emissions.sort_unstable_by_key(|&(key, _)| key);
        anomalies.sort_unstable_by_key(|&(g, _)| g);
        let trace = traced.then(|| {
            // One closing span for the reducer itself, keyed after
            // every per-session key (phase 2): ticks = emissions
            // merged, a pure function of the input.
            trace_events.push(TraceEvent {
                key: (2, 0, 0),
                seq: 0,
                stage: TraceStage::Reduce,
                subscriber: 0,
                session: 0,
                start_tick: 0,
                dur_ticks: emissions.len() as u64,
                detail: "",
            });
            Trace::from_parts(trace_events, trace_dropped)
        });
        let cap = self.ingest_cfg.max_anomalies_kept;
        let report = IngestReport {
            assessments: emissions.into_iter().map(|(_, a)| a).collect(),
            health,
            shard_health,
            anomalies: AnomalyLog::from_parts(
                cap,
                anomalies.into_iter().map(|(_, a)| a).collect(),
                anomaly_total,
                kinds,
            ),
            // The batch engine never sheds: each worker holds exactly
            // one subscriber's machine at a time, so memory budgets are
            // a streaming-path concern. An empty log with the same cap
            // keeps engine reports comparable (and equal, unbudgeted)
            // to streaming reports.
            shed: ShedLog::new(cap),
            alerts: Vec::new(),
        };
        (report, trace)
    }

    fn assess_one(
        &self,
        subs: &SubscriptionSet<'_>,
        session: &ReassembledSession,
        digest: Option<&SessionDigest>,
        trace: Option<(&mut TraceSink, EmissionKey, u64)>,
    ) -> SessionAssessment {
        let obs = SessionObs::from_reassembled(session);
        let view = SessionView::over(&obs, session);
        // Mirrors the streaming path's tiering exactly (the engine ↔
        // online byte-identity contract): a session whose chunks spilled
        // past the exactness cap is `Sketched`, everything else `Full`.
        let fidelity = if session.spilled_chunks > 0 {
            Fidelity::Sketched
        } else {
            Fidelity::Full
        };
        let assessment = match (digest, trace) {
            (None, None) => subs.assess_session(view),
            (None, Some((sink, key, subscriber))) => {
                let mut delivered: Vec<&'static str> = Vec::new();
                let assessment = subs.assess_session_observed(view, |_, name| delivered.push(name));
                record_session_spans(sink, key, subscriber, session, &delivered);
                assessment
            }
            (Some(d), trace) => {
                let assessment = subs.assess_session_sketched(view, d);
                if let Some((sink, key, subscriber)) = trace {
                    record_session_spans(sink, key, subscriber, session, &subs.names());
                }
                assessment
            }
        }
        .with_fidelity(fidelity);
        if let Some(m) = &self.metrics {
            m.observe_session(session, &assessment);
            if session.spilled_chunks > 0 {
                m.sessions_sketched.inc();
            }
        }
        assessment
    }
}

/// Record one emitted session's span chain: ingest (all records),
/// reassemble (media chunks), fan-out, then one deliver span per
/// detector. Ticks are deterministic work units — one per record
/// examined — anchored at the session's start time in tap
/// microseconds, so the chain is a pure function of the session
/// content and Perfetto lays sessions out along tap time.
fn record_session_spans(
    sink: &mut TraceSink,
    key: EmissionKey,
    subscriber: u64,
    session: &ReassembledSession,
    delivered: &[&'static str],
) {
    let session_id = session.start.as_micros();
    let chunks = (session.chunks.len() as u64).max(1);
    let records = chunks + session.other.len() as u64;
    let mut tick = session_id;
    let head = [
        (TraceStage::Ingest, records, ""),
        (TraceStage::Reassemble, chunks, ""),
        (TraceStage::Fanout, (delivered.len() as u64).max(1), ""),
    ];
    let spans = head.into_iter().chain(
        delivered
            .iter()
            .map(|&name| (TraceStage::Deliver, chunks, name)),
    );
    for (seq, (stage, dur_ticks, detail)) in spans.enumerate() {
        sink.record(TraceEvent {
            key,
            seq: seq as u32,
            stage,
            subscriber,
            session: session_id,
            start_tick: tick,
            dur_ticks,
            detail,
        });
        tick += dur_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for id in 0..1000u64 {
            let s = shard_of(id, 32);
            assert!(s < 32);
            assert_eq!(s, shard_of(id, 32));
        }
        assert_eq!(shard_of(7, 0), 0, "degenerate shard count clamps");
    }

    #[test]
    fn shard_routing_spreads_sequential_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..800u64 {
            counts[shard_of(id, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 40, "shard {s} starved: {c} of 800");
        }
    }

    #[test]
    fn effective_workers_clamps_to_shards() {
        let cfg = EngineConfig {
            workers: 64,
            shards: 3,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.effective_workers(), 3);
        let auto = EngineConfig::default().effective_workers();
        assert!((1..=16).contains(&auto));
    }

    #[test]
    fn bounded_queue_delivers_everything_once_despite_backpressure() {
        let q: BoundedQueue<usize> = BoundedQueue::new(2);
        let total = 100usize;
        let got = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local = Vec::new();
                        while let Some(v) = q.pop() {
                            local.push(v);
                        }
                        local
                    })
                })
                .collect();
            for v in 0..total {
                q.push(v);
            }
            q.close();
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("consumer thread"))
                .collect();
            all.sort_unstable();
            all
        })
        .expect("queue test scope");
        assert_eq!(got, (0..total).collect::<Vec<_>>());
    }
}
