//! Dataset specifications: the knobs that shape a simulated operator
//! dataset.
//!
//! Two presets mirror the paper's two datasets:
//!
//! * [`DatasetSpec::cleartext_default`] — the §3 training corpus:
//!   everyday traffic, dominated by static users and (97 %) legacy
//!   progressive players, with 3 % adaptive sessions.
//! * [`DatasetSpec::encrypted_default`] — the §5.2 evaluation corpus:
//!   one instrumented handset, modern (DASH) app, "the user was
//!   motivated to launch the application when moving" — a
//!   commuting-heavy scenario mix, 722 sessions.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vqoe_player::{AbrKind, Delivery, StreamingProfile};
use vqoe_simnet::channel::Scenario;

/// Probability weights over the four radio scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMix {
    /// Weight of [`Scenario::StaticHome`].
    pub static_home: f64,
    /// Weight of [`Scenario::StaticOffice`].
    pub static_office: f64,
    /// Weight of [`Scenario::Commuting`].
    pub commuting: f64,
    /// Weight of [`Scenario::CongestedCell`].
    pub congested: f64,
}

impl ScenarioMix {
    /// Draw a scenario according to the weights.
    pub fn sample(&self, rng: &mut StdRng) -> Scenario {
        let total = self.static_home + self.static_office + self.commuting + self.congested;
        let mut x: f64 = rng.gen_range(0.0..total.max(1e-12));
        for (scenario, w) in [
            (Scenario::StaticHome, self.static_home),
            (Scenario::StaticOffice, self.static_office),
            (Scenario::Commuting, self.commuting),
            (Scenario::CongestedCell, self.congested),
        ] {
            if x < w {
                return scenario;
            }
            x -= w;
        }
        Scenario::CongestedCell
    }
}

/// How delivery mechanisms are assigned to sessions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryMix {
    /// Fraction of sessions using DASH (the rest are progressive).
    pub dash_fraction: f64,
    /// ABR family for the DASH sessions.
    pub abr: AbrKind,
}

impl DeliveryMix {
    /// Draw a delivery mechanism.
    pub fn sample(&self, rng: &mut StdRng) -> Delivery {
        if rng.gen_bool(self.dash_fraction.clamp(0.0, 1.0)) {
            Delivery::Dash(self.abr)
        } else {
            Delivery::Progressive
        }
    }
}

/// Full specification of one simulated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of sessions.
    pub n_sessions: usize,
    /// Master seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Radio-scenario weights.
    pub scenarios: ScenarioMix,
    /// Delivery mix.
    pub delivery: DeliveryMix,
    /// Provider delivery profile (§7 generalization: swap this to
    /// evaluate the framework against a different service's mechanics).
    pub profile: StreamingProfile,
}

impl DatasetSpec {
    /// The §3 cleartext training corpus shape. `n_sessions` scales the
    /// corpus (the paper had 390 k; simulation makes thousands plenty —
    /// the class structure, not the raw count, is what the models need).
    pub fn cleartext_default(n_sessions: usize, seed: u64) -> Self {
        DatasetSpec {
            n_sessions,
            seed,
            scenarios: ScenarioMix {
                static_home: 0.50,
                static_office: 0.27,
                commuting: 0.13,
                congested: 0.10,
            },
            delivery: DeliveryMix {
                dash_fraction: 0.03,
                abr: AbrKind::Hybrid,
            },
            profile: StreamingProfile::youtube(),
        }
    }

    /// The adaptive-only corpus used to train the representation models
    /// (§3.1 keeps only adaptive sessions for those).
    pub fn adaptive_default(n_sessions: usize, seed: u64) -> Self {
        let mut spec = Self::cleartext_default(n_sessions, seed);
        spec.delivery.dash_fraction = 1.0;
        spec
    }

    /// The §5.2 encrypted evaluation corpus shape: modern DASH app,
    /// commuting-heavy.
    pub fn encrypted_default(seed: u64) -> Self {
        DatasetSpec {
            n_sessions: 722,
            seed,
            scenarios: ScenarioMix {
                static_home: 0.35,
                static_office: 0.20,
                commuting: 0.30,
                congested: 0.15,
            },
            delivery: DeliveryMix {
                dash_fraction: 1.0,
                abr: AbrKind::Hybrid,
            },
            profile: StreamingProfile::youtube(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scenario_mix_respects_weights() {
        let mix = ScenarioMix {
            static_home: 1.0,
            static_office: 0.0,
            commuting: 0.0,
            congested: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(mix.sample(&mut rng), Scenario::StaticHome);
        }
    }

    #[test]
    fn scenario_mix_statistics() {
        let mix = DatasetSpec::cleartext_default(0, 0).scenarios;
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        let n = 20_000;
        for _ in 0..n {
            match mix.sample(&mut rng) {
                Scenario::StaticHome => counts[0] += 1,
                Scenario::StaticOffice => counts[1] += 1,
                Scenario::Commuting => counts[2] += 1,
                Scenario::CongestedCell => counts[3] += 1,
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.50).abs() < 0.02);
        assert!((frac(counts[2]) - 0.13).abs() < 0.02);
    }

    #[test]
    fn delivery_mix_statistics() {
        let mix = DeliveryMix {
            dash_fraction: 0.03,
            abr: AbrKind::Hybrid,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30_000;
        let dash = (0..n)
            .filter(|_| mix.sample(&mut rng).is_adaptive())
            .count();
        let frac = dash as f64 / n as f64;
        assert!((frac - 0.03).abs() < 0.01, "dash fraction {frac}");
    }

    #[test]
    fn presets_have_expected_shapes() {
        let clear = DatasetSpec::cleartext_default(1000, 7);
        assert_eq!(clear.n_sessions, 1000);
        assert!(clear.delivery.dash_fraction < 0.1);
        let enc = DatasetSpec::encrypted_default(7);
        assert_eq!(enc.n_sessions, 722);
        assert_eq!(enc.delivery.dash_fraction, 1.0);
        // Commuting-heavy relative to the cleartext mix (0.13), even if
        // home launches still lead in absolute terms (§5.4: the healthy
        // encrypted sessions were mostly static).
        assert!(
            enc.scenarios.commuting
                > 2.0 * DatasetSpec::cleartext_default(1, 0).scenarios.commuting
        );
        let adaptive = DatasetSpec::adaptive_default(500, 7);
        assert_eq!(adaptive.delivery.dash_fraction, 1.0);
    }
}
