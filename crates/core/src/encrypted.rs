//! The §5 encrypted-traffic evaluation world.
//!
//! Rebuilds the paper's §5.1–§5.2 setup end to end:
//!
//! 1. One instrumented subscriber runs sequential DASH sessions under a
//!    commuting-heavy scenario mix ([`crate::spec::DatasetSpec::encrypted_default`]),
//!    producing ground truth (the handset-side logs).
//! 2. The proxy captures the same sessions **encrypted** — URIs gone,
//!    only timings, sizes and TCP statistics remain — interleaved with
//!    the subscriber's unrelated background traffic.
//! 3. Sessions are reassembled from the encrypted stream by the §5.2
//!    procedure, then joined back to ground truth by timestamps and
//!    chunk counts.
//!
//! The result is evaluation-ready: per reassembled session, a
//! network-visible [`SessionObs`] plus the impairment labels the
//! instrumented handset knew.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqoe_features::labels::has_switches;
use vqoe_features::matrix::{build_representation_dataset_from_obs, build_stall_dataset_from_obs};
use vqoe_features::{rq_label, stall_label, RqClass, SessionObs, StallClass};
use vqoe_ml::Dataset;
use vqoe_player::SessionTrace;
use vqoe_telemetry::capture::generate_noise;
use vqoe_telemetry::dataset::JoinedSession;
use vqoe_telemetry::{
    capture_session, join_sessions, reassemble_subscriber, CaptureConfig, ReassembledSession,
    ReassemblyConfig, TelemetryError, WeblogEntry,
};

use crate::spec::DatasetSpec;

/// Configuration of the encrypted evaluation world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncryptedEvalConfig {
    /// Shape of the instrumented subscriber's sessions.
    pub spec: DatasetSpec,
    /// Mean idle gap between consecutive sessions (seconds).
    pub mean_gap_secs: f64,
    /// Background (non-service) transactions interleaved per session.
    pub noise_per_session: usize,
    /// Reassembly parameters.
    pub reassembly: ReassemblyConfig,
}

impl EncryptedEvalConfig {
    /// Paper-shaped defaults: 722 commuting-heavy DASH sessions.
    pub fn paper_default(seed: u64) -> Self {
        EncryptedEvalConfig {
            spec: DatasetSpec::encrypted_default(seed),
            mean_gap_secs: 240.0,
            noise_per_session: 12,
            reassembly: ReassemblyConfig::default(),
        }
    }
}

/// The fully built evaluation world.
#[derive(Debug, Clone)]
pub struct EncryptedWorld {
    /// Ground-truth traces (what the instrumented handset logged).
    pub traces: Vec<SessionTrace>,
    /// The proxy's encrypted weblog stream, noise included.
    pub entries: Vec<WeblogEntry>,
    /// Sessions recovered from the encrypted stream (§5.2).
    pub sessions: Vec<ReassembledSession>,
    /// Matches between recovered sessions and ground truth.
    pub joined: Vec<JoinedSession>,
}

impl EncryptedWorld {
    /// Build the world from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`TelemetryError`] from the capture stage; with
    /// simulator-generated traces (the only input this function takes)
    /// capture cannot fail, so callers may treat an error as a bug.
    pub fn build(config: &EncryptedEvalConfig) -> Result<Self, TelemetryError> {
        let traces =
            crate::generate::generate_sequential_traces(&config.spec, config.mean_gap_secs);
        let mut rng = StdRng::seed_from_u64(config.spec.seed ^ 0xE7C9_11AA);
        let mut entries: Vec<WeblogEntry> = Vec::new();
        let capture = CaptureConfig {
            encrypted: true,
            subscriber_id: 1,
        };
        for trace in &traces {
            entries.extend(capture_session(trace, &capture, &mut rng)?);
        }
        if let (Some(first), Some(last)) = (traces.first(), traces.last()) {
            let noise = generate_noise(
                1,
                first.config.start_time,
                last.ground_truth.session_end,
                config.noise_per_session * traces.len(),
                &mut rng,
            );
            entries.extend(noise);
        }
        entries.sort_by_key(|e| e.timestamp);
        let sessions = reassemble_subscriber(&entries, &config.reassembly);
        let joined = join_sessions(&sessions, &traces);
        Ok(EncryptedWorld {
            traces,
            entries,
            sessions,
            joined,
        })
    }

    /// Fraction of ground-truth sessions successfully recovered and
    /// matched (§5.2: "successfully identified the vast majority").
    pub fn reassembly_recall(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.joined.len() as f64 / self.traces.len() as f64
    }

    /// Labelled sessions for the stall evaluation: network-visible
    /// observations from the *reassembled* traffic, labels from the
    /// joined ground truth.
    pub fn labelled_stall_sessions(&self) -> Vec<(SessionObs, StallClass)> {
        self.joined
            .iter()
            .map(|j| {
                (
                    SessionObs::from_reassembled(&self.sessions[j.reassembled_idx]),
                    stall_label(&self.traces[j.trace_idx].ground_truth),
                )
            })
            .collect()
    }

    /// Labelled sessions for the average-representation evaluation.
    pub fn labelled_rq_sessions(&self) -> Vec<(SessionObs, RqClass)> {
        self.joined
            .iter()
            .map(|j| {
                (
                    SessionObs::from_reassembled(&self.sessions[j.reassembled_idx]),
                    rq_label(&self.traces[j.trace_idx].ground_truth),
                )
            })
            .collect()
    }

    /// Labelled sessions for the switch-detection evaluation.
    pub fn labelled_switch_sessions(&self) -> Vec<(SessionObs, bool)> {
        self.joined
            .iter()
            .map(|j| {
                (
                    SessionObs::from_reassembled(&self.sessions[j.reassembled_idx]),
                    has_switches(&self.traces[j.trace_idx].ground_truth),
                )
            })
            .collect()
    }

    /// The 70-dim labelled stall evaluation dataset (Tables 8–9 input).
    pub fn stall_eval_dataset(&self) -> Dataset {
        build_stall_dataset_from_obs(&self.labelled_stall_sessions())
    }

    /// The 210-dim labelled representation evaluation dataset
    /// (Tables 10–11 input).
    pub fn representation_eval_dataset(&self) -> Dataset {
        build_representation_dataset_from_obs(&self.labelled_rq_sessions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world(n: usize, seed: u64) -> EncryptedWorld {
        let mut config = EncryptedEvalConfig::paper_default(seed);
        config.spec.n_sessions = n;
        EncryptedWorld::build(&config).expect("simulated world builds")
    }

    #[test]
    fn empty_ground_truth_yields_zero_recall_not_a_panic() {
        // Regression: recall once divided by the ground-truth count
        // unguarded; an empty world must report 0.0, not NaN or a panic.
        let world = small_world(0, 44);
        assert!(world.traces.is_empty());
        assert_eq!(world.reassembly_recall(), 0.0);
        assert!(world.reassembly_recall().is_finite());
    }

    #[test]
    fn reassembly_recovers_the_vast_majority() {
        let world = small_world(30, 41);
        assert!(
            world.reassembly_recall() > 0.9,
            "recall {}",
            world.reassembly_recall()
        );
    }

    #[test]
    fn entries_are_encrypted_and_sorted() {
        let world = small_world(10, 42);
        assert!(world.entries.iter().all(|e| e.encrypted));
        assert!(world.entries.iter().all(|e| e.uri.is_none()));
        for w in world.entries.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn labelled_datasets_have_matching_shapes() {
        let world = small_world(20, 43);
        let stall = world.stall_eval_dataset();
        let rq = world.representation_eval_dataset();
        assert_eq!(stall.n_rows(), world.joined.len());
        assert_eq!(rq.n_rows(), world.joined.len());
        assert_eq!(stall.n_features(), 70);
        assert_eq!(rq.n_features(), 210);
    }

    #[test]
    fn joined_sessions_have_consistent_chunk_counts() {
        let world = small_world(15, 44);
        for j in &world.joined {
            let recovered = world.sessions[j.reassembled_idx].chunk_count();
            let actual = world.traces[j.trace_idx].chunks.len();
            // Counts match exactly when reassembly is clean; allow tiny
            // slack for boundary effects.
            assert!(
                (recovered as i64 - actual as i64).abs() <= 2,
                "recovered {recovered} vs actual {actual}"
            );
        }
    }

    #[test]
    fn commuting_mix_produces_impairments() {
        // The §5 set exists to evaluate impairment detection; a world
        // with zero stalls or zero switches would be vacuous.
        let world = small_world(60, 45);
        let stalls = world
            .labelled_stall_sessions()
            .iter()
            .filter(|(_, c)| *c != StallClass::NoStalls)
            .count();
        let switches = world
            .labelled_switch_sessions()
            .iter()
            .filter(|(_, s)| *s)
            .count();
        assert!(stalls > 0, "no stalled sessions in the encrypted world");
        assert!(switches > 0, "no switching sessions in the encrypted world");
    }

    #[test]
    fn world_is_deterministic() {
        let a = small_world(8, 46);
        let b = small_world(8, 46);
        assert_eq!(a.traces, b.traces);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.sessions, b.sessions);
    }
}
