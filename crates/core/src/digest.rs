//! Streaming per-session digests: the bounded-memory state behind the
//! [`Fidelity::Sketched`] assessment tier (ISSUE 10).
//!
//! When a session outgrows the reassembler's exact-buffer cap
//! ([`vqoe_telemetry::EXACT_ENTRY_CAP`]), its media chunks stop being
//! buffered and are instead folded — exact prefix first, then every
//! overflow chunk — into a [`SessionDigest`]: running moments plus
//! deterministic quantile sketches over all §4 metric series
//! ([`StreamingSessionState`]) and the streaming §4.3 switch score
//! ([`StreamingSwitchScore`]). Per-subscriber cost is O(1) in session
//! length; the digest is seedless, mergeable state that serializes
//! byte-stably for checkpointing.
//!
//! The plumbing is the [`SpillSink`] trait from `vqoe-telemetry` (which
//! cannot depend on the feature/detector crates, so the dependency is
//! inverted): [`DigestSink`] implements it, the assessors install one
//! per subscriber machine, and [`claim_digest`] pops the sealed digest
//! matching each emitted spilled session — a strict FIFO, because the
//! reassembler seals (or discards) exactly once per emission with any
//! spill activity.
//!
//! [`Fidelity::Sketched`]: crate::Fidelity::Sketched

use serde::{Deserialize, Serialize};
use vqoe_changedet::{StreamingSwitchScore, SwitchScoreConfig};
use vqoe_features::{ChunkObs, StreamingSessionState};
use vqoe_telemetry::{ReassembledSession, RobustReassembler, SpillSink, WeblogEntry};

/// Everything the sketched assessment path needs about one session:
/// approximate 70/210-dim feature vectors and the streaming switch
/// score, all O(1) in session length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDigest {
    /// Running moments + quantile sketches over the §4 metric series.
    pub features: StreamingSessionState,
    /// Streaming two-sided CUSUM switch score (§4.3).
    pub switch: StreamingSwitchScore,
}

impl SessionDigest {
    /// Fresh digest scoring switches under `config` (the deployed
    /// [`SwitchModel`]'s frozen scoring parameters, so sketched and
    /// exact assessments answer the same question).
    ///
    /// [`SwitchModel`]: crate::SwitchModel
    pub fn with_config(config: SwitchScoreConfig) -> Self {
        SessionDigest {
            features: StreamingSessionState::new(),
            switch: StreamingSwitchScore::new(config),
        }
    }

    /// Fold one media-chunk observation into both digests.
    pub fn fold(&mut self, c: &ChunkObs) {
        self.features.fold(c);
        self.switch.fold(c.arrival_secs, c.bytes);
    }

    /// Chunks folded in so far.
    pub fn chunk_count(&self) -> u64 {
        self.features.chunk_count()
    }

    /// Approximate heap footprint, for the budget audit.
    pub fn heap_bytes(&self) -> usize {
        self.features.heap_bytes() + std::mem::size_of::<StreamingSwitchScore>()
    }
}

/// The core-side [`SpillSink`]: folds spilled chunks into a
/// [`SessionDigest`] and archives one digest per sealed session, FIFO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigestSink {
    config: SwitchScoreConfig,
    current: SessionDigest,
    /// Sealed digests not yet claimed by the assessor (FIFO; normally
    /// at most one deep, drained right after each emission).
    sealed: Vec<SessionDigest>,
}

impl DigestSink {
    /// Fresh sink whose digests score switches under `config`.
    pub fn new(config: SwitchScoreConfig) -> Self {
        DigestSink {
            current: SessionDigest::with_config(config),
            sealed: Vec::new(),
            config,
        }
    }

    /// Pop the oldest sealed digest. The caller must pop exactly once
    /// per emitted session with spill activity (see [`claim_digest`]);
    /// anything else desynchronizes the FIFO.
    pub fn claim(&mut self) -> Option<SessionDigest> {
        if self.sealed.is_empty() {
            None
        } else {
            Some(self.sealed.remove(0))
        }
    }

    /// Sealed digests waiting to be claimed.
    pub fn sealed_len(&self) -> usize {
        self.sealed.len()
    }

    /// Rehydrate from the snapshot emitted by
    /// [`SpillSink::state_json`] (checkpoint restore).
    pub fn from_json(json: &str) -> Option<DigestSink> {
        serde_json::from_str(json).ok()
    }
}

impl SpillSink for DigestSink {
    fn fold_chunk(&mut self, e: &WeblogEntry) {
        self.current.fold(&ChunkObs::from(e));
    }

    fn seal(&mut self) {
        let finished =
            std::mem::replace(&mut self.current, SessionDigest::with_config(self.config));
        self.sealed.push(finished);
    }

    fn discard(&mut self) {
        self.current = SessionDigest::with_config(self.config);
    }

    fn state_json(&self) -> Option<String> {
        if self.current.features.is_empty() && self.sealed.is_empty() {
            return None;
        }
        serde_json::to_string(self).ok()
    }

    fn clone_box(&self) -> Box<dyn SpillSink> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Install a fresh [`DigestSink`] (scoring under `config`) on a
/// subscriber machine.
pub fn install_digest_sink(machine: &mut RobustReassembler, config: SwitchScoreConfig) {
    machine.attach_spill(Box::new(DigestSink::new(config)));
}

/// Claim the sealed digest matching `session`, if any.
///
/// Mirrors the reassembler's seal/discard rule exactly: a digest was
/// sealed iff the emission had *any* spill activity (media or other
/// entries), so the claim must fire on the same condition to keep the
/// FIFO aligned. The caller should *use* the digest for sketched
/// assessment only when `session.spilled_chunks > 0` — a session whose
/// spill was all non-media entries still has every chunk exact — which
/// is what this returns `Some` for; an other-only spill is claimed and
/// dropped internally.
pub fn claim_digest(
    machine: &mut RobustReassembler,
    session: &ReassembledSession,
) -> Option<SessionDigest> {
    if session.spilled_chunks == 0 && session.spilled_other == 0 {
        return None;
    }
    let digest = machine
        .spill_sink_mut()?
        .as_any_mut()
        .downcast_mut::<DigestSink>()?
        .claim()?;
    if session.spilled_chunks == 0 {
        // All chunks are exact; the sealed digest only mirrors them.
        return None;
    }
    Some(digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqoe_player::TransportSummary;
    use vqoe_simnet::time::{Duration, Instant};
    use vqoe_telemetry::{EntryKind, IngestConfig, ReassemblyConfig};

    fn media_entry(t_millis: u64, bytes: u64) -> WeblogEntry {
        WeblogEntry {
            timestamp: Instant::from_millis(t_millis),
            subscriber_id: 7,
            host: "r1---sn-test.googlevideo.com".into(),
            uri: None,
            bytes,
            duration: Duration::from_millis(400),
            transport: TransportSummary {
                rtt_min: 0.02,
                rtt_mean: 0.03,
                rtt_max: 0.05,
                bdp_mean: 60_000.0,
                bif_mean: 30_000.0,
                bif_max: 90_000.0,
                loss_frac: 0.0,
                retx_frac: 0.0,
            },
            encrypted: true,
            kind: EntryKind::MediaChunk,
        }
    }

    fn spilling_machine(cap: usize) -> RobustReassembler {
        let config = ReassemblyConfig {
            exact_entry_cap: cap,
            ..ReassemblyConfig::default()
        };
        let mut m = RobustReassembler::new(config, IngestConfig::default());
        install_digest_sink(&mut m, SwitchScoreConfig::default());
        m
    }

    #[test]
    fn digest_covers_the_whole_session_prefix_included() {
        let mut m = spilling_machine(4);
        let mut health = Default::default();
        let mut anomalies = vqoe_telemetry::AnomalyLog::new(16);
        for i in 0..10u64 {
            let out = m.push(
                &media_entry(i * 2_000, 50_000 + i * 1_000),
                &mut health,
                &mut anomalies,
            );
            assert!(out.is_empty());
        }
        let sessions = m.flush();
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.chunks.len() as u64 + s.spilled_chunks, 10);
        let digest = claim_digest(&mut m, s).expect("spilled session must carry a digest");
        // Prefix replay: the digest saw all 10 chunks, not just the spill.
        assert_eq!(digest.chunk_count(), 10);
    }

    #[test]
    fn under_cap_sessions_claim_nothing() {
        let mut m = spilling_machine(64);
        let mut health = Default::default();
        let mut anomalies = vqoe_telemetry::AnomalyLog::new(16);
        for i in 0..10u64 {
            m.push(&media_entry(i * 2_000, 50_000), &mut health, &mut anomalies);
        }
        let sessions = m.flush();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].spilled_chunks, 0);
        assert!(claim_digest(&mut m, &sessions[0]).is_none());
    }

    #[test]
    fn sink_state_round_trips_through_json() {
        let mut sink = DigestSink::new(SwitchScoreConfig::default());
        for i in 0..20u64 {
            sink.fold_chunk(&media_entry(i * 1_000, 10_000 + i * 500));
        }
        sink.seal();
        sink.fold_chunk(&media_entry(100_000, 77_000));
        let json = sink.state_json().expect("non-empty sink snapshots");
        let back = DigestSink::from_json(&json).expect("snapshot parses");
        assert_eq!(back, sink);
    }

    #[test]
    fn empty_sink_has_no_state() {
        let sink = DigestSink::new(SwitchScoreConfig::default());
        assert!(sink.state_json().is_none());
    }
}
