//! Pipeline metric handles over the [`vqoe_obs`] registry.
//!
//! [`PipelineMetrics`] registers every hot-path metric of the ingest →
//! engine → inference pipeline under the
//! `vqoe_<crate>_<subsystem>_<name>` naming scheme and hands out cheap
//! clonable handles to the [`AssessmentEngine`](crate::AssessmentEngine)
//! and [`OnlineAssessor`](crate::OnlineAssessor). Every counter that
//! mirrors a [`StreamHealth`] or [`AnomalyKindCounts`] field is
//! recorded as a per-entry (or per-shard-job) delta, so sums are
//! commutative and the `Stable`-class snapshot is identical at any
//! worker count. Scheduling-dependent signals (queue depth,
//! backpressure stalls) are registered as `Runtime` class and excluded
//! from the snapshot.

use vqoe_features::{RqClass, StallClass};
use vqoe_obs::{buckets, Counter, Gauge, Histogram, MetricClass, Registry, SimClock, StageSpan};
use vqoe_telemetry::{AnomalyKind, AnomalyKindCounts, ReassembledSession, StreamHealth};

use crate::avgrep_pipeline::RepresentationModel;
use crate::detector::Detector;
use crate::monitor::SessionAssessment;
use crate::online::{ShedReason, ShedReasonCounts};
use crate::stall_pipeline::StallModel;
use crate::switch_pipeline::SwitchModel;

/// Clonable bundle of every pipeline metric handle.
///
/// Built once per [`Registry`] via [`PipelineMetrics::register`] and
/// attached to the engine / online assessor with their `with_metrics`
/// builders. All handles are `Arc`-backed atomics: recording never
/// takes a lock.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    // Ingest (telemetry facade).
    pub(crate) entries_seen: Counter,
    pub(crate) entries_reordered: Counter,
    pub(crate) entries_duplicated: Counter,
    pub(crate) entries_quarantined: Counter,
    pub(crate) sessions_evicted: Counter,
    pub(crate) sessions_shed: Counter,
    pub(crate) subscribers_refused: Counter,
    pub(crate) sessions_partial: Counter,
    pub(crate) anomaly_empty_host: Counter,
    pub(crate) anomaly_oversized_object: Counter,
    pub(crate) anomaly_zero_sized_object: Counter,
    pub(crate) anomaly_overlong_transaction: Counter,
    pub(crate) anomaly_late_arrival: Counter,
    pub(crate) chunk_bytes: Histogram,
    // Monitor / detector inference.
    pub(crate) sessions_assessed: Counter,
    pub(crate) sessions_poor_qoe: Counter,
    pub(crate) session_micros: Histogram,
    pub(crate) stall_classes: [Counter; 3],
    pub(crate) representation_classes: [Counter; 3],
    pub(crate) switch_classes: [Counter; 2],
    // Engine.
    pub(crate) shard_jobs: Counter,
    pub(crate) stage_ticks: Histogram,
    pub(crate) worker_busy_ticks: Counter,
    pub(crate) reduce_merge_size: Histogram,
    pub(crate) queue_stalls: Counter,
    pub(crate) queue_depth: Gauge,
    // Online assessor.
    pub(crate) online_evictions: Counter,
    pub(crate) online_sheds: Counter,
    pub(crate) shed_lru_capacity: Counter,
    pub(crate) shed_subscriber_budget: Counter,
    pub(crate) shed_global_budget: Counter,
    pub(crate) shed_admission_refused: Counter,
    pub(crate) open_subscribers: Gauge,
    pub(crate) tracked_bytes: Gauge,
    pub(crate) bytes_per_subscriber: Gauge,
    pub(crate) sessions_sketched: Counter,
    // Training.
    pub(crate) trees_fitted: Counter,
    pub(crate) cv_folds_skipped: Counter,
    pub(crate) cv_fold_ticks: Histogram,
}

impl PipelineMetrics {
    /// Register every pipeline metric in `registry` and return the
    /// handle bundle. Calling this twice against the same registry
    /// returns handles sharing the same underlying values.
    pub fn register(registry: &Registry) -> Self {
        let s = MetricClass::Stable;
        let counter = |name: &str, help: &str| registry.counter(name, help, s);
        let stall = [StallClass::NoStalls, StallClass::Mild, StallClass::Severe];
        let rq = [RqClass::Ld, RqClass::Sd, RqClass::Hd];
        let stall_classes = stall.map(|c| {
            registry.counter(
                &format!(
                    "vqoe_core_detector_stall_class_{}_total",
                    StallModel::class_label(&c)
                ),
                "sessions the stall detector assigned to this class",
                s,
            )
        });
        let representation_classes = rq.map(|c| {
            registry.counter(
                &format!(
                    "vqoe_core_detector_representation_class_{}_total",
                    RepresentationModel::class_label(&c)
                ),
                "sessions the representation detector assigned to this class",
                s,
            )
        });
        let switch_classes = [true, false].map(|c| {
            registry.counter(
                &format!(
                    "vqoe_core_detector_switch_class_{}_total",
                    SwitchModel::class_label(&c)
                ),
                "sessions the switch detector assigned to this class",
                s,
            )
        });
        PipelineMetrics {
            entries_seen: counter(
                "vqoe_telemetry_ingest_entries_seen_total",
                "weblog entries offered to the assessor (including noise and faults)",
            ),
            entries_reordered: counter(
                "vqoe_telemetry_ingest_entries_reordered_total",
                "entries admitted out of timestamp order and re-sorted",
            ),
            entries_duplicated: counter(
                "vqoe_telemetry_ingest_entries_duplicated_total",
                "exact duplicate records suppressed",
            ),
            entries_quarantined: counter(
                "vqoe_telemetry_ingest_entries_quarantined_total",
                "entries quarantined into the anomaly log",
            ),
            sessions_evicted: counter(
                "vqoe_telemetry_ingest_sessions_evicted_total",
                "idle subscribers evicted to enforce the memory cap",
            ),
            sessions_shed: counter(
                "vqoe_telemetry_ingest_sessions_shed_total",
                "subscribers force-finalized by a memory budget (load shedding)",
            ),
            subscribers_refused: counter(
                "vqoe_telemetry_ingest_subscribers_refused_total",
                "new subscribers refused admission under a full global budget",
            ),
            sessions_partial: counter(
                "vqoe_telemetry_ingest_sessions_partial_total",
                "sessions assessed from an evicted or shed (force-closed) stream",
            ),
            anomaly_empty_host: counter(
                "vqoe_telemetry_ingest_anomaly_empty_host_total",
                "quarantines: empty hostname",
            ),
            anomaly_oversized_object: counter(
                "vqoe_telemetry_ingest_anomaly_oversized_object_total",
                "quarantines: object size above the ingest cap",
            ),
            anomaly_zero_sized_object: counter(
                "vqoe_telemetry_ingest_anomaly_zero_sized_object_total",
                "quarantines: zero-byte object",
            ),
            anomaly_overlong_transaction: counter(
                "vqoe_telemetry_ingest_anomaly_overlong_transaction_total",
                "quarantines: transaction outlived the duration cap",
            ),
            anomaly_late_arrival: counter(
                "vqoe_telemetry_ingest_anomaly_late_arrival_total",
                "quarantines: arrival beyond the reorder window",
            ),
            chunk_bytes: registry.histogram(
                "vqoe_telemetry_ingest_chunk_bytes",
                "payload bytes per reassembled media chunk",
                s,
                buckets::CHUNK_BYTES,
            ),
            sessions_assessed: counter(
                "vqoe_core_monitor_sessions_assessed_total",
                "sessions run through the frozen detectors",
            ),
            sessions_poor_qoe: counter(
                "vqoe_core_monitor_sessions_poor_qoe_total",
                "assessed sessions scored as poor QoE",
            ),
            session_micros: registry.histogram(
                "vqoe_core_monitor_session_duration_micros",
                "assessed session durations in microseconds",
                s,
                buckets::SESSION_MICROS,
            ),
            stall_classes,
            representation_classes,
            switch_classes,
            shard_jobs: counter(
                "vqoe_core_engine_shard_jobs_total",
                "shard jobs processed by engine workers",
            ),
            stage_ticks: registry.histogram(
                "vqoe_core_engine_stage_ticks",
                "deterministic work ticks (entries processed) per shard job",
                s,
                buckets::WORK_TICKS,
            ),
            worker_busy_ticks: counter(
                "vqoe_core_engine_worker_busy_ticks_total",
                "total deterministic work ticks across all engine workers",
            ),
            reduce_merge_size: registry.histogram(
                "vqoe_core_engine_reduce_merge_size",
                "emissions merged per shard by the ordered reducer",
                s,
                buckets::MERGE_SIZE,
            ),
            queue_stalls: registry.counter(
                "vqoe_core_engine_queue_stalls_total",
                "producer pushes that blocked on a full work queue (backpressure)",
                MetricClass::Runtime,
            ),
            queue_depth: registry.gauge(
                "vqoe_core_engine_queue_depth",
                "shard jobs waiting in the bounded work queue",
                MetricClass::Runtime,
            ),
            online_evictions: counter(
                "vqoe_core_online_evictions_total",
                "LRU subscriber evictions by the online assessor",
            ),
            online_sheds: counter(
                "vqoe_core_online_sheds_total",
                "budget-driven force-finalizations by the online assessor",
            ),
            shed_lru_capacity: counter(
                "vqoe_core_online_shed_lru_capacity_total",
                "shed events: LRU eviction under the open-subscriber cap",
            ),
            shed_subscriber_budget: counter(
                "vqoe_core_online_shed_subscriber_budget_total",
                "shed events: subscriber outgrew its per-subscriber byte budget",
            ),
            shed_global_budget: counter(
                "vqoe_core_online_shed_global_budget_total",
                "shed events: coldest subscriber shed under the global byte budget",
            ),
            shed_admission_refused: counter(
                "vqoe_core_online_shed_admission_refused_total",
                "shed events: new subscriber refused admission under a full global budget",
            ),
            open_subscribers: registry.gauge(
                "vqoe_core_online_open_subscribers",
                "subscribers currently tracked by the online assessor",
                s,
            ),
            tracked_bytes: registry.gauge(
                "vqoe_core_online_tracked_bytes",
                "buffered bytes currently tracked by the online assessor (record-cost units)",
                s,
            ),
            bytes_per_subscriber: registry.gauge(
                "vqoe_core_online_bytes_per_subscriber",
                "tracked bytes divided by tracked subscribers (record-cost units)",
                s,
            ),
            sessions_sketched: counter(
                "vqoe_core_online_sessions_sketched_total",
                "sessions that spilled past the exactness cap and were assessed from streaming sketches",
            ),
            trees_fitted: counter(
                "vqoe_core_train_trees_fitted_total",
                "decision trees fitted across CV folds and deployment fits",
            ),
            cv_folds_skipped: counter(
                "vqoe_core_train_cv_folds_skipped_total",
                "cross-validation folds skipped as unusable (empty test or training side)",
            ),
            cv_fold_ticks: registry.histogram(
                "vqoe_core_train_cv_fold_ticks",
                "deterministic work ticks (test rows scored) per cross-validation fold",
                s,
                buckets::WORK_TICKS,
            ),
        }
    }

    /// Like [`PipelineMetrics::register`], but with exemplar capture
    /// enabled on the chunk-size and session-duration histograms: each
    /// bucket retains its maximal sample linked back to the session
    /// (id + tick) that produced it, so tail latencies point straight
    /// at replayable sessions. The retained set is a pure function of
    /// the input, so the `Stable` snapshot stays byte-identical at any
    /// worker count.
    pub fn register_with_exemplars(registry: &Registry) -> Self {
        let metrics = PipelineMetrics::register(registry);
        metrics.chunk_bytes.enable_exemplars();
        metrics.session_micros.enable_exemplars();
        metrics
    }

    /// Record one cross-validation run: a [`StageSpan`] per fold (ticks
    /// = test rows scored, skipped folds span zero ticks), the
    /// skipped-fold count, and the trees fitted. Everything recorded
    /// here is a pure function of the [`CvReport`], so the `Stable`
    /// snapshot stays byte-identical at any worker count.
    ///
    /// [`StageSpan`]: vqoe_obs::StageSpan
    pub(crate) fn observe_cv(&self, report: &vqoe_ml::CvReport) {
        let clock = SimClock::new();
        for &test_rows in &report.fold_test_sizes {
            let span = StageSpan::start(&clock, &self.cv_fold_ticks);
            clock.advance(test_rows as u64);
            span.finish();
        }
        self.cv_folds_skipped.add(report.skipped_folds as u64);
        self.trees_fitted.add(report.trees_fitted as u64);
    }

    /// Record a deployment-model fit of `n_trees` trees.
    pub(crate) fn observe_fit(&self, n_trees: usize) {
        self.trees_fitted.add(n_trees as u64);
    }

    /// Handle for one shed-reason counter.
    pub(crate) fn shed_reason(&self, reason: ShedReason) -> &Counter {
        match reason {
            ShedReason::LruCapacity => &self.shed_lru_capacity,
            ShedReason::SubscriberBudget => &self.shed_subscriber_budget,
            ShedReason::GlobalBudget => &self.shed_global_budget,
            ShedReason::AdmissionRefused => &self.shed_admission_refused,
        }
    }

    /// Reconstruct the per-reason shed distribution from the registry
    /// counters (mirrors [`ShedLog::reasons`]): with metrics attached,
    /// the report's shed log and this view agree field for field.
    ///
    /// [`ShedLog::reasons`]: crate::online::ShedLog::reasons
    pub fn shed_reasons_view(&self) -> ShedReasonCounts {
        ShedReasonCounts {
            lru_capacity: self.shed_lru_capacity.get(),
            subscriber_budget: self.shed_subscriber_budget.get(),
            global_budget: self.shed_global_budget.get(),
            admission_refused: self.shed_admission_refused.get(),
        }
    }

    /// Handle for one anomaly-kind counter.
    pub(crate) fn anomaly_kind(&self, kind: AnomalyKind) -> &Counter {
        match kind {
            AnomalyKind::EmptyHost => &self.anomaly_empty_host,
            AnomalyKind::OversizedObject => &self.anomaly_oversized_object,
            AnomalyKind::ZeroSizedObject => &self.anomaly_zero_sized_object,
            AnomalyKind::OverlongTransaction => &self.anomaly_overlong_transaction,
            AnomalyKind::LateArrival => &self.anomaly_late_arrival,
        }
    }

    /// Record the difference between two [`StreamHealth`] snapshots
    /// into the ingest counters. Deltas are commutative sums, so
    /// per-shard recording order cannot affect the totals.
    pub(crate) fn observe_health_delta(&self, before: &StreamHealth, after: &StreamHealth) {
        self.entries_seen
            .add(after.entries_seen.saturating_sub(before.entries_seen));
        self.entries_reordered.add(
            after
                .entries_reordered
                .saturating_sub(before.entries_reordered),
        );
        self.entries_duplicated.add(
            after
                .entries_duplicated
                .saturating_sub(before.entries_duplicated),
        );
        self.entries_quarantined.add(
            after
                .entries_quarantined
                .saturating_sub(before.entries_quarantined),
        );
        self.sessions_evicted.add(
            after
                .sessions_evicted
                .saturating_sub(before.sessions_evicted),
        );
        self.sessions_shed
            .add(after.sessions_shed.saturating_sub(before.sessions_shed));
        self.subscribers_refused.add(
            after
                .subscribers_refused
                .saturating_sub(before.subscribers_refused),
        );
        self.sessions_partial.add(
            after
                .sessions_partial
                .saturating_sub(before.sessions_partial),
        );
    }

    /// Record the difference between two [`AnomalyKindCounts`]
    /// snapshots into the per-kind quarantine counters.
    pub(crate) fn observe_kind_delta(&self, before: &AnomalyKindCounts, after: &AnomalyKindCounts) {
        for kind in [
            AnomalyKind::EmptyHost,
            AnomalyKind::OversizedObject,
            AnomalyKind::ZeroSizedObject,
            AnomalyKind::OverlongTransaction,
            AnomalyKind::LateArrival,
        ] {
            self.anomaly_kind(kind)
                .add(after.of(kind).saturating_sub(before.of(kind)));
        }
    }

    /// Record one assessed session: chunk sizes, duration, and the
    /// class each frozen detector predicted.
    pub(crate) fn observe_session(
        &self,
        session: &ReassembledSession,
        assessment: &SessionAssessment,
    ) {
        // Exemplar linkage: session id = start time in tap micros, tick
        // = the sample's own tap-time micros — pure functions of the
        // input, so exemplar capture never perturbs the snapshot's
        // determinism. With capture disabled these are plain observes.
        let session_id = session.start.as_micros();
        for chunk in &session.chunks {
            self.chunk_bytes
                .observe_exemplar(chunk.bytes, session_id, chunk.timestamp.as_micros());
        }
        self.session_micros.observe_exemplar(
            assessment.end.duration_since(assessment.start).as_micros(),
            session_id,
            assessment.end.as_micros(),
        );
        self.sessions_assessed.inc();
        if assessment.qoe.is_poor() {
            self.sessions_poor_qoe.inc();
        }
        if let Some(c) = self.stall_classes.get(assessment.stall.index()) {
            c.inc();
        }
        if let Some(c) = self
            .representation_classes
            .get(assessment.representation.index())
        {
            c.inc();
        }
        let switch_idx = usize::from(!assessment.has_quality_switches);
        if let Some(c) = self.switch_classes.get(switch_idx) {
            c.inc();
        }
    }

    /// Reconstruct a [`StreamHealth`] façade from the registry
    /// counters: with metrics attached, the pipeline's report health
    /// and this view agree field for field (one source of truth).
    pub fn health_view(&self) -> StreamHealth {
        StreamHealth {
            entries_seen: self.entries_seen.get(),
            entries_reordered: self.entries_reordered.get(),
            entries_duplicated: self.entries_duplicated.get(),
            entries_quarantined: self.entries_quarantined.get(),
            sessions_evicted: self.sessions_evicted.get(),
            sessions_shed: self.sessions_shed.get(),
            subscribers_refused: self.subscribers_refused.get(),
            sessions_partial: self.sessions_partial.get(),
        }
    }

    /// Reconstruct the per-kind quarantine distribution from the
    /// registry counters (mirrors [`AnomalyLog::kinds`]).
    ///
    /// [`AnomalyLog::kinds`]: vqoe_telemetry::AnomalyLog::kinds
    pub fn anomaly_kinds_view(&self) -> AnomalyKindCounts {
        AnomalyKindCounts {
            empty_host: self.anomaly_empty_host.get(),
            oversized_object: self.anomaly_oversized_object.get(),
            zero_sized_object: self.anomaly_zero_sized_object.get(),
            overlong_transaction: self.anomaly_overlong_transaction.get(),
            late_arrival: self.anomaly_late_arrival.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_on_one_registry() {
        let registry = Registry::new();
        let a = PipelineMetrics::register(&registry);
        let b = PipelineMetrics::register(&registry);
        a.entries_seen.add(3);
        b.entries_seen.add(4);
        assert_eq!(a.entries_seen.get(), 7, "handles share one value");
    }

    #[test]
    fn health_view_mirrors_recorded_deltas() {
        let registry = Registry::new();
        let m = PipelineMetrics::register(&registry);
        let before = StreamHealth::default();
        let after = StreamHealth {
            entries_seen: 10,
            entries_reordered: 2,
            entries_duplicated: 1,
            entries_quarantined: 3,
            sessions_evicted: 0,
            sessions_shed: 4,
            subscribers_refused: 5,
            sessions_partial: 0,
        };
        m.observe_health_delta(&before, &after);
        assert_eq!(m.health_view(), after);
    }

    #[test]
    fn observe_cv_records_folds_skips_and_trees() {
        let registry = Registry::new();
        let m = PipelineMetrics::register(&registry);
        let report = vqoe_ml::CvReport {
            matrix: vqoe_ml::ConfusionMatrix::new(vec!["a".into(), "b".into()]),
            skipped_folds: 2,
            fold_test_sizes: vec![12, 0, 15, 0],
            trees_fitted: 120,
        };
        m.observe_cv(&report);
        m.observe_fit(60);
        assert_eq!(m.trees_fitted.get(), 180);
        assert_eq!(m.cv_folds_skipped.get(), 2);
        let text = registry.render_prometheus();
        assert!(text.contains("vqoe_core_train_trees_fitted_total 180"));
        assert!(text.contains("vqoe_core_train_cv_fold_ticks_count 4"));
        assert!(text.contains("vqoe_core_train_cv_fold_ticks_sum 27"));
    }

    #[test]
    fn kind_delta_routes_to_named_counters() {
        let registry = Registry::new();
        let m = PipelineMetrics::register(&registry);
        let mut after = AnomalyKindCounts::default();
        after.record(AnomalyKind::LateArrival);
        after.record(AnomalyKind::LateArrival);
        after.record(AnomalyKind::EmptyHost);
        m.observe_kind_delta(&AnomalyKindCounts::default(), &after);
        assert_eq!(m.anomaly_kinds_view(), after);
        let text = registry.render_prometheus();
        assert!(text.contains("vqoe_telemetry_ingest_anomaly_late_arrival_total 2"));
        assert!(text.contains("vqoe_telemetry_ingest_anomaly_empty_host_total 1"));
    }
}
