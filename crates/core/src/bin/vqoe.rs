//! `vqoe` — the operator command line.
//!
//! File-based pipeline stages so each step of the paper's workflow can
//! be run, inspected and re-run independently:
//!
//! ```text
//! # simulate an operator corpus (cleartext / adaptive / encrypted shape)
//! vqoe generate --kind cleartext --sessions 5000 --seed 1 --out traces.jsonl
//!
//! # render traces into proxy weblogs (add --encrypted for the TLS view)
//! vqoe capture --traces traces.jsonl --encrypted --out weblogs.jsonl
//!
//! # reverse-engineer ground truth from cleartext weblogs (§3.2)
//! vqoe extract-gt --weblogs weblogs.jsonl --out ground_truth.jsonl
//!
//! # train the full framework and save the model
//! vqoe train --cleartext 4000 --adaptive 1500 --seed 2016 --out model.json
//!
//! # assess a subscriber's weblog stream with a trained model
//! vqoe assess --model model.json --weblogs weblogs.jsonl --out assessments.jsonl
//!
//! # pack weblogs into the binary replay format (and back)
//! vqoe corpus pack --weblogs weblogs.jsonl --out weblogs.vqwl
//! vqoe corpus unpack --corpus weblogs.vqwl --out weblogs.jsonl
//! ```
//!
//! `assess` sniffs its `--weblogs` input: a packed [`BinaryCorpus`]
//! replays without serde on the hot path, a JSONL file decodes as
//! before — the resulting report is bit-identical either way.

use std::path::{Path, PathBuf};

use rand::SeedableRng;
use vqoe_core::{
    generate_sequential_traces, generate_traces, standard_alert_engine, AdmissionPolicy,
    BudgetConfig, DatasetSpec, EngineConfig, Fidelity, IngestPipeline, IngestReport,
    OnlineAssessor, OnlineCheckpoint, PipelineMetrics, QoeMonitor, TrainingConfig,
    ALERT_WINDOW_RECORDS,
};
use vqoe_obs::{
    buckets, parse_rules, AlertSeverity, Clock, MetricClass, Registry, ReportLevel, Reporter,
    StageSpan, TraceConfig,
};
use vqoe_player::SessionTrace;
use vqoe_simnet::time::Instant;
use vqoe_telemetry::{
    apply_chaos, capture_session, extract_sessions, generate_subscriber_flood, merge_streams,
    read_jsonl, write_jsonl, BinaryCorpus, CaptureConfig, ChaosConfig, ChaosProfile, IngestConfig,
    WeblogEntry,
};

/// Wall-clock [`Clock`] for CLI stage timing. The `vqoe` binary is an
/// allowlisted non-deterministic surface: its readings feed
/// `Runtime`-class histograms only, never the stable JSON snapshot.
/// The deterministic crates must use `vqoe_obs::SimClock` instead.
struct WallClock {
    origin: std::time::Instant, // analyze:allow(raw-wall-clock)
}

impl WallClock {
    fn new() -> WallClock {
        WallClock {
            // analyze:allow(wall-clock) analyze:allow(raw-wall-clock)
            origin: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

/// Reporter level from `--quiet` / `--verbose` (quiet wins).
fn reporter(flags: &Flags) -> Reporter {
    Reporter::new(if flags.flag("quiet") {
        ReportLevel::Quiet
    } else if flags.flag("verbose") {
        ReportLevel::Verbose
    } else {
        ReportLevel::Normal
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage("no command given");
    };
    // `corpus` carries a sub-verb before its flags, so it parses its
    // own tail; every other command takes flags directly.
    if command == "corpus" {
        return corpus(&args[1..]);
    }
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "generate" => generate(&flags),
        "capture" => capture(&flags),
        "extract-gt" => extract_gt(&flags),
        "train" => train(&flags),
        "assess" => assess(&flags),
        "metrics-doc" => metrics_doc(&flags),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command '{other}'")),
    }
}

/// `vqoe corpus pack|unpack` — convert between the JSONL archival
/// format and the length-prefixed binary replay format.
fn corpus(args: &[String]) {
    let Some(verb) = args.first() else {
        usage("corpus wants a verb: pack or unpack");
    };
    if verb != "pack" && verb != "unpack" {
        usage(&format!("corpus verb must be pack|unpack, got '{verb}'"));
    }
    let flags = Flags::parse(&args[1..]);
    let out = flags.path("out");
    match verb.as_str() {
        "pack" => {
            let weblogs = flags.path("weblogs");
            let entries: Vec<WeblogEntry> = read_jsonl(&weblogs).unwrap_or_else(die(&weblogs));
            let corpus = BinaryCorpus::pack(&entries);
            corpus.write_file(&out).unwrap_or_else(die(&out));
            reporter(&flags).normal(&format!(
                "packed {} weblog entries into {} ({} bytes, {:.2}x vs JSONL)",
                corpus.len(),
                out.display(),
                corpus.as_bytes().len(),
                jsonl_size(&entries) as f64 / corpus.as_bytes().len().max(1) as f64,
            ));
        }
        "unpack" => {
            let packed = flags.path("corpus");
            let corpus = BinaryCorpus::read_file(&packed).unwrap_or_else(die(&packed));
            let entries = corpus.decode_all().unwrap_or_else(die(&packed));
            write_jsonl(&out, &entries).unwrap_or_else(die(&out));
            reporter(&flags).normal(&format!(
                "unpacked {} weblog entries to {}",
                entries.len(),
                out.display()
            ));
        }
        other => usage(&format!("corpus verb must be pack|unpack, got '{other}'")),
    }
}

/// Serialized JSONL footprint of a weblog slice (for the pack ratio
/// status line only).
fn jsonl_size(entries: &[WeblogEntry]) -> usize {
    entries
        .iter()
        .map(|e| serde_json::to_string(e).map(|s| s.len() + 1).unwrap_or(0))
        .sum()
}

/// Read weblogs for `assess`, sniffing the on-disk format: a packed
/// [`BinaryCorpus`] decodes straight from its byte buffer (no serde on
/// the replay hot path); anything else parses as JSONL.
fn read_weblogs(path: &Path) -> Vec<WeblogEntry> {
    let bytes = std::fs::read(path).unwrap_or_else(die(path));
    if BinaryCorpus::sniff(&bytes) {
        let corpus = BinaryCorpus::from_bytes(bytes).unwrap_or_else(die(path));
        corpus.decode_all().unwrap_or_else(die(path))
    } else {
        read_jsonl(path).unwrap_or_else(die(path))
    }
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                usage(&format!("expected a --flag, got '{}'", args[i]));
            };
            // Boolean flags have no value (next token is another flag or
            // the end).
            if i + 1 >= args.len() || args[i + 1].starts_with("--") {
                out.push((key.to_string(), "true".to_string()));
                i += 1;
            } else {
                out.push((key.to_string(), args[i + 1].clone()));
                i += 2;
            }
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> &str {
        self.get(key)
            .unwrap_or_else(|| usage(&format!("missing --{key}")))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage(&format!("--{key} wants a number, got '{v}'"))),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn path(&self, key: &str) -> PathBuf {
        PathBuf::from(self.required(key))
    }
}

fn generate(flags: &Flags) {
    let sessions = flags.num("sessions", 1000usize);
    let seed = flags.num("seed", 2016u64);
    let kind = flags.get("kind").unwrap_or("cleartext");
    let out = flags.path("out");
    let traces: Vec<SessionTrace> = match kind {
        "cleartext" => generate_traces(&DatasetSpec::cleartext_default(sessions, seed)),
        "adaptive" => generate_traces(&DatasetSpec::adaptive_default(sessions, seed)),
        "encrypted" => {
            let spec = DatasetSpec {
                n_sessions: sessions,
                ..DatasetSpec::encrypted_default(seed)
            };
            generate_sequential_traces(&spec, 240.0)
        }
        other => usage(&format!(
            "--kind must be cleartext|adaptive|encrypted, got '{other}'"
        )),
    };
    write_jsonl(&out, &traces).unwrap_or_else(die(&out));
    reporter(flags).normal(&format!(
        "wrote {} traces to {}",
        traces.len(),
        out.display()
    ));
}

fn capture(flags: &Flags) {
    let traces_path = flags.path("traces");
    let out = flags.path("out");
    let encrypted = flags.flag("encrypted");
    let seed = flags.num("seed", 7u64);
    // A sequential (instrumented-handset) corpus belongs to one
    // subscriber; a population corpus gives each session its own.
    let single_subscriber = flags.get("subscriber").map(|v| v.parse::<u64>());
    let traces: Vec<SessionTrace> = read_jsonl(&traces_path).unwrap_or_else(die(&traces_path));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut entries: Vec<WeblogEntry> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        let subscriber_id = match &single_subscriber {
            Some(Ok(id)) => *id,
            Some(Err(_)) => usage("--subscriber wants a number"),
            None => i as u64,
        };
        entries.extend(
            capture_session(
                t,
                &CaptureConfig {
                    encrypted,
                    subscriber_id,
                },
                &mut rng,
            )
            .unwrap_or_else(die(&traces_path)),
        );
    }
    entries.sort_by_key(|e| e.timestamp);
    write_jsonl(&out, &entries).unwrap_or_else(die(&out));
    reporter(flags).normal(&format!(
        "wrote {} weblog entries ({}) to {}",
        entries.len(),
        if encrypted { "encrypted" } else { "cleartext" },
        out.display()
    ));
}

fn extract_gt(flags: &Flags) {
    let weblogs = flags.path("weblogs");
    let out = flags.path("out");
    let entries: Vec<WeblogEntry> = read_jsonl(&weblogs).unwrap_or_else(die(&weblogs));
    let sessions = extract_sessions(&entries);
    write_jsonl(&out, &sessions).unwrap_or_else(die(&out));
    reporter(flags).normal(&format!(
        "extracted ground truth for {} sessions to {}",
        sessions.len(),
        out.display()
    ));
}

fn train(flags: &Flags) {
    let out = flags.path("out");
    // `--workers 0` (the default) auto-sizes the training fan-out; any
    // count produces the byte-identical model.
    let config = TrainingConfig::builder()
        .cleartext_sessions(flags.num("cleartext", 4000usize))
        .adaptive_sessions(flags.num("adaptive", 1500usize))
        .seed(flags.num("seed", 2016u64))
        .workers(flags.num("workers", 0usize))
        .build()
        .unwrap_or_else(|e| usage(&format!("invalid training config: {e}")));
    let report = reporter(flags);
    report.normal(&format!(
        "training on {} cleartext + {} adaptive sessions (seed {}, {} workers) ...",
        config.cleartext_sessions,
        config.adaptive_sessions,
        config.seed,
        match config.train.workers {
            0 => "auto".to_string(),
            n => n.to_string(),
        }
    ));
    let monitor = QoeMonitor::train(&config);
    let json = monitor.to_json().unwrap_or_else(fail("serialize model"));
    std::fs::write(&out, json).unwrap_or_else(die(&out));
    report.normal(&format!(
        "model written to {} (stall features: {:?})",
        out.display(),
        monitor.stall_model.selected_names
    ));
}

fn assess(flags: &Flags) {
    let report_to = reporter(flags);
    let model_path = flags.path("model");
    let weblogs = flags.path("weblogs");
    let out = flags.path("out");
    let chaos = flags.num("chaos", 0.0f64);
    let chaos_seed = flags.num("chaos-seed", 2016u64);
    // `--metrics PATH` (or `-` for stdout) turns on pipeline
    // instrumentation; the wall clock feeds Runtime-class CLI stage
    // histograms, which the stable JSON snapshot excludes by design.
    let metrics_path = flags.get("metrics").map(str::to_string);
    // `--exemplars` links the max sample of every chunk-size and
    // session-duration bucket back to the session (id + tick) that
    // produced it, in both exposition formats.
    let exemplars = flags.flag("exemplars");
    if exemplars && metrics_path.is_none() {
        usage("--exemplars annotates the metrics output; add --metrics PATH|-");
    }
    let registry = Registry::new();
    let metrics = metrics_path.as_deref().map(|_| {
        if exemplars {
            PipelineMetrics::register_with_exemplars(&registry)
        } else {
            PipelineMetrics::register(&registry)
        }
    });
    let wall = WallClock::new();
    let stage_hist = |stage: &str| {
        registry.histogram(
            &format!("vqoe_core_cli_{stage}_wall_micros"),
            "wall-clock CLI stage latency in microseconds",
            MetricClass::Runtime,
            buckets::STAGE_MICROS,
        )
    };

    let read_hist = stage_hist("read");
    let assess_hist = stage_hist("assess");
    let write_hist = stage_hist("write");

    let read_span = StageSpan::start(&wall, &read_hist);
    let json = std::fs::read_to_string(&model_path).unwrap_or_else(die(&model_path));
    let monitor = QoeMonitor::from_json(&json).unwrap_or_else(fail("parse model JSON"));
    let mut entries: Vec<WeblogEntry> = read_weblogs(&weblogs);
    read_span.finish();
    // Tap arrival order: all subscribers interleaved by timestamp, as
    // the operator's proxy would deliver them.
    entries.sort_by_key(|e| e.timestamp);
    // `--chaos-profile` is the preset path (mild/harsh/flood, see the
    // ChaosProfile table); `--chaos RATE` stays as the raw dial. They
    // conflict rather than compose, so a preset means exactly its table.
    let profile = flags.get("chaos-profile").map(|name| {
        ChaosProfile::parse(name)
            .unwrap_or_else(|| usage("--chaos-profile must be mild|harsh|flood"))
    });
    if profile.is_some() && chaos > 0.0 {
        usage("--chaos and --chaos-profile are mutually exclusive");
    }
    let chaos_cfg: Option<ChaosConfig> = match profile {
        Some(p) => {
            if let Some(spec) = p.flood() {
                let start = entries
                    .first()
                    .map(|e| e.timestamp)
                    .unwrap_or(Instant::from_secs(0));
                let flood = generate_subscriber_flood(&spec, start, chaos_seed);
                report_to.normal(&format!(
                    "flood profile: injecting {} synthetic entries from {} flood subscribers",
                    flood.len(),
                    spec.subscribers
                ));
                entries = merge_streams(vec![entries, flood]);
            }
            Some(p.chaos())
        }
        None if chaos > 0.0 => Some(ChaosConfig::uniform(chaos)),
        None => None,
    };
    if let Some(cfg) = chaos_cfg {
        let (faulted, stats) = apply_chaos(&entries, &cfg, chaos_seed);
        report_to.normal(&format!(
            "chaos tap: {} -> {} entries \
             ({} dropped, {} duplicated, {} reordered, {} corrupted, {} streams cut)",
            stats.consumed,
            stats.emitted,
            stats.dropped,
            stats.duplicated,
            stats.reordered,
            stats.corrupted,
            stats.streams_cut
        ));
        entries = faulted;
    }

    let ingest_cfg = IngestConfig {
        max_open_subscribers: flags.num("max-subscribers", 65_536usize),
        ..IngestConfig::default()
    };
    // Memory budgets, admission policy and checkpoint/restore belong to
    // the streaming assessor (the batch engine holds one subscriber per
    // worker and never sheds, so the knobs would be moot there).
    let budget = BudgetConfig {
        per_subscriber_bytes: flags.num("subscriber-budget", 0u64),
        global_bytes: flags.num("memory-budget", 0u64),
        admission: match flags.get("admission") {
            None => AdmissionPolicy::default(),
            Some(v) => AdmissionPolicy::parse(v)
                .unwrap_or_else(|| usage("--admission must be shed|refuse")),
        },
    };
    let checkpoint_path = flags.get("checkpoint").map(str::to_string);
    let checkpoint_at = flags.num("checkpoint-at", 0u64);
    let restore_path = flags.get("restore").map(str::to_string);
    let alerts_path = flags.get("alerts").map(str::to_string);
    let trace_path = flags.get("trace").map(str::to_string);
    if flags.get("workers").is_some()
        && (!budget.is_unlimited()
            || flags.get("admission").is_some()
            || checkpoint_path.is_some()
            || restore_path.is_some()
            || alerts_path.is_some())
    {
        usage(
            "--memory-budget/--subscriber-budget/--admission/--checkpoint/--restore/--alerts \
             need the streaming assessor; drop --workers",
        );
    }
    // Tracing records the engine's span structure (ingest through
    // reduce), so it needs the engine.
    if trace_path.is_some() && flags.get("workers").is_none() {
        usage("--trace records the parallel engine's spans; add --workers N (0 = auto)");
    }
    // Alert rules parse before the (potentially long) assessment runs,
    // so a typo fails fast.
    let alert_rules = alerts_path.as_deref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(die(Path::new(p)));
        parse_rules(&text).unwrap_or_else(fail("parse alert rules"))
    });
    // `--workers N` routes through the sharded parallel engine (see
    // `vqoe_core::engine`); without it, the streaming assessor runs the
    // tap one entry at a time. Output is bit-identical either way (the
    // engine ignores `--max-subscribers`: its batch walk holds one open
    // subscriber per worker, so the cap is moot).
    let assess_span = StageSpan::start(&wall, &assess_hist);
    let report: IngestReport = match flags.get("workers") {
        Some(_) => {
            let engine_cfg = EngineConfig {
                workers: flags.num("workers", 0usize),
                shards: flags.num("shards", EngineConfig::default().shards),
                queue_depth: flags.num("queue-depth", EngineConfig::default().queue_depth),
                ..EngineConfig::default()
            };
            let mut pipeline = IngestPipeline::new(&monitor)
                .with_engine(engine_cfg)
                .with_ingest(ingest_cfg);
            if let Some(m) = &metrics {
                pipeline = pipeline.with_metrics(m.clone());
            }
            match &trace_path {
                Some(p) => {
                    let (report, trace) = pipeline.assess_traced(&entries, TraceConfig::default());
                    std::fs::write(p, trace.to_chrome_json())
                        .unwrap_or_else(die(Path::new(p.as_str())));
                    let jsonl_path = format!("{p}.jsonl");
                    std::fs::write(&jsonl_path, trace.to_jsonl())
                        .unwrap_or_else(die(Path::new(&jsonl_path)));
                    report_to.normal(&format!(
                        "trace written to {p} (Chrome trace events, {} spans, {} dropped) \
                         and {jsonl_path} (JSONL)",
                        trace.events().len(),
                        trace.dropped()
                    ));
                    report
                }
                None => pipeline.assess(&entries),
            }
        }
        None => {
            // Restore resumes the ingest clock where the checkpointed
            // process died: its config/budget win over the CLI flags,
            // and the first `records_ingested` entries are skipped.
            let (mut online, skip) = match &restore_path {
                Some(p) => {
                    let text =
                        std::fs::read_to_string(p).unwrap_or_else(die(Path::new(p.as_str())));
                    let ck =
                        OnlineCheckpoint::from_json(&text).unwrap_or_else(fail("parse checkpoint"));
                    if metrics.is_some() {
                        if let Some(snap) = &ck.metrics_snapshot {
                            registry
                                .absorb_snapshot(snap)
                                .unwrap_or_else(fail("absorb checkpoint metrics"));
                        }
                    }
                    let online = OnlineAssessor::restore(monitor, &ck)
                        .unwrap_or_else(fail("restore checkpoint"));
                    report_to.normal(&format!(
                        "restored checkpoint {} ({} records already ingested)",
                        p, ck.records_ingested
                    ));
                    (online, ck.records_ingested)
                }
                None => (
                    OnlineAssessor::with_config(monitor, ingest_cfg).with_budget(budget),
                    0,
                ),
            };
            if let Some(m) = &metrics {
                online = online.with_metrics(m.clone());
            }
            if let Some(rules) = alert_rules {
                online = online.with_alerts(standard_alert_engine(rules), ALERT_WINDOW_RECORDS);
            }
            let write_checkpoint = |online: &OnlineAssessor, path: &str| {
                let ck = if metrics.is_some() {
                    online.checkpoint_with_metrics(&registry)
                } else {
                    online.checkpoint()
                };
                let json = ck.to_json().unwrap_or_else(fail("serialize checkpoint"));
                std::fs::write(path, json).unwrap_or_else(die(Path::new(path)));
                report_to.normal(&format!(
                    "checkpoint written to {} at record {} ({} subscribers open)",
                    path,
                    online.records_ingested(),
                    online.open_subscribers()
                ));
            };
            let mut assessments = Vec::new();
            let mut checkpointed = false;
            for e in entries.iter().skip(skip as usize) {
                assessments.extend(online.ingest(e));
                if checkpoint_at > 0 && online.records_ingested() == checkpoint_at {
                    if let Some(p) = &checkpoint_path {
                        write_checkpoint(&online, p);
                        checkpointed = true;
                    }
                }
            }
            if !checkpointed {
                // No cut point (or the stream ended first): checkpoint
                // the final pre-drain state, still a valid resume point.
                if let Some(p) = &checkpoint_path {
                    write_checkpoint(&online, p);
                }
            }
            let mut report = online.into_report();
            assessments.extend(std::mem::take(&mut report.assessments));
            report.assessments = assessments;
            report
        }
    };
    assess_span.finish();
    let assessments = &report.assessments;

    let write_span = StageSpan::start(&wall, &write_hist);
    write_jsonl(&out, assessments).unwrap_or_else(die(&out));
    write_span.finish();
    let poor = assessments.iter().filter(|a| a.qoe.is_poor()).count();
    let sketched = assessments
        .iter()
        .filter(|a| a.fidelity == Fidelity::Sketched)
        .count();
    let partial = assessments
        .iter()
        .filter(|a| a.fidelity == Fidelity::Partial)
        .count();
    let shed_tier = assessments
        .iter()
        .filter(|a| a.fidelity == Fidelity::Shed)
        .count();
    report_to.normal(&format!(
        "assessed {} sessions ({} poor-QoE, {} sketched, {} partial, {} shed) -> {}",
        assessments.len(),
        poor,
        sketched,
        partial,
        shed_tier,
        out.display()
    ));
    // Stream-health details stay off stderr unless asked for, so piped
    // output wrappers see only the one summary line.
    let h = report.health;
    report_to.verbose(&format!(
        "stream health: {} entries seen, {} reordered, {} duplicated, \
         {} quarantined, {} subscribers evicted, {} shed, {} refused, \
         {} partial sessions",
        h.entries_seen,
        h.entries_reordered,
        h.entries_duplicated,
        h.entries_quarantined,
        h.sessions_evicted,
        h.sessions_shed,
        h.subscribers_refused,
        h.sessions_partial
    ));
    let shed = &report.shed;
    if shed.total() > 0 {
        let r = shed.reasons();
        report_to.verbose(&format!(
            "load shedding: {} events ({} lru, {} subscriber-budget, \
             {} global-budget, {} refused)",
            shed.total(),
            r.lru_capacity,
            r.subscriber_budget,
            r.global_budget,
            r.admission_refused
        ));
    }
    for a in report.anomalies.kept().iter().take(5) {
        report_to.verbose(&format!(
            "  anomaly: subscriber {} at {}us: {:?}",
            a.subscriber_id,
            a.timestamp.as_micros(),
            a.kind
        ));
    }
    let total = report.anomalies.total();
    if total > 5 {
        report_to.verbose(&format!("  ... {} anomalies total", total));
    }
    // Fired alerts: critical ones are summary-level (an operator
    // running with defaults must see them), warnings are detail.
    for alert in &report.alerts {
        let line = format!("alert: {}", alert.message);
        match alert.severity {
            AlertSeverity::Critical => report_to.normal(&line),
            AlertSeverity::Warning => report_to.verbose(&line),
        }
    }

    // Emit both exposition formats once the pipeline is done: the full
    // Prometheus text (both metric classes) and the Stable-only JSON
    // snapshot (byte-identical across runs and worker counts).
    if let Some(path) = metrics_path {
        let prom = registry.render_prometheus();
        let snap = registry.snapshot_json();
        if path == "-" {
            // Through the Reporter, onto stderr: stdout stays reserved
            // for data, so `vqoe ... --metrics - | tool` never sees
            // scrape text interleaved into its input. Trailing newlines
            // are trimmed because the reporter adds its own.
            report_to.normal(prom.trim_end());
            report_to.normal(snap.trim_end());
        } else {
            std::fs::write(&path, &prom).unwrap_or_else(die(Path::new(&path)));
            let snap_path = format!("{path}.json");
            std::fs::write(&snap_path, &snap).unwrap_or_else(die(Path::new(&snap_path)));
            report_to.normal(&format!(
                "metrics written to {path} (Prometheus text) and {snap_path} (JSON snapshot)"
            ));
        }
    }
}

/// `vqoe metrics-doc` — render the full metric surface of `vqoe assess`
/// as a Markdown reference (stdout, or `--out FILE`). `docs/METRICS.md`
/// is generated from this; a test fails when the two drift apart.
fn metrics_doc(flags: &Flags) {
    let doc = render_metrics_doc();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &doc).unwrap_or_else(die(Path::new(path)));
            reporter(flags).normal(&format!("metrics reference written to {path}"));
        }
        None => {
            // Tolerate a closed pipe: the doc is best-effort output.
            use std::io::Write;
            let _ = std::io::stdout().lock().write_all(doc.as_bytes());
        }
    }
}

/// The generated Markdown body: every metric `vqoe assess --metrics`
/// registers — the pipeline set plus the CLI stage histograms — as one
/// table per metric class.
fn render_metrics_doc() -> String {
    let registry = Registry::new();
    let _metrics = PipelineMetrics::register(&registry);
    for stage in ["read", "assess", "write"] {
        registry.histogram(
            &format!("vqoe_core_cli_{stage}_wall_micros"),
            "wall-clock CLI stage latency in microseconds",
            MetricClass::Runtime,
            buckets::STAGE_MICROS,
        );
    }
    let descs = registry.describe();
    let mut doc = String::from(
        "# Metrics reference\n\
         \n\
         Generated by `vqoe metrics-doc`; do not edit by hand (the\n\
         `metrics_doc_is_current` test regenerates it and fails on\n\
         drift). Every metric `vqoe assess --metrics` can expose is\n\
         listed here. **Stable**-class metrics appear in both the\n\
         Prometheus text and the deterministic JSON snapshot (and are\n\
         byte-identical across runs and worker counts); **Runtime**\n\
         metrics appear in the Prometheus text only.\n",
    );
    for (class, heading) in [
        (MetricClass::Stable, "Stable metrics"),
        (MetricClass::Runtime, "Runtime metrics"),
    ] {
        doc.push_str(&format!(
            "\n## {heading}\n\n| Name | Kind | Help |\n|---|---|---|\n"
        ));
        for d in descs.iter().filter(|d| d.class == class) {
            doc.push_str(&format!("| `{}` | {} | {} |\n", d.name, d.kind, d.help));
        }
    }
    doc
}

fn fail<E: std::fmt::Display, T>(what: &str) -> impl FnOnce(E) -> T + '_ {
    move |e| {
        eprintln!("error: {what}: {e}");
        std::process::exit(1);
    }
}

fn die<E: std::fmt::Display, T>(path: &Path) -> impl FnOnce(E) -> T + '_ {
    move |e| {
        eprintln!("error: {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "vqoe — video QoE monitoring from (encrypted) traffic\n\
         \n\
         commands:\n\
           generate   --kind cleartext|adaptive|encrypted --sessions N --seed S --out FILE\n\
           capture    --traces FILE [--encrypted] [--subscriber ID] [--seed S] --out FILE\n\
           extract-gt --weblogs FILE --out FILE\n\
           train      [--cleartext N] [--adaptive N] [--seed S] [--workers N] --out FILE\n\
           assess     --model FILE --weblogs FILE --out FILE\n\
         \x20          [--workers N] [--shards N] [--queue-depth N] [--verbose]\n\
         \x20          [--chaos RATE] [--chaos-seed S] [--chaos-profile mild|harsh|flood]\n\
         \x20          [--max-subscribers N] [--memory-budget BYTES]\n\
         \x20          [--subscriber-budget BYTES] [--admission shed|refuse]\n\
         \x20          [--checkpoint PATH] [--checkpoint-at N] [--restore PATH]\n\
         \x20          [--metrics PATH|-] [--exemplars] [--trace PATH]\n\
         \x20          [--alerts RULES.toml] [--quiet]\n\
           metrics-doc [--out FILE]\n\
           corpus pack   --weblogs FILE --out FILE\n\
           corpus unpack --corpus FILE --out FILE\n\
         \n\
         corpus pack converts a JSONL weblog file into the length-\n\
         prefixed binary replay format (magic VQWL); corpus unpack\n\
         converts it back, bit-identically. assess sniffs --weblogs and\n\
         accepts either format — packed corpora replay without serde on\n\
         the hot path.\n\
         train --workers fans tree/fold/candidate fitting out across\n\
         threads (0 = auto); the trained model is byte-identical at any\n\
         worker count.\n\
         assess runs the streaming assessor by default; --workers routes\n\
         the capture through the sharded parallel engine (0 = auto),\n\
         with bit-identical output. --verbose adds stream-health and\n\
         anomaly details on stderr; --quiet suppresses status lines.\n\
         --chaos-profile applies a preset fault table (mild: 5% faults,\n\
         harsh: 35% faults, flood: 5% faults plus a synthetic subscriber\n\
         flood merged into the tap); it conflicts with --chaos.\n\
         --memory-budget / --subscriber-budget cap buffered bytes\n\
         (record-cost units, 0 = unlimited); over budget, the coldest\n\
         subscribers are force-finalized and assessed at the shed tier.\n\
         --admission refuse turns new subscribers away instead while the\n\
         global budget is full. --checkpoint writes a deterministic\n\
         snapshot (at record N with --checkpoint-at, else at stream\n\
         end); --restore resumes from one, skipping the records it had\n\
         already consumed. These knobs need the streaming assessor\n\
         (no --workers).\n\
         --metrics PATH writes pipeline metrics as Prometheus text to\n\
         PATH plus a deterministic JSON snapshot to PATH.json ('-'\n\
         prints both to stderr via the status reporter, keeping stdout\n\
         clean for data). --exemplars links each histogram bucket's max\n\
         sample back to its session (id + tick) in both formats.\n\
         --trace PATH records the engine's span structure (ingest,\n\
         reassemble, fan-out, per-detector deliver, reduce) as Chrome\n\
         trace events at PATH (load in Perfetto / chrome://tracing)\n\
         plus compact JSONL at PATH.jsonl; byte-identical at any worker\n\
         count (needs --workers). --alerts RULES.toml evaluates\n\
         declarative threshold/rate/drift rules over the streaming\n\
         assessor's per-window shed_rate / anomaly_rate / queue_depth\n\
         series (drift is CUSUM-backed); fired alerts print on stderr,\n\
         critical at the default level. metrics-doc regenerates the\n\
         docs/METRICS.md metric reference."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
